//! The ProxRJ operator (paper Algorithm 1).
//!
//! `ProxRJ` is a pull/bound template: at every step a *pulling strategy*
//! chooses the relation to access, the newly retrieved tuple is joined (cross
//! product) with the seen prefixes of the other relations, the resulting
//! combinations are pushed into a top-K output buffer, and a *bounding
//! scheme* recomputes an upper bound `t` on the score of any combination
//! still using an unseen tuple. The operator stops as soon as the K-th best
//! retained score reaches `t` (or every relation is exhausted).
//!
//! Two drivers share the same stepping core:
//!
//! * [`execute`] — run to completion and return the full top-K
//!   ([`RankJoinResult`]), the original one-shot entry point;
//! * [`StreamingRun`] — an owned, `Send` run that can be stepped
//!   incrementally: [`StreamingRun::next_certified`] performs only as many
//!   sorted accesses as needed to certify the *next* result, mirroring the
//!   paper's incremental pulling model. This is the entry point the
//!   `prj-engine` serving layer uses.

use crate::bounds::BoundingScheme;
use crate::combination::{ScoredCombination, TopKBuffer};
use crate::problem::Problem;
use crate::pull::PullStrategy;
use crate::scoring::ScoringFunction;
use crate::state::JoinState;
use prj_access::{AccessStats, Tuple, TupleId};
use prj_geometry::Vector;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One sample of the bound-convergence profile: the state of the
/// certification race between the K-th retained score and the upper bound
/// `t` at a given access depth. A run terminates exactly when `kth_score`
/// strictly dominates `bound`, so plotting these points shows *why* an
/// execution stopped where it did (or why it had to read deep).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Total sorted accesses performed when the sample was taken
    /// (`sumDepths` at this instant).
    pub depth: u64,
    /// The K-th best retained score, or `-inf` while fewer than K
    /// combinations have been formed.
    pub kth_score: f64,
    /// The upper bound `t` on any combination still using an unseen tuple.
    pub bound: f64,
}

/// Hard cap on captured trajectory points per run, so a pathological deep
/// run cannot balloon the profile (the sampling stride already spaces the
/// points; this is a backstop).
const MAX_TRAJECTORY_POINTS: usize = 4096;

/// Instrumentation collected during one ProxRJ execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Wall-clock time spent actively executing the operator, dominated by
    /// bound computation and combination formation. For an incremental
    /// [`StreamingRun`] this excludes time spent idle between
    /// [`StreamingRun::next_certified`] calls, so it measures engine work,
    /// not consumer pacing; for [`execute`] the two coincide.
    pub total_time: Duration,
    /// Wall-clock time spent inside `updateBound`.
    pub bound_time: Duration,
    /// Wall-clock time spent in dominance tests (subset of `bound_time`).
    pub dominance_time: Duration,
    /// Number of `updateBound` invocations.
    pub bound_updates: usize,
    /// Number of combinations formed (cross-product members scored).
    pub combinations_formed: usize,
    /// Number of partial combinations flagged as dominated.
    pub dominated_partials: usize,
    /// The final value of the upper bound when the operator stopped.
    pub final_bound: f64,
    /// `true` when the run stopped because of the configured access cap
    /// rather than the termination condition.
    pub hit_access_cap: bool,
    /// Sampled bound-convergence profile; empty unless
    /// [`ProxRjConfig::convergence_every`](crate::problem::ProxRjConfig::convergence_every)
    /// is non-zero.
    pub trajectory: Vec<TrajectoryPoint>,
}

/// The outcome of a proximity rank join execution.
#[derive(Debug, Clone)]
pub struct RankJoinResult {
    /// The top-K combinations, best first.
    pub combinations: Vec<ScoredCombination>,
    /// Per-relation depths (the `sumDepths` metric).
    pub stats: AccessStats,
    /// Instrumentation.
    pub metrics: RunMetrics,
}

impl RankJoinResult {
    /// The `sumDepths` I/O cost of the run.
    pub fn sum_depths(&self) -> usize {
        self.stats.sum_depths()
    }

    /// The best (highest) score returned, if any.
    pub fn best_score(&self) -> Option<f64> {
        self.combinations.first().map(|c| c.score)
    }

    /// The sampled bound-convergence profile (empty unless capture was
    /// enabled via [`ProxRjConfig::convergence_every`](crate::problem::ProxRjConfig::convergence_every)).
    pub fn trajectory(&self) -> &[TrajectoryPoint] {
        &self.metrics.trajectory
    }
}

/// The stepping core shared by [`execute`] and [`StreamingRun`]: the mutable
/// state of one in-flight Algorithm 1 run, minus the problem / bound / pull,
/// which the caller owns (so the core can be driven through either borrowed
/// or owned handles).
struct RunCore {
    k: usize,
    config: crate::problem::ProxRjConfig,
    n: usize,
    /// Shared handle to the query vector — refcounted with the problem and
    /// the join state instead of deep-copied per run.
    query: Arc<Vector>,
    state: JoinState,
    output: TopKBuffer,
    stats: AccessStats,
    metrics: RunMetrics,
    t: f64,
    /// Identities of the results already handed out by `next_certified`,
    /// in emission order, flattened with stride `n`. Tracked by identity
    /// rather than by buffer index: a late near-tie can insert ahead of an
    /// already-emitted entry and shift buffer positions.
    emitted: Vec<TupleId>,
    done: bool,
    /// Scratch lane for the per-relation bound potentials, refilled in
    /// place on every step instead of reallocated.
    potentials: Vec<f64>,
    /// Scratch for combination formation: the indices of the relations
    /// other than the newly accessed one, and the mixed-radix counters
    /// enumerating their seen prefixes.
    combo_others: Vec<usize>,
    combo_counters: Vec<usize>,
    /// Time spent actively stepping the operator (excludes any time an
    /// incremental run sits idle between `next_certified` calls).
    work_time: std::time::Duration,
}

impl RunCore {
    /// Sets up the run and computes the initial bound (nothing read yet, so
    /// this is the best conceivable score).
    fn new<S: ScoringFunction>(problem: &Problem<S>, bound: &mut dyn BoundingScheme<S>) -> RunCore {
        let setup_started = Instant::now();
        let n = problem.num_relations();
        let k = problem.k();
        let config = problem.config();
        // Refcount bumps, not coordinate copies: the problem, the run core
        // and the join state all share one query allocation.
        let query = Arc::clone(problem.query_shared());
        let kind = problem.access_kind();
        let max_scores = problem.relations().max_scores();

        let state = JoinState::new(Arc::clone(&query), kind, &max_scores);
        let mut metrics = RunMetrics::default();
        let bound_started = Instant::now();
        let t = bound.update(&state, problem.scoring(), None);
        metrics.bound_time += bound_started.elapsed();
        metrics.bound_updates += 1;

        RunCore {
            k,
            config,
            n,
            query,
            state,
            output: TopKBuffer::new(k),
            stats: AccessStats::new(n),
            metrics,
            t,
            emitted: Vec::new(),
            done: false,
            potentials: Vec::with_capacity(n),
            combo_others: Vec::with_capacity(n),
            combo_counters: Vec::with_capacity(n),
            work_time: setup_started.elapsed(),
        }
    }

    /// One iteration of Algorithm 1's main loop, with its duration charged to
    /// the run's active work time. Returns `false` once the run has
    /// terminated (certified top-K, access cap, or exhaustion).
    fn step<S: ScoringFunction>(
        &mut self,
        problem: &mut Problem<S>,
        bound: &mut dyn BoundingScheme<S>,
        pull: &mut dyn PullStrategy,
    ) -> bool {
        let step_started = Instant::now();
        let progressed = self.step_inner(problem, bound, pull);
        self.work_time += step_started.elapsed();
        progressed
    }

    fn step_inner<S: ScoringFunction>(
        &mut self,
        problem: &mut Problem<S>,
        bound: &mut dyn BoundingScheme<S>,
        pull: &mut dyn PullStrategy,
    ) -> bool {
        if self.done {
            return false;
        }
        // Termination (Algorithm 1, line 3): K results whose worst score
        // *strictly dominates* the bound on anything still unseen (beyond
        // the numerical tolerance). Requiring strict dominance instead of
        // the paper's `≥` makes the returned set deterministic under score
        // ties: an unseen combination tying the K-th score keeps the bound
        // at that score, so the run reads on until every tying combination
        // has been formed and the by-id tie-break (the paper leaves the
        // criterion open) resolves them — independent of traversal order,
        // pulling strategy, or shard layout. With distinct scores the bound
        // drops strictly below the K-th score anyway, so this reads no
        // deeper on generic inputs.
        if self.output.len() >= self.k
            && self.output.kth_score() >= self.t + self.config.termination_tolerance
        {
            self.done = true;
            return false;
        }
        if let Some(cap) = self.config.max_accesses {
            if self.stats.sum_depths() >= cap {
                self.metrics.hit_access_cap = true;
                self.done = true;
                return false;
            }
        }
        // Pulling strategy (line 4). The potentials lane is refilled in
        // place — this runs once per sorted access.
        self.potentials.clear();
        self.potentials
            .extend((0..self.n).map(|i| bound.potential(i)));
        let Some(i) = pull.choose_input(&self.state, &self.potentials) else {
            // Every relation is exhausted: the retained top-K is exact.
            self.done = true;
            return false;
        };
        // Sorted access (line 5).
        match problem.relations_mut().relation_mut(i).next_tuple() {
            None => {
                self.state.mark_exhausted(i);
                let bound_started = Instant::now();
                self.t = bound.update(&self.state, problem.scoring(), None);
                self.metrics.bound_time += bound_started.elapsed();
                self.metrics.bound_updates += 1;
            }
            Some(tuple) => {
                self.stats.record_access(i);
                // Join with the seen prefixes of the other relations (line 6–7),
                // *before* adding the new tuple to its own buffer.
                let formed = self.form_combinations(problem.scoring(), i, &tuple);
                self.metrics.combinations_formed += formed;
                // Line 8: add the tuple to P_i, recording its distance from the
                // query under the aggregation function's own metric δ.
                let dist = problem.scoring().distance(&tuple.vector, &self.query);
                self.state.push_tuple_with_distance(i, tuple, dist);
                // Line 9: update the bound.
                let bound_started = Instant::now();
                self.t = bound.update(&self.state, problem.scoring(), Some(i));
                self.metrics.bound_time += bound_started.elapsed();
                self.metrics.bound_updates += 1;
                // Convergence capture: one predictable branch when disabled
                // (the common case), a stride-gated push when on.
                if self.config.convergence_every != 0 {
                    let depth = self.stats.sum_depths();
                    if depth.is_multiple_of(self.config.convergence_every) {
                        self.sample_trajectory(depth);
                    }
                }
            }
        }
        true
    }

    /// Records one bound-convergence sample at the given access depth.
    /// Consecutive duplicates at the same depth are collapsed and the
    /// profile is capped at [`MAX_TRAJECTORY_POINTS`].
    fn sample_trajectory(&mut self, depth: usize) {
        if self.metrics.trajectory.len() >= MAX_TRAJECTORY_POINTS {
            return;
        }
        if let Some(last) = self.metrics.trajectory.last() {
            if last.depth == depth as u64 {
                return;
            }
        }
        let kth_score = if self.output.len() >= self.k {
            self.output.kth_score()
        } else {
            f64::NEG_INFINITY
        };
        self.metrics.trajectory.push(TrajectoryPoint {
            depth: depth as u64,
            kth_score,
            bound: self.t,
        });
    }

    /// Steps until the next result is *certified* — its retained score
    /// reaches the bound on anything still unseen — and returns it. Returns
    /// the remaining buffered results once the run has terminated, then
    /// `None`.
    fn next_certified<S: ScoringFunction>(
        &mut self,
        problem: &mut Problem<S>,
        bound: &mut dyn BoundingScheme<S>,
        pull: &mut dyn PullStrategy,
    ) -> Option<ScoredCombination> {
        loop {
            // The best buffered entry not yet emitted, located by identity:
            // a near-tie formed later can insert *ahead* of emitted entries
            // (ids break exact ties), so buffer indexes are not stable.
            let next = self
                .output
                .as_slice()
                .iter()
                .find(|c| !self.is_emitted(c))
                .cloned();
            if let Some(combo) = next {
                // The entry is final once nothing unseen can beat *or tie*
                // it: every future combination uses at least one unseen
                // tuple and therefore scores at most `t`, so strict
                // dominance over `t` certifies both the score rank and the
                // by-id tie-break (an unseen tie could win on ids; see
                // `step_inner`).
                if self.done || combo.score >= self.t + self.config.termination_tolerance {
                    self.emitted.extend(combo.tuples.iter().map(|t| t.id));
                    return Some(combo);
                }
            } else if self.done {
                return None;
            }
            self.step(problem, bound, pull);
        }
    }

    /// `true` when `combo` has already been handed out by `next_certified`.
    /// The emitted list is a flat `TupleId` lane with stride `n`, scanned
    /// without materialising per-candidate id vectors.
    fn is_emitted(&self, combo: &ScoredCombination) -> bool {
        self.emitted.chunks_exact(self.n).any(|ids| {
            ids.iter()
                .zip(combo.tuples.iter())
                .all(|(id, t)| *id == t.id)
        })
    }

    /// Number of results already handed out by `next_certified`.
    fn emitted_count(&self) -> usize {
        self.emitted.len() / self.n
    }

    /// Forms every combination `P_1 × … × {new} × … × P_n`, scores it and
    /// pushes it into the output buffer (Algorithm 1 lines 6–7). Returns the
    /// number of combinations formed.
    ///
    /// The hot path scores each combination straight from the buffer-resident
    /// tuples; member tuples are cloned only when the score can actually
    /// enter the top-K buffer. The enumeration scratch (`combo_others`,
    /// `combo_counters`) is reused across calls.
    fn form_combinations<S: ScoringFunction>(
        &mut self,
        scoring: &S,
        new_relation: usize,
        new_tuple: &Tuple,
    ) -> usize {
        let n = self.n;
        // Every other relation must have at least one seen tuple.
        if (0..n).any(|j| j != new_relation && self.state.depth(j) == 0) {
            return 0;
        }
        self.combo_others.clear();
        self.combo_others
            .extend((0..n).filter(|&j| j != new_relation));
        self.combo_counters.clear();
        self.combo_counters.resize(self.combo_others.len(), 0);
        let mut members: Vec<(&Vector, f64)> = Vec::with_capacity(n);
        let mut formed = 0;
        loop {
            // Assemble the member views in relation order and score them.
            members.clear();
            let mut oi = 0;
            for j in 0..n {
                if j == new_relation {
                    members.push((&new_tuple.vector, new_tuple.score));
                } else {
                    let t = self
                        .state
                        .buffer(j)
                        .get(self.combo_counters[oi])
                        .expect("seen rank");
                    members.push((&t.vector, t.score));
                    oi += 1;
                }
            }
            let score = scoring.score_members(&members, &self.query);
            formed += 1;
            // Materialise the owned combination only when it can be
            // retained. NaN-safe: `!(score < kth)` keeps NaN scores on the
            // materialise path (`total_cmp` orders them deterministically),
            // and an IEEE-strict `score < kth` guarantees the buffer would
            // reject, so nothing insertable is ever skipped.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !self.output.is_full() || !(score < self.output.kth_score()) {
                let mut tuples: Vec<Tuple> = Vec::with_capacity(n);
                let mut oi = 0;
                for j in 0..n {
                    if j == new_relation {
                        tuples.push(new_tuple.clone());
                    } else {
                        tuples.push(
                            self.state
                                .buffer(j)
                                .get(self.combo_counters[oi])
                                .expect("seen rank")
                                .clone(),
                        );
                        oi += 1;
                    }
                }
                self.output.insert(ScoredCombination::new(tuples, score));
            }
            // Mixed-radix increment over the other relations' seen depths.
            let mut carry = true;
            for (ci, &j) in self.combo_others.iter().enumerate() {
                if !carry {
                    break;
                }
                self.combo_counters[ci] += 1;
                if self.combo_counters[ci] >= self.state.depth(j) {
                    self.combo_counters[ci] = 0;
                } else {
                    carry = false;
                }
            }
            if carry {
                break;
            }
        }
        formed
    }

    /// Consumes the core into the final result (the run must be done).
    fn finalize<S: ScoringFunction>(mut self, bound: &dyn BoundingScheme<S>) -> RankJoinResult {
        // Close the convergence profile with the terminal state, so an
        // enabled capture is never empty and always ends at the depth /
        // bound pair that actually certified (or exhausted) the run.
        if self.config.convergence_every != 0 {
            let depth = self.stats.sum_depths();
            if self.state.all_exhausted() {
                self.t = f64::NEG_INFINITY;
            }
            // An in-loop sample at the same depth predates any exhaustion
            // bound drop — replace it with the terminal state.
            if let Some(last) = self.metrics.trajectory.last() {
                if last.depth == depth as u64 {
                    self.metrics.trajectory.pop();
                }
            }
            self.sample_trajectory(depth);
        }
        // On an early-exhaustion run — every relation drained before the
        // bound certified the top-K — no unseen combination exists at all,
        // so the final bound is −∞ by definition. Set it structurally
        // rather than trusting the bounding scheme's last exhaustion
        // update, so the metric can never surface a stale (or default)
        // value for a run that ended this way.
        self.metrics.final_bound = if self.state.all_exhausted() {
            f64::NEG_INFINITY
        } else {
            self.t
        };
        self.metrics.dominance_time = bound.dominance_time();
        self.metrics.dominated_partials = bound.dominated_count();
        self.metrics.total_time = self.work_time;
        RankJoinResult {
            combinations: self.output.into_sorted_vec(),
            stats: self.stats,
            metrics: self.metrics,
        }
    }
}

/// Executes Algorithm 1 with the given bounding scheme and pulling strategy.
///
/// The relations of `problem` are consumed from their current position;
/// call [`Problem::reset`] first to rerun a problem from scratch.
pub fn execute<S: ScoringFunction>(
    problem: &mut Problem<S>,
    bound: &mut dyn BoundingScheme<S>,
    pull: &mut dyn PullStrategy,
) -> RankJoinResult {
    let mut core = RunCore::new(problem, bound);
    while core.step(problem, bound, pull) {}
    core.finalize(bound)
}

/// An owned, incremental Algorithm 1 run: the paper's pulling model as a
/// pull-based API.
///
/// Unlike [`execute`], which drives the run to completion, a `StreamingRun`
/// owns its problem, bounding scheme and pulling strategy, and performs
/// sorted accesses lazily: each [`next_certified`](Self::next_certified) call
/// does only the work needed to certify one more result. Because it owns
/// everything and all the operator state is `Send`, a run can be moved into a
/// worker thread and its results streamed out through a channel — exactly
/// how the `prj-engine` executor serves queries.
pub struct StreamingRun<S: ScoringFunction> {
    problem: Problem<S>,
    bound: Box<dyn BoundingScheme<S>>,
    pull: Box<dyn PullStrategy>,
    core: RunCore,
}

impl<S: ScoringFunction> StreamingRun<S> {
    /// Starts a run over `problem` (from the relations' current positions).
    pub fn new(
        problem: Problem<S>,
        mut bound: Box<dyn BoundingScheme<S>>,
        pull: Box<dyn PullStrategy>,
    ) -> Self {
        let core = RunCore::new(&problem, bound.as_mut());
        StreamingRun {
            problem,
            bound,
            pull,
            core,
        }
    }

    /// Returns the next certified result, performing only as many sorted
    /// accesses as needed; `None` once the top-K has been fully emitted.
    pub fn next_certified(&mut self) -> Option<ScoredCombination> {
        self.core
            .next_certified(&mut self.problem, self.bound.as_mut(), self.pull.as_mut())
    }

    /// Number of results already emitted by
    /// [`next_certified`](Self::next_certified).
    pub fn emitted(&self) -> usize {
        self.core.emitted_count()
    }

    /// Per-relation depths read so far.
    pub fn stats(&self) -> &AccessStats {
        &self.core.stats
    }

    /// The current upper bound `t` on any combination that still uses an
    /// unseen tuple, or `−∞` once every relation is exhausted. Sharded
    /// executions use this to aggregate a valid merged bound out of
    /// partially drained runs.
    pub fn current_bound(&self) -> f64 {
        if self.core.state.all_exhausted() {
            f64::NEG_INFINITY
        } else {
            self.core.t
        }
    }

    /// Instrumentation collected so far (work time, bound evaluations).
    pub fn metrics(&self) -> &RunMetrics {
        &self.core.metrics
    }

    /// Drives the run to completion and returns the full result; equivalent
    /// to having called [`execute`] on the same problem.
    pub fn into_result(mut self) -> RankJoinResult {
        while self
            .core
            .step(&mut self.problem, self.bound.as_mut(), self.pull.as_mut())
        {}
        self.core.finalize(self.bound.as_ref())
    }

    /// Gives back the problem (e.g. to rerun it), discarding run state.
    pub fn into_problem(self) -> Problem<S> {
        self.problem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use crate::bounds::{CornerBound, TightBound, TightBoundConfig};
    use crate::problem::ProblemBuilder;
    use crate::pull::{PotentialAdaptive, RoundRobin};
    use crate::scoring::EuclideanLogScore;
    use prj_access::{AccessKind, TupleId};
    use prj_geometry::Vector;

    fn table1_problem(k: usize) -> Problem<EuclideanLogScore> {
        let mk = |rel: usize, rows: &[([f64; 2], f64)]| -> Vec<Tuple> {
            rows.iter()
                .enumerate()
                .map(|(i, (x, s))| Tuple::new(TupleId::new(rel, i), Vector::from(*x), *s))
                .collect()
        };
        ProblemBuilder::new(
            Vector::from([0.0, 0.0]),
            EuclideanLogScore::new(1.0, 1.0, 1.0),
        )
        .k(k)
        .access_kind(AccessKind::Distance)
        .relation_from_tuples(mk(0, &[([0.0, -0.5], 0.5), ([0.0, 1.0], 1.0)]))
        .relation_from_tuples(mk(1, &[([1.0, 1.0], 1.0), ([-2.0, 2.0], 0.8)]))
        .relation_from_tuples(mk(2, &[([-1.0, 1.0], 1.0), ([-2.0, -2.0], 0.4)]))
        .build()
        .unwrap()
    }

    #[test]
    fn tight_bound_round_robin_finds_table1_top1() {
        let mut problem = table1_problem(1);
        let mut bound =
            TightBound::new(3, problem.scoring().weights(), TightBoundConfig::default());
        let mut pull = RoundRobin::new();
        let result = execute(&mut problem, &mut bound, &mut pull);
        assert_eq!(result.combinations.len(), 1);
        assert!((result.combinations[0].score - (-7.0)).abs() < 0.05);
        let ids: Vec<usize> = result.combinations[0]
            .tuples
            .iter()
            .map(|t| t.id.index)
            .collect();
        assert_eq!(ids, vec![1, 0, 0]); // τ1^(2) × τ2^(1) × τ3^(1)
                                        // All three relations only have two tuples; the tight bound should not
                                        // need to exhaust them all (Example 3.1 certifies after 6 accesses).
        assert!(result.sum_depths() <= 6);
    }

    #[test]
    fn corner_bound_also_correct_but_reads_at_least_as_much() {
        let mut p1 = table1_problem(1);
        let mut tb = TightBound::new(3, p1.scoring().weights(), TightBoundConfig::default());
        let mut rr = RoundRobin::new();
        let tight = execute(&mut p1, &mut tb, &mut rr);

        let mut p2 = table1_problem(1);
        let mut cb = CornerBound::new(3);
        let mut rr = RoundRobin::new();
        let corner = execute(&mut p2, &mut cb, &mut rr);

        assert!((tight.combinations[0].score - corner.combinations[0].score).abs() < 1e-9);
        assert!(corner.sum_depths() >= tight.sum_depths());
    }

    #[test]
    fn top_k_larger_than_cross_product_returns_everything() {
        let mut problem = table1_problem(20);
        let mut bound =
            TightBound::new(3, problem.scoring().weights(), TightBoundConfig::default());
        let mut pull = PotentialAdaptive::new();
        let result = execute(&mut problem, &mut bound, &mut pull);
        // Only 8 combinations exist.
        assert_eq!(result.combinations.len(), 8);
        // Scores must be sorted non-increasing.
        for w in result.combinations.windows(2) {
            assert!(w[0].score >= w[1].score - 1e-12);
        }
        // Everything had to be read.
        assert_eq!(result.sum_depths(), 6);
    }

    #[test]
    fn access_cap_is_honoured() {
        let mut problem = table1_problem(5);
        problem.set_config(crate::problem::ProxRjConfig {
            max_accesses: Some(3),
            ..Default::default()
        });
        let mut bound = CornerBound::new(3);
        let mut pull = RoundRobin::new();
        let result = execute(&mut problem, &mut bound, &mut pull);
        assert!(result.metrics.hit_access_cap);
        assert_eq!(result.sum_depths(), 3);
    }

    #[test]
    fn metrics_are_populated() {
        let mut problem = table1_problem(2);
        let mut bound =
            TightBound::new(3, problem.scoring().weights(), TightBoundConfig::default());
        let mut pull = RoundRobin::new();
        let result = execute(&mut problem, &mut bound, &mut pull);
        assert!(result.metrics.bound_updates >= result.sum_depths());
        assert!(result.metrics.combinations_formed >= result.combinations.len());
        assert!(
            result.metrics.final_bound.is_finite()
                || result.metrics.final_bound == f64::NEG_INFINITY
        );
        assert!(result.metrics.total_time >= result.metrics.bound_time);
        assert!(result.best_score().is_some());
    }

    #[test]
    fn convergence_trajectory_is_captured_when_enabled() {
        // Off by default: no points, whatever the run shape.
        let mut problem = table1_problem(2);
        let plain = Algorithm::Tbrr.run(&mut problem).unwrap();
        assert!(plain.trajectory().is_empty());

        // On: non-empty, depths strictly increasing, last point at the
        // terminal depth with the certified bound, and the result rows are
        // bit-identical to the uninstrumented run.
        let mut problem = table1_problem(2);
        problem.set_config(crate::problem::ProxRjConfig {
            convergence_every: 1,
            ..Default::default()
        });
        let traced = Algorithm::Tbrr.run(&mut problem).unwrap();
        assert_eq!(traced.combinations, plain.combinations);
        assert_eq!(traced.stats, plain.stats);
        let traj = traced.trajectory();
        assert!(!traj.is_empty());
        for w in traj.windows(2) {
            assert!(w[0].depth < w[1].depth, "depths must strictly increase");
        }
        let last = traj.last().unwrap();
        assert_eq!(last.depth, traced.sum_depths() as u64);
        assert_eq!(last.bound, traced.metrics.final_bound);
        // A certified run ends with the kth score dominating the bound.
        assert!(last.kth_score >= last.bound);

        // A sparse stride still closes with the terminal point.
        let mut problem = table1_problem(2);
        problem.set_config(crate::problem::ProxRjConfig {
            convergence_every: 1000,
            ..Default::default()
        });
        let sparse = Algorithm::Tbrr.run(&mut problem).unwrap();
        assert_eq!(sparse.combinations, plain.combinations);
        assert_eq!(sparse.trajectory().len(), 1);
        assert_eq!(sparse.trajectory()[0].depth, sparse.sum_depths() as u64);
    }

    #[test]
    fn final_bound_is_populated_on_early_exhaustion() {
        // k far larger than the cross product: every relation drains before
        // the bound can certify, and the run terminates by exhaustion. The
        // final bound must reflect that (−∞: nothing unseen remains), not
        // sit at the RunMetrics default of 0.0.
        for algo in Algorithm::all() {
            let mut problem = table1_problem(50);
            let result = algo.run(&mut problem).unwrap();
            assert_eq!(result.combinations.len(), 8, "{algo}: full cross product");
            assert_eq!(
                result.metrics.final_bound,
                f64::NEG_INFINITY,
                "{algo}: exhausted run must report the certified -inf bound"
            );
        }
        // The streaming driver shares the same finalisation.
        let problem = table1_problem(50);
        let bound = Box::new(TightBound::new(
            3,
            problem.scoring().weights(),
            TightBoundConfig::default(),
        ));
        let mut run = StreamingRun::new(problem, bound, Box::new(RoundRobin::new()));
        while run.next_certified().is_some() {}
        let result = run.into_result();
        assert_eq!(result.metrics.final_bound, f64::NEG_INFINITY);
    }

    #[test]
    fn final_bound_is_finite_on_certified_runs() {
        // A certified top-1 stops with unseen tuples left; the recorded
        // bound is the finite value that certified the result.
        let mut problem = table1_problem(1);
        let result = Algorithm::Tbrr.run(&mut problem).unwrap();
        assert!(result.metrics.final_bound.is_finite());
        assert!(result.combinations[0].score >= result.metrics.final_bound - 1e-9);
    }

    #[test]
    fn streaming_run_matches_execute() {
        let mut problem = table1_problem(8);
        let mut bound =
            TightBound::new(3, problem.scoring().weights(), TightBoundConfig::default());
        let mut pull = RoundRobin::new();
        let batch = execute(&mut problem, &mut bound, &mut pull);

        let problem = table1_problem(8);
        let bound = Box::new(TightBound::new(
            3,
            problem.scoring().weights(),
            TightBoundConfig::default(),
        ));
        let mut run = StreamingRun::new(problem, bound, Box::new(RoundRobin::new()));
        let mut streamed = Vec::new();
        while let Some(combo) = run.next_certified() {
            streamed.push(combo);
        }
        assert_eq!(streamed.len(), batch.combinations.len());
        for (s, b) in streamed.iter().zip(batch.combinations.iter()) {
            assert_eq!(s, b, "streamed results must match batch results exactly");
        }
        assert_eq!(run.emitted(), streamed.len());
    }

    #[test]
    fn streaming_results_arrive_in_score_order_and_incrementally() {
        let problem = table1_problem(8);
        let bound = Box::new(TightBound::new(
            3,
            problem.scoring().weights(),
            TightBoundConfig::default(),
        ));
        let mut run = StreamingRun::new(problem, bound, Box::new(RoundRobin::new()));
        let first = run.next_certified().expect("at least one result");
        let depth_after_first = run.stats().sum_depths();
        let mut previous = first.score;
        let mut count = 1;
        while let Some(combo) = run.next_certified() {
            assert!(combo.score <= previous + 1e-12, "scores must not increase");
            previous = combo.score;
            count += 1;
        }
        // Emitting the full cross product requires exhausting the relations,
        // so the first certified result must have been cheaper than the rest.
        assert!(depth_after_first <= run.stats().sum_depths());
        assert_eq!(count, 8);
    }

    #[test]
    fn streaming_into_result_equals_execute() {
        let mut problem = table1_problem(2);
        let mut bound = CornerBound::new(3);
        let mut pull = RoundRobin::new();
        let batch = execute(&mut problem, &mut bound, &mut pull);

        let problem = table1_problem(2);
        let run = StreamingRun::new(
            problem,
            Box::new(CornerBound::new(3)),
            Box::new(RoundRobin::new()),
        );
        let streamed = run.into_result();
        assert_eq!(streamed.combinations, batch.combinations);
        assert_eq!(streamed.stats, batch.stats);
    }

    #[test]
    fn query_is_shared_not_copied_across_operator_state() {
        // White-box allocation check for the per-unit query-clone fix: the
        // problem, the run core and the join state must all hold refcount
        // bumps on ONE query allocation, not per-layer deep copies.
        let q = Arc::new(Vector::from([0.0, 0.0]));
        let mk = |rel: usize, rows: &[([f64; 2], f64)]| -> Vec<Tuple> {
            rows.iter()
                .enumerate()
                .map(|(i, (x, s))| Tuple::new(TupleId::new(rel, i), Vector::from(*x), *s))
                .collect()
        };
        let problem = ProblemBuilder::new(Arc::clone(&q), EuclideanLogScore::new(1.0, 1.0, 1.0))
            .k(2)
            .access_kind(AccessKind::Distance)
            .relation_from_tuples(mk(0, &[([0.0, -0.5], 0.5), ([0.0, 1.0], 1.0)]))
            .relation_from_tuples(mk(1, &[([1.0, 1.0], 1.0), ([-2.0, 2.0], 0.8)]))
            .build()
            .unwrap();
        assert!(
            Arc::ptr_eq(&q, problem.query_shared()),
            "builder must keep the caller's query allocation"
        );
        assert_eq!(Arc::strong_count(&q), 2); // test handle + problem
        let run = StreamingRun::new(
            problem,
            Box::new(CornerBound::new(2)),
            Box::new(RoundRobin::new()),
        );
        // Exactly two more holders appear (run core + join state); a deep
        // copy anywhere would leave the count short.
        assert_eq!(Arc::strong_count(&q), 4);
        drop(run);
        assert_eq!(Arc::strong_count(&q), 1);
    }

    #[test]
    fn streaming_run_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<StreamingRun<EuclideanLogScore>>();
    }

    #[test]
    fn score_based_access_execution() {
        let mk = |rel: usize, rows: &[([f64; 2], f64)]| -> Vec<Tuple> {
            rows.iter()
                .enumerate()
                .map(|(i, (x, s))| Tuple::new(TupleId::new(rel, i), Vector::from(*x), *s))
                .collect()
        };
        let mut problem = ProblemBuilder::new(
            Vector::from([0.0, 0.0]),
            EuclideanLogScore::new(1.0, 1.0, 1.0),
        )
        .k(2)
        .access_kind(AccessKind::Score)
        .relation_from_tuples(mk(
            0,
            &[([0.1, 0.0], 0.9), ([2.0, 0.0], 0.8), ([0.2, 0.1], 0.3)],
        ))
        .relation_from_tuples(mk(
            1,
            &[([0.0, 0.1], 1.0), ([0.0, 3.0], 0.7), ([-0.2, 0.0], 0.2)],
        ))
        .build()
        .unwrap();
        let mut bound =
            TightBound::new(2, problem.scoring().weights(), TightBoundConfig::default());
        let mut pull = RoundRobin::new();
        let result = execute(&mut problem, &mut bound, &mut pull);
        assert_eq!(result.combinations.len(), 2);
        // The best pair is the two high-score tuples sitting next to the query.
        let ids: Vec<usize> = result.combinations[0]
            .tuples
            .iter()
            .map(|t| t.id.index)
            .collect();
        assert_eq!(ids, vec![0, 0]);
    }
}
