//! Exhaustive baseline: read everything, score the full cross product.
//!
//! Not an algorithm from the paper, but the obvious correctness oracle: every
//! ProxRJ instantiation must return exactly the same top-K (up to score ties)
//! while reading far less input. It also serves as the "no early termination"
//! comparator in the experiment harness.

use crate::combination::{ScoredCombination, TopKBuffer};
use crate::operator::{RankJoinResult, RunMetrics};
use crate::problem::Problem;
use crate::scoring::ScoringFunction;
use prj_access::{AccessStats, Tuple};
use std::time::Instant;

/// Reads every relation to exhaustion and returns the exact top-K of the full
/// cross product.
pub fn naive_rank_join<S: ScoringFunction>(problem: &mut Problem<S>) -> RankJoinResult {
    let started = Instant::now();
    problem.reset();
    let n = problem.num_relations();
    let query = problem.query().clone();
    let mut stats = AccessStats::new(n);

    // Drain every relation.
    let mut contents: Vec<Vec<Tuple>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut tuples = Vec::new();
        while let Some(t) = problem.relations_mut().relation_mut(i).next_tuple() {
            stats.record_access(i);
            tuples.push(t);
        }
        contents.push(tuples);
    }

    let mut output = TopKBuffer::new(problem.k());
    let mut metrics = RunMetrics::default();

    if contents.iter().all(|c| !c.is_empty()) {
        let mut counters = vec![0usize; n];
        loop {
            let tuples: Vec<Tuple> = (0..n).map(|j| contents[j][counters[j]].clone()).collect();
            let members: Vec<(&prj_geometry::Vector, f64)> =
                tuples.iter().map(|t| (&t.vector, t.score)).collect();
            let score = problem.scoring().score_members(&members, &query);
            drop(members);
            output.insert(ScoredCombination::new(tuples, score));
            metrics.combinations_formed += 1;
            let mut carry = true;
            for j in 0..n {
                if !carry {
                    break;
                }
                counters[j] += 1;
                if counters[j] >= contents[j].len() {
                    counters[j] = 0;
                } else {
                    carry = false;
                }
            }
            if carry {
                break;
            }
        }
    }

    metrics.final_bound = f64::NEG_INFINITY;
    metrics.total_time = started.elapsed();
    RankJoinResult {
        combinations: output.into_sorted_vec(),
        stats,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ProblemBuilder;
    use crate::scoring::EuclideanLogScore;
    use prj_access::{AccessKind, TupleId};
    use prj_geometry::Vector;

    fn mk(rel: usize, rows: &[([f64; 2], f64)]) -> Vec<Tuple> {
        rows.iter()
            .enumerate()
            .map(|(i, (x, s))| Tuple::new(TupleId::new(rel, i), Vector::from(*x), *s))
            .collect()
    }

    #[test]
    fn naive_reads_everything_and_ranks_table1() {
        let mut problem = ProblemBuilder::new(
            Vector::from([0.0, 0.0]),
            EuclideanLogScore::new(1.0, 1.0, 1.0),
        )
        .k(8)
        .relation_from_tuples(mk(0, &[([0.0, -0.5], 0.5), ([0.0, 1.0], 1.0)]))
        .relation_from_tuples(mk(1, &[([1.0, 1.0], 1.0), ([-2.0, 2.0], 0.8)]))
        .relation_from_tuples(mk(2, &[([-1.0, 1.0], 1.0), ([-2.0, -2.0], 0.4)]))
        .build()
        .unwrap();
        let result = naive_rank_join(&mut problem);
        assert_eq!(result.sum_depths(), 6);
        assert_eq!(result.combinations.len(), 8);
        assert_eq!(result.metrics.combinations_formed, 8);
        assert!((result.combinations[0].score - (-7.0)).abs() < 0.05);
        assert!((result.combinations[7].score - (-29.5)).abs() < 0.05);
        for w in result.combinations.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn naive_with_empty_relation_returns_nothing() {
        let mut problem =
            ProblemBuilder::new(Vector::from([0.0, 0.0]), EuclideanLogScore::default())
                .k(3)
                .access_kind(AccessKind::Distance)
                .relation_from_tuples(mk(0, &[([1.0, 0.0], 0.5)]))
                .relation_from_tuples(Vec::new())
                .build()
                .unwrap();
        let result = naive_rank_join(&mut problem);
        assert!(result.combinations.is_empty());
        assert_eq!(result.sum_depths(), 1);
    }
}
