//! Error types of the proximity rank join operator.

use std::fmt;

/// Errors raised while building or executing a proximity rank join problem.
#[derive(Debug, Clone, PartialEq)]
pub enum PrjError {
    /// The problem has no input relations.
    NoRelations,
    /// `K` must be at least 1.
    InvalidK,
    /// A tuple's feature vector does not match the query dimensionality.
    DimensionMismatch {
        /// Dimensionality of the query vector.
        expected: usize,
        /// Dimensionality of the offending tuple.
        found: usize,
    },
    /// A tuple has a non-positive score, which the logarithmic aggregation
    /// function of Eq. 2 cannot handle.
    NonPositiveScore {
        /// The offending score value.
        score: f64,
    },
    /// A tight-bound algorithm was requested but the scoring function does
    /// not expose Euclidean-reduction weights (paper Sec. 3.2.1); only the
    /// corner-bound algorithms and the exhaustive baseline can run.
    ScoringNotReducible,
}

impl fmt::Display for PrjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrjError::NoRelations => write!(f, "the problem has no input relations"),
            PrjError::InvalidK => write!(f, "K must be at least 1"),
            PrjError::DimensionMismatch { expected, found } => write!(
                f,
                "feature vector dimension {found} does not match the query dimension {expected}"
            ),
            PrjError::NonPositiveScore { score } => {
                write!(f, "tuple score {score} is not strictly positive")
            }
            PrjError::ScoringNotReducible => write!(
                f,
                "the scoring function has no Euclidean reduction; tight-bound algorithms are unavailable"
            ),
        }
    }
}

impl std::error::Error for PrjError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        assert!(PrjError::NoRelations
            .to_string()
            .contains("no input relations"));
        assert!(PrjError::InvalidK.to_string().contains("K"));
        assert!(PrjError::DimensionMismatch {
            expected: 2,
            found: 3
        }
        .to_string()
        .contains("dimension"));
        assert!(PrjError::NonPositiveScore { score: 0.0 }
            .to_string()
            .contains("positive"));
        assert!(PrjError::ScoringNotReducible
            .to_string()
            .contains("Euclidean"));
    }
}
