//! Aggregation functions and proximity weighting (paper Sec. 2, Eq. 1–2).
//!
//! The aggregate score of a combination `τ = τ_1 × … × τ_n` is
//!
//! ```text
//! S(τ) = f(S(τ_1), …, S(τ_n)),
//! S(τ_i) = g_i(σ(τ_i), δ(x(τ_i), q), δ(x(τ_i), μ(τ)))
//! ```
//!
//! with `f` monotone non-decreasing and `g_i` non-decreasing in the score and
//! non-increasing in both distances. [`ScoringFunction`] captures this
//! contract; [`EuclideanLogScore`] is the paper's reference instantiation
//! (Eq. 2) and the one for which the tight bound admits an efficient
//! reduction; [`CosineSimilarityScore`] is the future-work extension sketched
//! in the paper's conclusion (usable with the corner bound and the exhaustive
//! baseline).

use prj_geometry::{mean_centroid, CosineDistance, Euclidean, Metric, Vector};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The `(w_s, w_q, w_μ)` weights of the Euclidean-log aggregation (Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    /// Weight of the (log-)score term.
    pub w_s: f64,
    /// Weight of the squared distance from the query.
    pub w_q: f64,
    /// Weight of the squared distance from the combination centroid.
    pub w_mu: f64,
}

impl Weights {
    /// Creates a weight triple.
    ///
    /// # Panics
    /// Panics if any weight is negative or `w_q` is zero (the tight-bound
    /// reduction requires a strictly positive pull towards the query to keep
    /// the Hessian positive definite).
    pub fn new(w_s: f64, w_q: f64, w_mu: f64) -> Weights {
        assert!(w_s >= 0.0 && w_q > 0.0 && w_mu >= 0.0, "invalid weights");
        Weights { w_s, w_q, w_mu }
    }
}

impl Default for Weights {
    fn default() -> Self {
        Weights {
            w_s: 1.0,
            w_q: 1.0,
            w_mu: 1.0,
        }
    }
}

/// A member of a (possibly hypothetical) combination: a location plus a score.
///
/// Bounds evaluate the aggregation function at locations that do not
/// correspond to any concrete tuple (the optimal positions of unseen tuples),
/// hence the scoring API works on `(vector, score)` pairs rather than
/// [`prj_access::Tuple`]s.
pub type Member<'a> = (&'a Vector, f64);

/// The aggregation function of a proximity rank join problem.
pub trait ScoringFunction: Send + Sync {
    /// The proximity weighting function `g` applied to one member:
    /// non-decreasing in `sigma`, non-increasing in `dist_to_query` and
    /// `dist_to_centroid`.
    fn proximity_weighted_score(
        &self,
        sigma: f64,
        dist_to_query: f64,
        dist_to_centroid: f64,
    ) -> f64;

    /// The monotone aggregation `f` over the per-member scores. The default
    /// is the sum, as in Eq. 2.
    fn aggregate(&self, parts: &[f64]) -> f64 {
        parts.iter().sum()
    }

    /// The distance `δ` used for proximity. Defaults to Euclidean.
    fn distance(&self, a: &Vector, b: &Vector) -> f64 {
        Euclidean.distance(a, b)
    }

    /// The combination centroid `μ(τ)`. Defaults to the arithmetic mean,
    /// which is the minimiser of the sum of squared Euclidean distances and
    /// therefore the right choice for Eq. 2.
    fn centroid(&self, points: &[&Vector]) -> Vector {
        mean_centroid(points)
    }

    /// Scores a full (possibly hypothetical) combination given its members.
    fn score_members(&self, members: &[Member<'_>], query: &Vector) -> f64 {
        assert!(!members.is_empty(), "cannot score an empty combination");
        let points: Vec<&Vector> = members.iter().map(|(v, _)| *v).collect();
        let mu = self.centroid(&points);
        let parts: Vec<f64> = members
            .iter()
            .map(|(v, sigma)| {
                self.proximity_weighted_score(
                    *sigma,
                    self.distance(v, query),
                    self.distance(v, &mu),
                )
            })
            .collect();
        self.aggregate(&parts)
    }

    /// When the function has the Euclidean-log form of Eq. 2, returns its
    /// weights, enabling the tight-bound reduction of Sec. 3.2.1 (collinearity
    /// theorem + 1-D QP). Returns `None` otherwise, in which case only the
    /// corner bound and the exhaustive baseline are available.
    fn euclidean_weights(&self) -> Option<Weights> {
        None
    }

    /// A short name for reports.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// A scoring function that can be served and memoised by a query engine.
///
/// `ScoringSpec` extends [`ScoringFunction`] with the one obligation a
/// result cache needs: a *fingerprint* of the scoring parameters. A cached
/// top-k result may only be replayed for a later query when every input that
/// determines the output matches, and the scoring function is one of those
/// inputs; folding the fingerprint into the trait makes new scoring
/// functions cache-safe by construction — they cannot be registered with an
/// engine without saying how they key the cache.
///
/// Implementations are used as trait objects (`Arc<dyn ScoringSpec>`), so
/// the engine can dispatch over scorings registered at runtime.
pub trait ScoringSpec: ScoringFunction + std::fmt::Debug {
    /// A 64-bit digest of everything that affects scores: the scoring
    /// family *and* its parameters.
    ///
    /// The digest must change whenever the function would score some
    /// combination differently; collisions across *different* scoring
    /// families are avoided by hashing a unique family name alongside the
    /// parameters (see [`fingerprint`] for the canonical helper).
    fn cache_fingerprint(&self) -> u64;
}

/// Canonical fingerprint helper: hashes a unique scoring-family `name`
/// together with the parameter list. Collisions across families are avoided
/// by the name; collisions within a family by the bit patterns of the
/// parameters.
pub fn fingerprint(name: &str, params: &[f64]) -> u64 {
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    for p in params {
        p.to_bits().hash(&mut h);
    }
    h.finish()
}

/// Forwarding impl so shared trait objects (`Arc<dyn ScoringSpec>`, or any
/// `Arc<S>`) can be used wherever a `ScoringFunction` is expected — in
/// particular as the `S` of a [`crate::Problem`]. Every method forwards,
/// including the defaulted ones, so implementations that override
/// `aggregate`, `distance` or `centroid` keep their behaviour behind the
/// `Arc`.
impl<T: ScoringFunction + ?Sized> ScoringFunction for Arc<T> {
    fn proximity_weighted_score(
        &self,
        sigma: f64,
        dist_to_query: f64,
        dist_to_centroid: f64,
    ) -> f64 {
        (**self).proximity_weighted_score(sigma, dist_to_query, dist_to_centroid)
    }

    fn aggregate(&self, parts: &[f64]) -> f64 {
        (**self).aggregate(parts)
    }

    fn distance(&self, a: &Vector, b: &Vector) -> f64 {
        (**self).distance(a, b)
    }

    fn centroid(&self, points: &[&Vector]) -> Vector {
        (**self).centroid(points)
    }

    fn score_members(&self, members: &[Member<'_>], query: &Vector) -> f64 {
        (**self).score_members(members, query)
    }

    fn euclidean_weights(&self) -> Option<Weights> {
        (**self).euclidean_weights()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// The paper's reference aggregation function (Eq. 2):
///
/// ```text
/// S(τ) = Σ_i  w_s·ln σ(τ_i) − w_q·‖x(τ_i) − q‖² − w_μ·‖x(τ_i) − μ(τ)‖²
/// ```
///
/// Scores must be strictly positive (they are in `(0, 1]` in the paper, which
/// makes `S(τ) ∈ (−∞, 0]`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EuclideanLogScore {
    weights: Weights,
}

impl EuclideanLogScore {
    /// Creates the scoring function with weights `(w_s, w_q, w_μ)`.
    pub fn new(w_s: f64, w_q: f64, w_mu: f64) -> Self {
        EuclideanLogScore {
            weights: Weights::new(w_s, w_q, w_mu),
        }
    }

    /// Creates the scoring function from a [`Weights`] triple.
    pub fn from_weights(weights: Weights) -> Self {
        EuclideanLogScore { weights }
    }

    /// The weight triple.
    pub fn weights(&self) -> Weights {
        self.weights
    }
}

impl ScoringFunction for EuclideanLogScore {
    fn proximity_weighted_score(
        &self,
        sigma: f64,
        dist_to_query: f64,
        dist_to_centroid: f64,
    ) -> f64 {
        debug_assert!(sigma > 0.0, "Eq. 2 requires strictly positive scores");
        self.weights.w_s * sigma.ln()
            - self.weights.w_q * dist_to_query * dist_to_query
            - self.weights.w_mu * dist_to_centroid * dist_to_centroid
    }

    fn euclidean_weights(&self) -> Option<Weights> {
        Some(self.weights)
    }

    fn name(&self) -> &'static str {
        "euclidean-log"
    }
}

impl ScoringSpec for EuclideanLogScore {
    fn cache_fingerprint(&self) -> u64 {
        let w = self.weights;
        fingerprint(ScoringFunction::name(self), &[w.w_s, w.w_q, w.w_mu])
    }
}

/// A cosine-similarity-based aggregation: the proximity of a member to the
/// query and to the centroid is measured by cosine distance instead of
/// Euclidean distance,
///
/// ```text
/// S(τ) = Σ_i  w_s·σ(τ_i) − w_q·cosdist(x(τ_i), q) − w_μ·cosdist(x(τ_i), μ(τ))
/// ```
///
/// This is the extension announced in the paper's conclusion ("we also intend
/// to specialize the tight bounding scheme to the case of proximity based on
/// cosine similarity"). No tight-bound reduction is provided, so it can be
/// used with the corner-bound algorithms (CBRR/CBPA) and the exhaustive
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineSimilarityScore {
    /// Weight of the (linear) score term.
    pub w_s: f64,
    /// Weight of the cosine distance from the query.
    pub w_q: f64,
    /// Weight of the cosine distance from the centroid.
    pub w_mu: f64,
}

impl CosineSimilarityScore {
    /// Creates the scoring function.
    pub fn new(w_s: f64, w_q: f64, w_mu: f64) -> Self {
        CosineSimilarityScore { w_s, w_q, w_mu }
    }
}

impl Default for CosineSimilarityScore {
    fn default() -> Self {
        CosineSimilarityScore::new(1.0, 1.0, 1.0)
    }
}

impl ScoringFunction for CosineSimilarityScore {
    fn proximity_weighted_score(
        &self,
        sigma: f64,
        dist_to_query: f64,
        dist_to_centroid: f64,
    ) -> f64 {
        self.w_s * sigma - self.w_q * dist_to_query - self.w_mu * dist_to_centroid
    }

    fn distance(&self, a: &Vector, b: &Vector) -> f64 {
        CosineDistance.distance(a, b)
    }

    fn name(&self) -> &'static str {
        "cosine-similarity"
    }
}

impl ScoringSpec for CosineSimilarityScore {
    fn cache_fingerprint(&self) -> u64 {
        fingerprint(
            ScoringFunction::name(self),
            &[self.w_s, self.w_q, self.w_mu],
        )
    }
}

#[cfg(test)]
#[allow(clippy::type_complexity, clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn v(x: &[f64]) -> Vector {
        Vector::from(x)
    }

    /// Table 1 of the paper: three relations, two tuples each, and the eight
    /// combinations with their aggregate scores under Eq. 2 with
    /// w_s = w_q = w_μ = 1 and q = 0.
    fn table1() -> (Vec<(Vector, f64)>, Vec<(Vector, f64)>, Vec<(Vector, f64)>) {
        let r1 = vec![(v(&[0.0, -0.5]), 0.5), (v(&[0.0, 1.0]), 1.0)];
        let r2 = vec![(v(&[1.0, 1.0]), 1.0), (v(&[-2.0, 2.0]), 0.8)];
        let r3 = vec![(v(&[-1.0, 1.0]), 1.0), (v(&[-2.0, -2.0]), 0.4)];
        (r1, r2, r3)
    }

    fn score_combo(s: &EuclideanLogScore, members: &[(&Vector, f64)]) -> f64 {
        s.score_members(members, &v(&[0.0, 0.0]))
    }

    #[test]
    fn table1_top_combination_scores() {
        let s = EuclideanLogScore::new(1.0, 1.0, 1.0);
        let (r1, r2, r3) = table1();
        // τ1^(2) × τ2^(1) × τ3^(1) -> -7.0
        let top = score_combo(
            &s,
            &[
                (&r1[1].0, r1[1].1),
                (&r2[0].0, r2[0].1),
                (&r3[0].0, r3[0].1),
            ],
        );
        assert!((top - (-7.0)).abs() < 0.05, "expected -7.0, got {top}");
        // τ1^(1) × τ2^(1) × τ3^(1) -> -8.4
        let second = score_combo(
            &s,
            &[
                (&r1[0].0, r1[0].1),
                (&r2[0].0, r2[0].1),
                (&r3[0].0, r3[0].1),
            ],
        );
        assert!(
            (second - (-8.4)).abs() < 0.05,
            "expected -8.4, got {second}"
        );
        // τ1^(2) × τ2^(2) × τ3^(2) -> -29.5 (worst)
        let worst = score_combo(
            &s,
            &[
                (&r1[1].0, r1[1].1),
                (&r2[1].0, r2[1].1),
                (&r3[1].0, r3[1].1),
            ],
        );
        assert!(
            (worst - (-29.5)).abs() < 0.05,
            "expected -29.5, got {worst}"
        );
    }

    #[test]
    fn table1_full_ranking_matches_paper() {
        let s = EuclideanLogScore::new(1.0, 1.0, 1.0);
        let (r1, r2, r3) = table1();
        // Paper's ranking of the 8 combinations by (i1, i2, i3) indices, best first.
        let expected_order = [
            (1, 0, 0),
            (0, 0, 0),
            (1, 1, 0),
            (0, 1, 0),
            (0, 0, 1),
            (1, 0, 1),
            (0, 1, 1),
            (1, 1, 1),
        ];
        let mut scored: Vec<((usize, usize, usize), f64)> = Vec::new();
        for i1 in 0..2 {
            for i2 in 0..2 {
                for i3 in 0..2 {
                    let sc = score_combo(
                        &s,
                        &[
                            (&r1[i1].0, r1[i1].1),
                            (&r2[i2].0, r2[i2].1),
                            (&r3[i3].0, r3[i3].1),
                        ],
                    );
                    scored.push(((i1, i2, i3), sc));
                }
            }
        }
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        let order: Vec<(usize, usize, usize)> = scored.iter().map(|(k, _)| *k).collect();
        assert_eq!(order, expected_order);
    }

    #[test]
    fn monotonicity_of_g() {
        let s = EuclideanLogScore::default();
        // non-decreasing in sigma
        assert!(
            s.proximity_weighted_score(0.9, 1.0, 1.0) > s.proximity_weighted_score(0.5, 1.0, 1.0)
        );
        // non-increasing in distance from query
        assert!(
            s.proximity_weighted_score(0.5, 2.0, 1.0) < s.proximity_weighted_score(0.5, 1.0, 1.0)
        );
        // non-increasing in distance from centroid
        assert!(
            s.proximity_weighted_score(0.5, 1.0, 2.0) < s.proximity_weighted_score(0.5, 1.0, 1.0)
        );
    }

    #[test]
    fn weights_are_exposed_for_reduction() {
        let s = EuclideanLogScore::new(2.0, 3.0, 0.5);
        let w = s.euclidean_weights().unwrap();
        assert_eq!(w.w_s, 2.0);
        assert_eq!(w.w_q, 3.0);
        assert_eq!(w.w_mu, 0.5);
        assert_eq!(s.name(), "euclidean-log");
        let c = CosineSimilarityScore::default();
        assert!(c.euclidean_weights().is_none());
        assert_eq!(c.name(), "cosine-similarity");
    }

    #[test]
    fn single_member_combination_has_zero_centroid_distance() {
        let s = EuclideanLogScore::new(1.0, 1.0, 1.0);
        let x = v(&[0.0, 2.0]);
        // centroid == the single member, so only the score and query terms remain.
        let score = s.score_members(&[(&x, 1.0)], &v(&[0.0, 0.0]));
        assert!((score - (0.0 - 4.0 - 0.0)).abs() < 1e-12);
    }

    #[test]
    fn cosine_score_prefers_aligned_vectors() {
        let s = CosineSimilarityScore::default();
        let q = v(&[1.0, 0.0]);
        let aligned = v(&[2.0, 0.1]);
        let orthogonal = v(&[0.0, 3.0]);
        let a = s.score_members(&[(&aligned, 0.5)], &q);
        let b = s.score_members(&[(&orthogonal, 0.5)], &q);
        assert!(a > b);
    }

    #[test]
    fn default_weights_are_all_one() {
        let w = Weights::default();
        assert_eq!((w.w_s, w.w_q, w.w_mu), (1.0, 1.0, 1.0));
    }

    #[test]
    #[should_panic]
    fn zero_query_weight_is_rejected() {
        let _ = Weights::new(1.0, 0.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn empty_combination_panics() {
        let s = EuclideanLogScore::default();
        let _ = s.score_members(&[], &v(&[0.0]));
    }

    #[test]
    fn fingerprints_separate_families_and_parameters() {
        let a = EuclideanLogScore::new(1.0, 1.0, 1.0);
        let b = EuclideanLogScore::new(2.0, 1.0, 1.0);
        let c = CosineSimilarityScore::new(1.0, 1.0, 1.0);
        assert_eq!(a.cache_fingerprint(), a.cache_fingerprint());
        assert_ne!(a.cache_fingerprint(), b.cache_fingerprint());
        assert_ne!(
            a.cache_fingerprint(),
            c.cache_fingerprint(),
            "same parameters, different families must not collide"
        );
        assert_eq!(fingerprint("x", &[1.0, 2.0]), fingerprint("x", &[1.0, 2.0]));
        assert_ne!(fingerprint("x", &[1.0, 2.0]), fingerprint("y", &[1.0, 2.0]));
    }

    #[test]
    fn arc_trait_objects_forward_every_method() {
        let concrete = CosineSimilarityScore::new(1.0, 2.0, 0.5);
        let shared: std::sync::Arc<dyn ScoringSpec> = std::sync::Arc::new(concrete);
        let q = v(&[1.0, 0.0]);
        let x = v(&[0.0, 1.0]);
        // `distance` is overridden to cosine distance; the Arc must forward
        // to the override, not the Euclidean default.
        assert!((shared.distance(&q, &x) - concrete.distance(&q, &x)).abs() < 1e-12);
        assert_eq!(shared.name(), "cosine-similarity");
        assert!(shared.euclidean_weights().is_none());
        assert_eq!(shared.cache_fingerprint(), concrete.cache_fingerprint());
        let members = [(&x, 0.5)];
        assert!(
            (shared.score_members(&members, &q) - concrete.score_members(&members, &q)).abs()
                < 1e-12
        );
    }
}
