//! The proximity rank join operator.
//!
//! This crate is the primary contribution of the reproduction of *Proximity
//! Rank Join* (Martinenghi & Tagliasacchi, VLDB 2010): given `n` relations
//! whose tuples carry a feature vector and a score, accessible only through
//! sorted access (by distance from a query point or by score), return the
//! top-`K` combinations under an aggregation function that rewards high
//! scores, proximity to the query and mutual proximity (Eq. 2).
//!
//! The central pieces are:
//!
//! * [`scoring`] — the aggregation function contract and the paper's
//!   Euclidean-log instantiation ([`EuclideanLogScore`]).
//! * [`bounds`] — the corner bound (HRJN's, not tight) and the paper's tight
//!   bound, whose tightness yields instance optimality.
//! * [`dominance`] — the half-space dominance test used to prune partial
//!   combinations.
//! * [`pull`] — round-robin and potential-adaptive pulling strategies.
//! * [`operator`] — the ProxRJ template (Algorithm 1) tying it all together.
//! * [`algorithms`] — the four canned instantiations evaluated in the paper:
//!   [`Algorithm::Cbrr`] (HRJN), [`Algorithm::Cbpa`] (HRJN*),
//!   [`Algorithm::Tbrr`] and [`Algorithm::Tbpa`].
//! * [`naive`] — an exhaustive baseline used as a correctness oracle.
//!
//! # Example
//!
//! ```
//! use prj_core::{Algorithm, EuclideanLogScore, ProblemBuilder};
//! use prj_access::{AccessKind, Tuple, TupleId};
//! use prj_geometry::Vector;
//!
//! let mk = |rel: usize, rows: &[([f64; 2], f64)]| -> Vec<Tuple> {
//!     rows.iter()
//!         .enumerate()
//!         .map(|(i, (x, s))| Tuple::new(TupleId::new(rel, i), Vector::from(*x), *s))
//!         .collect()
//! };
//! let mut problem = ProblemBuilder::new(
//!     Vector::from([0.0, 0.0]),
//!     EuclideanLogScore::new(1.0, 1.0, 1.0),
//! )
//! .k(1)
//! .access_kind(AccessKind::Distance)
//! .relation_from_tuples(mk(0, &[([0.0, -0.5], 0.5), ([0.0, 1.0], 1.0)]))
//! .relation_from_tuples(mk(1, &[([1.0, 1.0], 1.0), ([-2.0, 2.0], 0.8)]))
//! .relation_from_tuples(mk(2, &[([-1.0, 1.0], 1.0), ([-2.0, -2.0], 0.4)]))
//! .build()
//! .unwrap();
//!
//! let result = Algorithm::Tbpa.run(&mut problem).unwrap();
//! assert!((result.combinations[0].score - (-7.0)).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod bounds;
pub mod combination;
pub mod dominance;
pub mod error;
pub mod merge;
pub mod naive;
pub mod operator;
pub mod problem;
pub mod pull;
pub mod scoring;
pub mod state;

pub use algorithms::{Algorithm, BoundingSchemeKind, PullStrategyKind};
pub use bounds::{BoundingScheme, CornerBound, TightBound, TightBoundConfig};
pub use combination::{ScoredCombination, TopKBuffer};
pub use error::PrjError;
pub use merge::{merge_results, merge_shared, CertifiedMerge};
pub use naive::naive_rank_join;
pub use operator::{execute, RankJoinResult, RunMetrics, StreamingRun, TrajectoryPoint};
pub use problem::{Problem, ProblemBuilder, ProxRjConfig, RelationBackend};
pub use pull::{PotentialAdaptive, PullStrategy, RoundRobin};
pub use scoring::{
    fingerprint, CosineSimilarityScore, EuclideanLogScore, ScoringFunction, ScoringSpec, Weights,
};
pub use state::JoinState;

// Re-exported so downstream users only need `prj-core` for the common case.
pub use prj_access::{AccessKind, AccessStats, Tuple, TupleId};
