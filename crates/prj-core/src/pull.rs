//! Pulling strategies: which relation to access next (paper Sec. 3.3).
//!
//! * [`RoundRobin`] — cycle through the relations in index order, skipping
//!   exhausted ones. Together with the tight bound this already guarantees
//!   instance optimality (Theorem 3.3).
//! * [`PotentialAdaptive`] — access the relation with the highest *potential*
//!   `pot_i = max{t_M | M ⊂ {1…n} − {i}}`, i.e. the relation whose unseen
//!   tuples could still contribute to the highest-scoring combinations,
//!   breaking ties towards the smallest depth and then the smallest index.
//!   Theorem 3.5 shows it never reads deeper than round-robin on any
//!   relation; with the corner bound this strategy is exactly HRJN*'s.

use crate::state::JoinState;

/// A pulling strategy: decides which relation the operator accesses next.
///
/// The trait requires `Send` so that in-flight runs (which own their pulling
/// strategy) can be moved into worker threads by the `prj-engine` executor.
pub trait PullStrategy: Send {
    /// Chooses the next relation to access.
    ///
    /// `potentials[i]` is the bounding scheme's potential of relation `i`
    /// (already `−∞` for exhausted relations). Returns `None` when every
    /// relation is exhausted.
    fn choose_input(&mut self, state: &JoinState, potentials: &[f64]) -> Option<usize>;

    /// A short name used in reports ("RR" or "PA").
    fn name(&self) -> &'static str;
}

/// Round-robin pulling: `R_1, R_2, …, R_n, R_1, …`, skipping exhausted
/// relations.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates the strategy starting from relation 0.
    pub fn new() -> Self {
        RoundRobin { next: 0 }
    }
}

impl PullStrategy for RoundRobin {
    fn choose_input(&mut self, state: &JoinState, _potentials: &[f64]) -> Option<usize> {
        let n = state.n();
        for offset in 0..n {
            let candidate = (self.next + offset) % n;
            if !state.buffer(candidate).is_exhausted() {
                self.next = (candidate + 1) % n;
                return Some(candidate);
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "RR"
    }
}

/// Potential-adaptive pulling (PA, Sec. 3.3): pick the relation with the
/// largest potential; break ties in favour of the relation with the smallest
/// depth, then the smallest index.
#[derive(Debug, Clone, Default)]
pub struct PotentialAdaptive;

impl PotentialAdaptive {
    /// Creates the strategy.
    pub fn new() -> Self {
        PotentialAdaptive
    }
}

impl PullStrategy for PotentialAdaptive {
    fn choose_input(&mut self, state: &JoinState, potentials: &[f64]) -> Option<usize> {
        let n = state.n();
        debug_assert_eq!(potentials.len(), n);
        let mut best: Option<usize> = None;
        for i in 0..n {
            if state.buffer(i).is_exhausted() {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    let better = potentials[i] > potentials[b] + 1e-12
                        || ((potentials[i] - potentials[b]).abs() <= 1e-12
                            && (state.depth(i) < state.depth(b)));
                    // Ties on potential and depth resolve to the least index,
                    // which is already the case because we scan in index order.
                    if better {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "PA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prj_access::{AccessKind, Tuple, TupleId};
    use prj_geometry::Vector;

    fn state(n: usize) -> JoinState {
        JoinState::new(
            Vector::from([0.0, 0.0]),
            AccessKind::Distance,
            &vec![1.0; n],
        )
    }

    fn push(state: &mut JoinState, rel: usize, idx: usize, d: f64) {
        state.push_tuple(
            rel,
            Tuple::new(TupleId::new(rel, idx), Vector::from([d, 0.0]), 0.5),
        );
    }

    #[test]
    fn round_robin_cycles() {
        let s = state(3);
        let mut rr = RoundRobin::new();
        let picks: Vec<usize> = (0..6)
            .map(|_| rr.choose_input(&s, &[0.0; 3]).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(rr.name(), "RR");
    }

    #[test]
    fn round_robin_skips_exhausted() {
        let mut s = state(3);
        s.mark_exhausted(1);
        let mut rr = RoundRobin::new();
        let picks: Vec<usize> = (0..4)
            .map(|_| rr.choose_input(&s, &[0.0; 3]).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
        s.mark_exhausted(0);
        s.mark_exhausted(2);
        assert_eq!(rr.choose_input(&s, &[0.0; 3]), None);
    }

    #[test]
    fn potential_adaptive_prefers_highest_potential() {
        let s = state(3);
        let mut pa = PotentialAdaptive::new();
        assert_eq!(pa.choose_input(&s, &[-5.0, -1.0, -3.0]), Some(1));
        assert_eq!(pa.name(), "PA");
    }

    #[test]
    fn potential_adaptive_breaks_ties_by_depth_then_index() {
        let mut s = state(3);
        // Same potential everywhere; relation 1 is shallower than 0 and 2.
        push(&mut s, 0, 0, 1.0);
        push(&mut s, 0, 1, 2.0);
        push(&mut s, 2, 0, 1.0);
        let mut pa = PotentialAdaptive::new();
        assert_eq!(pa.choose_input(&s, &[-1.0, -1.0, -1.0]), Some(1));
        // Equal depth everywhere -> least index.
        let s2 = state(3);
        assert_eq!(pa.choose_input(&s2, &[-1.0, -1.0, -1.0]), Some(0));
    }

    #[test]
    fn potential_adaptive_ignores_exhausted_relations() {
        let mut s = state(2);
        s.mark_exhausted(0);
        let mut pa = PotentialAdaptive::new();
        assert_eq!(pa.choose_input(&s, &[f64::NEG_INFINITY, -10.0]), Some(1));
        s.mark_exhausted(1);
        assert_eq!(pa.choose_input(&s, &[f64::NEG_INFINITY; 2]), None);
    }
}
