//! Combinations (elements of the cross product) and the top-K output buffer.

use prj_access::{Tuple, TupleId};
use std::cmp::Ordering;

/// A combination `τ = τ_1 × … × τ_n` together with its aggregate score.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCombination {
    /// The member tuples, one per relation, in relation order.
    pub tuples: Vec<Tuple>,
    /// The aggregate score `S(τ)`.
    pub score: f64,
}

impl ScoredCombination {
    /// Creates a scored combination.
    pub fn new(tuples: Vec<Tuple>, score: f64) -> Self {
        ScoredCombination { tuples, score }
    }

    /// The identities of the member tuples, in relation order.
    pub fn ids(&self) -> Vec<TupleId> {
        self.tuples.iter().map(|t| t.id).collect()
    }

    /// Number of member tuples (the join arity `n`).
    pub fn arity(&self) -> usize {
        self.tuples.len()
    }

    /// Deterministic ordering: by score descending, ties broken by the member
    /// identities (lexicographically ascending) — the paper requires *some*
    /// tie-breaking criterion; this one makes runs reproducible.
    pub fn compare(&self, other: &Self) -> Ordering {
        other.score.total_cmp(&self.score).then_with(|| {
            // Compare the id sequences without materialising them: this
            // runs on every buffer insertion, so it must not allocate.
            self.tuples
                .iter()
                .map(|t| t.id)
                .cmp(other.tuples.iter().map(|t| t.id))
        })
    }
}

/// A bounded buffer retaining only the top-`K` combinations seen so far,
/// ordered best-first (the output buffer `O` of Algorithm 1).
#[derive(Debug, Clone)]
pub struct TopKBuffer {
    k: usize,
    entries: Vec<ScoredCombination>,
}

impl TopKBuffer {
    /// Creates an empty buffer retaining at most `k` combinations.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "K must be at least 1");
        TopKBuffer {
            k,
            entries: Vec::with_capacity(k + 1),
        }
    }

    /// The capacity `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of combinations currently retained (≤ K).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no combination has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when the buffer holds `K` combinations.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.k
    }

    /// Inserts a combination, keeping only the top `K`. Returns `true` when
    /// the combination was retained.
    pub fn insert(&mut self, combo: ScoredCombination) -> bool {
        let pos = self
            .entries
            .partition_point(|e| e.compare(&combo) != Ordering::Greater);
        if pos >= self.k {
            return false;
        }
        self.entries.insert(pos, combo);
        if self.entries.len() > self.k {
            self.entries.pop();
        }
        true
    }

    /// `true` when [`insert`](Self::insert) would retain `combo` right now —
    /// the same rank computation, without taking ownership. Lets merge paths
    /// decide whether a borrowed combination is worth cloning at all.
    pub fn would_insert(&self, combo: &ScoredCombination) -> bool {
        self.entries
            .partition_point(|e| e.compare(combo) != Ordering::Greater)
            < self.k
    }

    /// The score of the `K`-th best combination retained so far
    /// (`min_{ω ∈ O} S(ω)` in Algorithm 1), or `−∞` when fewer than `K`
    /// combinations have been seen.
    pub fn kth_score(&self) -> f64 {
        if self.entries.len() >= self.k {
            self.entries[self.k - 1].score
        } else {
            f64::NEG_INFINITY
        }
    }

    /// The best score seen so far, or `−∞` if none.
    pub fn best_score(&self) -> f64 {
        self.entries
            .first()
            .map(|e| e.score)
            .unwrap_or(f64::NEG_INFINITY)
    }

    /// The retained combinations, best first.
    pub fn as_slice(&self) -> &[ScoredCombination] {
        &self.entries
    }

    /// Consumes the buffer, returning the retained combinations best-first.
    pub fn into_sorted_vec(self) -> Vec<ScoredCombination> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prj_geometry::Vector;

    fn combo(rel_indices: &[usize], score: f64) -> ScoredCombination {
        let tuples = rel_indices
            .iter()
            .enumerate()
            .map(|(r, &i)| Tuple::new(TupleId::new(r, i), Vector::from([i as f64]), 0.5))
            .collect();
        ScoredCombination::new(tuples, score)
    }

    #[test]
    fn ids_and_arity() {
        let c = combo(&[0, 1, 2], -1.0);
        assert_eq!(c.arity(), 3);
        assert_eq!(
            c.ids(),
            vec![TupleId::new(0, 0), TupleId::new(1, 1), TupleId::new(2, 2)]
        );
    }

    #[test]
    fn compare_orders_by_score_then_ids() {
        let a = combo(&[0, 0], -1.0);
        let b = combo(&[0, 1], -2.0);
        assert_eq!(a.compare(&b), Ordering::Less); // a is better (ranks earlier)
        let c = combo(&[0, 0], -1.0);
        let d = combo(&[0, 1], -1.0);
        assert_eq!(c.compare(&d), Ordering::Less); // tie broken by ids
        assert_eq!(d.compare(&c), Ordering::Greater);
    }

    #[test]
    fn top_k_keeps_best() {
        let mut buf = TopKBuffer::new(2);
        assert_eq!(buf.kth_score(), f64::NEG_INFINITY);
        assert!(buf.insert(combo(&[0], -5.0)));
        assert!(buf.insert(combo(&[1], -1.0)));
        assert!(buf.is_full());
        assert_eq!(buf.kth_score(), -5.0);
        // better than the worst retained -> replaces it
        assert!(buf.insert(combo(&[2], -3.0)));
        assert_eq!(buf.kth_score(), -3.0);
        assert_eq!(buf.best_score(), -1.0);
        // worse than everything retained -> rejected
        assert!(!buf.insert(combo(&[3], -10.0)));
        assert_eq!(buf.len(), 2);
        let sorted = buf.into_sorted_vec();
        assert_eq!(sorted[0].score, -1.0);
        assert_eq!(sorted[1].score, -3.0);
    }

    #[test]
    fn insert_keeps_descending_order() {
        let mut buf = TopKBuffer::new(5);
        for (i, s) in [-3.0, -1.0, -7.0, -2.0, -5.0].iter().enumerate() {
            buf.insert(combo(&[i], *s));
        }
        let scores: Vec<f64> = buf.as_slice().iter().map(|c| c.score).collect();
        assert_eq!(scores, vec![-1.0, -2.0, -3.0, -5.0, -7.0]);
        assert_eq!(buf.kth_score(), -7.0);
        assert_eq!(buf.k(), 5);
    }

    #[test]
    fn ties_are_deterministic() {
        let mut buf = TopKBuffer::new(2);
        buf.insert(combo(&[5], -1.0));
        buf.insert(combo(&[1], -1.0));
        buf.insert(combo(&[3], -1.0));
        let ids: Vec<usize> = buf
            .as_slice()
            .iter()
            .map(|c| c.tuples[0].id.index)
            .collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    #[should_panic]
    fn zero_k_panics() {
        let _ = TopKBuffer::new(0);
    }
}
