//! The sharding policy: how the catalog partitions a relation over space.
//!
//! A [`ShardingPolicy`] is a pure, deterministic function from a tuple's
//! location to a shard index in `0..shards`. The default assignment is
//! *hash-by-cell*: locations are snapped to a regular grid and the cell
//! coordinates are hashed (FNV-1a over the integer cell indices) onto the
//! shard range. Neighbouring tuples in the same cell therefore land on the
//! same shard — appends with spatial locality touch few shards — while the
//! hash spreads distinct cells evenly, so no shard degenerates into a
//! hotspot the way a naive coordinate-range split would under clustered
//! data.
//!
//! Sharding is engine-internal: the `prj-api` `Request` surface never
//! mentions shards, and because the same policy instance is shared by every
//! relation in a catalog, the executor can partition the *combination
//! space* by the driving relation's shards and recombine exactly (see
//! [`prj_core::merge`]).

use prj_geometry::Vector;

/// Deterministic assignment of tuple locations to `0..shards`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardingPolicy {
    /// Number of shards `S ≥ 1`; 1 disables partitioning.
    shards: usize,
    /// Edge length of the grid cells locations are snapped to before
    /// hashing. Must be positive and finite.
    cell_size: f64,
}

impl Default for ShardingPolicy {
    /// A single shard (no partitioning) — the unsharded engine's behaviour.
    fn default() -> Self {
        ShardingPolicy::new(1)
    }
}

impl ShardingPolicy {
    /// A hash-by-cell policy with `shards` shards and unit grid cells.
    ///
    /// # Panics
    /// Panics when `shards` is 0.
    pub fn new(shards: usize) -> Self {
        ShardingPolicy::with_cell_size(shards, 1.0)
    }

    /// A hash-by-cell policy with an explicit grid cell edge length.
    ///
    /// # Panics
    /// Panics when `shards` is 0 or `cell_size` is not a positive finite
    /// number.
    pub fn with_cell_size(shards: usize, cell_size: f64) -> Self {
        assert!(shards >= 1, "a catalog needs at least one shard");
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive and finite"
        );
        ShardingPolicy { shards, cell_size }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The grid cell edge length.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// The shard a location belongs to. Deterministic: the same location
    /// always maps to the same shard, so re-registering identical data
    /// reproduces the same partition.
    pub fn shard_of(&self, location: &Vector) -> usize {
        if self.shards == 1 {
            return 0;
        }
        // FNV-1a over the integer grid-cell indices. `floor` keeps the cell
        // boundaries half-open and deterministic; clamping the quotient
        // before the cast keeps hostile coordinates (huge magnitudes) from
        // hitting undefined float→int behaviour.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &c in location.as_slice() {
            let cell = (c / self.cell_size)
                .floor()
                .clamp(i64::MIN as f64, i64::MAX as f64) as i64;
            for byte in cell.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
        }
        (hash % self.shards as u64) as usize
    }

    /// Splits `items` into `shards` buckets by the location `key` extracts,
    /// preserving the relative order within each bucket.
    pub fn partition<T>(&self, items: Vec<T>, key: impl Fn(&T) -> &Vector) -> Vec<Vec<T>> {
        let mut buckets: Vec<Vec<T>> = (0..self.shards).map(|_| Vec::new()).collect();
        for item in items {
            let shard = self.shard_of(key(&item));
            buckets[shard].push(item);
        }
        buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_maps_everything_to_zero() {
        let policy = ShardingPolicy::default();
        assert_eq!(policy.shards(), 1);
        assert_eq!(policy.shard_of(&Vector::from([123.4, -5.0])), 0);
    }

    #[test]
    fn assignment_is_deterministic_and_in_range() {
        let policy = ShardingPolicy::new(7);
        for i in 0..200 {
            let v = Vector::from([i as f64 * 0.37 - 30.0, (i * i) as f64 * 0.01]);
            let shard = policy.shard_of(&v);
            assert!(shard < 7);
            assert_eq!(shard, policy.shard_of(&v), "same point, same shard");
        }
    }

    #[test]
    fn same_cell_shares_a_shard_distinct_cells_spread() {
        let policy = ShardingPolicy::with_cell_size(4, 1.0);
        // Two points inside the same unit cell.
        assert_eq!(
            policy.shard_of(&Vector::from([2.1, 3.2])),
            policy.shard_of(&Vector::from([2.9, 3.8]))
        );
        // Many distinct cells should hit more than one shard.
        let mut seen = std::collections::HashSet::new();
        for x in 0..16 {
            for y in 0..16 {
                seen.insert(policy.shard_of(&Vector::from([x as f64 + 0.5, y as f64 + 0.5])));
            }
        }
        assert!(seen.len() > 1, "hashing must spread cells across shards");
    }

    #[test]
    fn partition_preserves_items_and_order() {
        let policy = ShardingPolicy::new(3);
        let items: Vec<(Vector, usize)> = (0..50)
            .map(|i| (Vector::from([i as f64 * 1.3, -(i as f64)]), i))
            .collect();
        let buckets = policy.partition(items.clone(), |(v, _)| v);
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 50);
        for bucket in &buckets {
            // Relative order (by payload) is preserved within a bucket.
            let payloads: Vec<usize> = bucket.iter().map(|(_, i)| *i).collect();
            let mut sorted = payloads.clone();
            sorted.sort_unstable();
            assert_eq!(payloads, sorted);
        }
        for (v, i) in &items {
            assert!(buckets[policy.shard_of(v)].iter().any(|(_, j)| j == i));
        }
    }

    #[test]
    fn extreme_coordinates_do_not_panic() {
        let policy = ShardingPolicy::new(5);
        for v in [
            Vector::from([f64::MAX, f64::MIN]),
            Vector::from([1e308, -1e308]),
            Vector::from([0.0, -0.0]),
        ] {
            assert!(policy.shard_of(&v) < 5);
        }
    }

    #[test]
    #[should_panic]
    fn zero_shards_panics() {
        let _ = ShardingPolicy::new(0);
    }

    #[test]
    #[should_panic]
    fn non_finite_cell_size_panics() {
        let _ = ShardingPolicy::with_cell_size(2, f64::NAN);
    }
}
