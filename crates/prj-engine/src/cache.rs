//! The epoch-keyed LRU result caches: whole-query and per-shard.
//!
//! Serving workloads repeat themselves — the same "hotels + restaurants
//! near the convention centre" top-k is asked again and again — and a ProxRJ
//! run is pure: given the same relation *contents*, query point, `k`,
//! scoring parameters and algorithm it returns the same combinations. The
//! engine therefore memoises completed runs behind an [`Arc`], keyed by
//! exactly those inputs, with least-recently-used eviction and
//! hit/miss/invalidation metrics.
//!
//! Relation contents are represented in the key by `(relation index,
//! per-shard epoch vector)` pairs: the catalog bumps a shard's epoch on
//! every append that lands on it (and the whole vector on a drop), so a
//! query that runs after a mutation carries a different key and *cannot*
//! match a pre-mutation entry. That makes staleness structurally impossible
//! rather than a matter of carefully ordered invalidation calls;
//! [`ResultCache::invalidate_relation`] additionally purges the unreachable
//! entries eagerly so they stop occupying capacity. Keys also carry the
//! cluster *topology generation*: after a topology change, distributed
//! results computed under the old worker layout are unreachable (layouts
//! never change *what* is computed, but a generation that survived a
//! failover is exactly when extra caution is cheapest).
//!
//! ## Per-shard entries
//!
//! The whole-query [`ResultCache`] dies wholesale on any epoch bump. The
//! [`UnitCache`] survives partial invalidation: it memoises one *execution
//! unit* — driving shard `j` joined against whole views of the other
//! relations — keyed by the driving shard's own epoch (not the whole
//! vector) plus the other relations' full epoch vectors. An append that
//! lands on driving shard 2 therefore leaves the cached units of shards 0,
//! 1, 3… valid: the next query re-executes one unit and re-merges, instead
//! of recomputing everything.
//!
//! Keys quantise nothing: two query points must be bit-identical to share an
//! entry ([`f64::to_bits`]), which keeps cached results byte-identical to
//! cold runs.

use crate::planner::Plan;
use prj_access::AccessKind;
use prj_core::{Algorithm, RankJoinResult};
use prj_geometry::Vector;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex};

/// Cache key: every input that determines a run's output.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The joined relations as `(index, per-shard epoch vector)` pairs, in
    /// join order.
    relations: Vec<(usize, Vec<u64>)>,
    query_bits: Vec<u64>,
    k: usize,
    access_kind: AccessKind,
    /// The explicitly requested algorithm; `None` delegates to the planner,
    /// which is deterministic for fixed relations, so `None` is itself a
    /// valid key component.
    algorithm: Option<Algorithm>,
    /// Fingerprint of the scoring family and parameters
    /// ([`prj_core::ScoringSpec::cache_fingerprint`]).
    scoring_fingerprint: u64,
    /// Cluster topology generation the result was computed under (0 when
    /// no remote backend is installed).
    generation: u64,
}

impl CacheKey {
    /// Builds a key from the run's determining inputs. `relations` pairs
    /// each relation index with the epoch vector of the snapshot the run
    /// reads, so the key must be built from the same snapshot that is
    /// executed.
    pub fn new(
        relations: Vec<(usize, Vec<u64>)>,
        query: &Vector,
        k: usize,
        access_kind: AccessKind,
        algorithm: Option<Algorithm>,
        scoring_fingerprint: u64,
        generation: u64,
    ) -> Self {
        CacheKey {
            relations,
            query_bits: query.as_slice().iter().map(|c| c.to_bits()).collect(),
            k,
            access_kind,
            algorithm,
            scoring_fingerprint,
            generation,
        }
    }

    /// `true` when the key reads relation `index` (at any epoch).
    pub fn uses_relation(&self, index: usize) -> bool {
        self.relations.iter().any(|(r, _)| *r == index)
    }
}

/// Key of one memoised *execution unit*: driving shard + everything else
/// that determines the unit's output. See the module docs for why the
/// driving relation contributes only its covered shard's epoch.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UnitKey {
    /// `(relation index, shard, that shard's epoch)` of the driving slice.
    drive: (usize, usize, u64),
    /// The non-driving relations with their full epoch vectors, in join
    /// order.
    others: Vec<(usize, Vec<u64>)>,
    query_bits: Vec<u64>,
    k: usize,
    access_kind: AccessKind,
    /// The *planned* algorithm and dominance period the unit runs under
    /// (per-unit plans differ across shards, so they are part of the key).
    algorithm: Algorithm,
    dominance_period: Option<usize>,
    scoring_fingerprint: u64,
    generation: u64,
}

impl UnitKey {
    /// Builds a unit key; `drive` is `(relation index, shard index, shard
    /// epoch)` of the driving slice, `others` the remaining relations with
    /// their full epoch vectors.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        drive: (usize, usize, u64),
        others: Vec<(usize, Vec<u64>)>,
        query: &Vector,
        k: usize,
        access_kind: AccessKind,
        plan: &Plan,
        scoring_fingerprint: u64,
        generation: u64,
    ) -> Self {
        UnitKey {
            drive,
            others,
            query_bits: query.as_slice().iter().map(|c| c.to_bits()).collect(),
            k,
            access_kind,
            algorithm: plan.algorithm,
            dominance_period: plan.dominance_period,
            scoring_fingerprint,
            generation,
        }
    }

    /// `true` when the key reads relation `index` at all.
    pub fn uses_relation(&self, index: usize) -> bool {
        self.drive.0 == index || self.others.iter().any(|(r, _)| *r == index)
    }

    /// `true` when a mutation touching `shards` of relation `index` makes
    /// this entry unreachable: the driving slice was hit, or the relation
    /// appears as a (whole) non-driving input.
    pub fn invalidated_by(&self, index: usize, shards: &[usize]) -> bool {
        (self.drive.0 == index && shards.contains(&self.drive.1))
            || self.others.iter().any(|(r, _)| *r == index)
    }
}

/// A memoised execution: the full operator result plus the plan that
/// produced it.
#[derive(Debug)]
pub struct CachedExecution {
    /// The operator's result.
    pub result: RankJoinResult,
    /// The plan the executor ran with.
    pub plan: Plan,
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries purged because a relation they read was mutated.
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheMetrics {
    /// Hit rate in `[0, 1]`; 0 when no lookup has happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct LruInner<K, V> {
    entries: HashMap<K, (V, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

impl<K, V> Default for LruInner<K, V> {
    fn default() -> Self {
        LruInner {
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
        }
    }
}

/// The shared LRU mechanics behind [`ResultCache`] and [`UnitCache`].
///
/// Recency is tracked with a logical clock per entry; eviction scans for the
/// stalest entry, which is O(entries) but only runs on insert overflow —
/// fine for the few-thousand-entry capacities a result cache wants.
#[derive(Debug)]
struct Lru<K, V> {
    inner: Mutex<LruInner<K, V>>,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> Lru<K, V> {
    fn new(capacity: usize) -> Self {
        Lru {
            inner: Mutex::new(LruInner::default()),
            capacity,
        }
    }

    fn get(&self, key: &K) -> Option<V> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(key) {
            Some((value, used)) => {
                *used = clock;
                let value = value.clone();
                inner.hits += 1;
                Some(value)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    fn insert(&self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.entries.contains_key(&key) && inner.entries.len() >= self.capacity {
            if let Some(stalest) = inner
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&stalest);
                inner.evictions += 1;
            }
        }
        inner.entries.insert(key, (value, clock));
    }

    /// Drops every entry `predicate` marks unreachable; counts them as
    /// invalidations and returns how many were purged.
    fn purge(&self, predicate: impl Fn(&K) -> bool) -> usize {
        let mut inner = self.inner.lock().expect("cache lock");
        let before = inner.entries.len();
        inner.entries.retain(|key, _| !predicate(key));
        let purged = before - inner.entries.len();
        inner.invalidations += purged as u64;
        purged
    }

    fn metrics(&self) -> CacheMetrics {
        let inner = self.inner.lock().expect("cache lock");
        CacheMetrics {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            invalidations: inner.invalidations,
            entries: inner.entries.len(),
        }
    }

    fn clear(&self) {
        self.inner.lock().expect("cache lock").entries.clear();
    }
}

/// A thread-safe LRU cache of completed whole-query executions.
#[derive(Debug)]
pub struct ResultCache {
    lru: Lru<CacheKey, Arc<CachedExecution>>,
}

impl ResultCache {
    /// Creates a cache retaining at most `capacity` executions; a capacity of
    /// 0 disables caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            lru: Lru::new(capacity),
        }
    }

    /// Looks up `key`, marking the entry as recently used.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedExecution>> {
        self.lru.get(key)
    }

    /// Inserts an execution under `key`, evicting the least recently used
    /// entry if the cache is full.
    pub fn insert(&self, key: CacheKey, value: Arc<CachedExecution>) {
        self.lru.insert(key, value);
    }

    /// Purges every entry whose key reads relation `index`.
    ///
    /// Correctness never depends on this — post-mutation keys carry the new
    /// epoch and cannot match old entries — but the old entries have become
    /// unreachable garbage, so a mutation reclaims their capacity eagerly
    /// instead of waiting for LRU pressure. Returns the number of purged
    /// entries.
    pub fn invalidate_relation(&self, index: usize) -> usize {
        self.lru.purge(|key| key.uses_relation(index))
    }

    /// Current counters.
    pub fn metrics(&self) -> CacheMetrics {
        self.lru.metrics()
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        self.lru.clear();
    }
}

/// A thread-safe LRU cache of completed per-shard execution units (see the
/// module docs): the piece that lets a single-shard epoch bump invalidate
/// one unit instead of every whole-query entry that read the relation.
#[derive(Debug)]
pub struct UnitCache {
    lru: Lru<UnitKey, Arc<RankJoinResult>>,
}

impl UnitCache {
    /// Creates a cache retaining at most `capacity` unit results; 0
    /// disables unit caching.
    pub fn new(capacity: usize) -> Self {
        UnitCache {
            lru: Lru::new(capacity),
        }
    }

    /// Looks up a unit, marking it as recently used.
    pub fn get(&self, key: &UnitKey) -> Option<Arc<RankJoinResult>> {
        self.lru.get(key)
    }

    /// Inserts a completed unit result.
    pub fn insert(&self, key: UnitKey, value: Arc<RankJoinResult>) {
        self.lru.insert(key, value);
    }

    /// Purges the units a mutation touching `shards` of relation `index`
    /// made unreachable: units *driving* one of those shards, and units
    /// reading the relation whole as a non-driving input. Units driving
    /// *untouched* shards of the relation survive — that is the point of
    /// this cache. Returns the number purged.
    pub fn invalidate_shards(&self, index: usize, shards: &[usize]) -> usize {
        self.lru.purge(|key| key.invalidated_by(index, shards))
    }

    /// Purges every unit reading relation `index` at all (drops).
    pub fn invalidate_relation(&self, index: usize) -> usize {
        self.lru.purge(|key| key.uses_relation(index))
    }

    /// Current counters.
    pub fn metrics(&self) -> CacheMetrics {
        self.lru.metrics()
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        self.lru.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prj_access::AccessStats;
    use prj_core::RunMetrics;

    fn key(q: f64, k: usize) -> CacheKey {
        key_at_epochs(q, k, vec![0, 0], vec![0])
    }

    fn key_at_epochs(q: f64, k: usize, e0: Vec<u64>, e1: Vec<u64>) -> CacheKey {
        CacheKey::new(
            vec![(0, e0), (1, e1)],
            &Vector::from([q, 0.0]),
            k,
            AccessKind::Distance,
            None,
            7,
            0,
        )
    }

    fn dummy_execution() -> Arc<CachedExecution> {
        Arc::new(CachedExecution {
            result: dummy_result(),
            plan: plan(),
        })
    }

    fn dummy_result() -> RankJoinResult {
        RankJoinResult {
            combinations: Vec::new(),
            stats: AccessStats::new(2),
            metrics: RunMetrics::default(),
        }
    }

    fn plan() -> Plan {
        Plan {
            algorithm: Algorithm::Tbpa,
            dominance_period: None,
            rationale: String::new(),
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = ResultCache::new(4);
        assert!(cache.get(&key(1.0, 5)).is_none());
        cache.insert(key(1.0, 5), dummy_execution());
        assert!(cache.get(&key(1.0, 5)).is_some());
        // Different k, query, algorithm or fingerprint miss.
        assert!(cache.get(&key(1.0, 6)).is_none());
        assert!(cache.get(&key(1.5, 5)).is_none());
        let m = cache.metrics();
        assert_eq!(m.hits, 1);
        assert_eq!(m.misses, 3);
        assert_eq!(m.entries, 1);
        assert!((m.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn different_epoch_vectors_never_share_an_entry() {
        let cache = ResultCache::new(4);
        cache.insert(
            key_at_epochs(1.0, 5, vec![0, 0], vec![0]),
            dummy_execution(),
        );
        // Bumping any single shard of either relation changes the key.
        assert!(cache
            .get(&key_at_epochs(1.0, 5, vec![1, 0], vec![0]))
            .is_none());
        assert!(cache
            .get(&key_at_epochs(1.0, 5, vec![0, 1], vec![0]))
            .is_none());
        assert!(cache
            .get(&key_at_epochs(1.0, 5, vec![0, 0], vec![1]))
            .is_none());
        assert!(cache
            .get(&key_at_epochs(1.0, 5, vec![0, 0], vec![0]))
            .is_some());
    }

    #[test]
    fn different_topology_generations_never_share_an_entry() {
        let at_generation = |generation: u64| {
            CacheKey::new(
                vec![(0, vec![0])],
                &Vector::from([0.0]),
                1,
                AccessKind::Distance,
                None,
                7,
                generation,
            )
        };
        let cache = ResultCache::new(4);
        cache.insert(at_generation(0), dummy_execution());
        assert!(cache.get(&at_generation(1)).is_none());
        assert!(cache.get(&at_generation(0)).is_some());
    }

    #[test]
    fn invalidation_purges_entries_reading_the_relation() {
        let cache = ResultCache::new(8);
        cache.insert(key(1.0, 1), dummy_execution());
        cache.insert(key(2.0, 1), dummy_execution());
        let other = CacheKey::new(
            vec![(7, vec![0])],
            &Vector::from([0.0, 0.0]),
            1,
            AccessKind::Distance,
            None,
            7,
            0,
        );
        cache.insert(other.clone(), dummy_execution());
        // Relation 1 is read by the two `key(..)` entries, not by `other`.
        assert_eq!(cache.invalidate_relation(1), 2);
        assert!(cache.get(&key(1.0, 1)).is_none());
        assert!(cache.get(&key(2.0, 1)).is_none());
        assert!(cache.get(&other).is_some());
        let m = cache.metrics();
        assert_eq!(m.invalidations, 2);
        assert_eq!(m.entries, 1);
        // Invalidating a relation nothing reads is a no-op.
        assert_eq!(cache.invalidate_relation(42), 0);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let cache = ResultCache::new(2);
        cache.insert(key(1.0, 1), dummy_execution());
        cache.insert(key(2.0, 1), dummy_execution());
        // Touch the first entry so the second becomes stalest.
        assert!(cache.get(&key(1.0, 1)).is_some());
        cache.insert(key(3.0, 1), dummy_execution());
        assert!(cache.get(&key(1.0, 1)).is_some(), "recently used survives");
        assert!(cache.get(&key(2.0, 1)).is_none(), "stalest evicted");
        assert!(cache.get(&key(3.0, 1)).is_some());
        assert_eq!(cache.metrics().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert(key(1.0, 1), dummy_execution());
        assert!(cache.get(&key(1.0, 1)).is_none());
        assert_eq!(cache.metrics().entries, 0);
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = ResultCache::new(2);
        cache.insert(key(1.0, 1), dummy_execution());
        assert!(cache.get(&key(1.0, 1)).is_some());
        cache.clear();
        assert!(cache.get(&key(1.0, 1)).is_none());
        let m = cache.metrics();
        assert_eq!(m.hits, 1);
        assert_eq!(m.entries, 0);
    }

    fn unit_key(shard: usize, shard_epoch: u64, other_epochs: Vec<u64>) -> UnitKey {
        UnitKey::new(
            (0, shard, shard_epoch),
            vec![(1, other_epochs)],
            &Vector::from([0.0, 0.0]),
            3,
            AccessKind::Distance,
            &plan(),
            7,
            0,
        )
    }

    #[test]
    fn unit_entries_survive_sibling_shard_bumps() {
        let cache = UnitCache::new(8);
        for shard in 0..4 {
            cache.insert(unit_key(shard, 0, vec![0, 0]), Arc::new(dummy_result()));
        }
        // An append landing on driving shard 2 kills only that unit …
        assert_eq!(cache.invalidate_shards(0, &[2]), 1);
        assert!(cache.get(&unit_key(0, 0, vec![0, 0])).is_some());
        assert!(cache.get(&unit_key(1, 0, vec![0, 0])).is_some());
        assert!(cache.get(&unit_key(2, 0, vec![0, 0])).is_none());
        assert!(cache.get(&unit_key(3, 0, vec![0, 0])).is_some());
        // … and the re-executed unit is keyed by the bumped shard epoch.
        cache.insert(unit_key(2, 1, vec![0, 0]), Arc::new(dummy_result()));
        assert!(cache.get(&unit_key(2, 1, vec![0, 0])).is_some());
    }

    #[test]
    fn unit_entries_die_when_a_non_driving_relation_mutates() {
        let cache = UnitCache::new(8);
        for shard in 0..3 {
            cache.insert(unit_key(shard, 0, vec![0, 0]), Arc::new(dummy_result()));
        }
        // Relation 1 is read whole by every unit: any mutation to it
        // invalidates them all.
        assert_eq!(cache.invalidate_shards(1, &[0]), 3);
        assert_eq!(cache.metrics().entries, 0);
        // And structurally: a key at the bumped epoch vector differs.
        assert!(cache.get(&unit_key(0, 0, vec![1, 0])).is_none());
    }

    #[test]
    fn unit_drop_invalidation_purges_everything_reading_the_relation() {
        let cache = UnitCache::new(8);
        cache.insert(unit_key(0, 0, vec![0]), Arc::new(dummy_result()));
        cache.insert(unit_key(1, 0, vec![0]), Arc::new(dummy_result()));
        assert_eq!(cache.invalidate_relation(0), 2);
        assert_eq!(cache.invalidate_relation(0), 0);
    }
}
