//! The epoch-keyed LRU result cache.
//!
//! Serving workloads repeat themselves — the same "hotels + restaurants
//! near the convention centre" top-k is asked again and again — and a ProxRJ
//! run is pure: given the same relation *contents*, query point, `k`,
//! scoring parameters and algorithm it returns the same combinations. The
//! engine therefore memoises completed runs behind an [`Arc`], keyed by
//! exactly those inputs, with least-recently-used eviction and
//! hit/miss/invalidation metrics.
//!
//! Relation contents are represented in the key by `(relation index,
//! per-shard epoch vector)` pairs: the catalog bumps a shard's epoch on
//! every append that lands on it (and the whole vector on a drop), so a
//! query that runs after a mutation carries a different key and *cannot*
//! match a pre-mutation entry. That makes staleness structurally impossible
//! rather than a matter of carefully ordered invalidation calls;
//! [`ResultCache::invalidate_relation`] additionally purges the unreachable
//! entries eagerly so they stop occupying capacity.
//!
//! Keys quantise nothing: two query points must be bit-identical to share an
//! entry ([`f64::to_bits`]), which keeps cached results byte-identical to
//! cold runs.

use crate::planner::Plan;
use prj_access::AccessKind;
use prj_core::{Algorithm, RankJoinResult};
use prj_geometry::Vector;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache key: every input that determines a run's output.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The joined relations as `(index, per-shard epoch vector)` pairs, in
    /// join order.
    relations: Vec<(usize, Vec<u64>)>,
    query_bits: Vec<u64>,
    k: usize,
    access_kind: AccessKind,
    /// The explicitly requested algorithm; `None` delegates to the planner,
    /// which is deterministic for fixed relations, so `None` is itself a
    /// valid key component.
    algorithm: Option<Algorithm>,
    /// Fingerprint of the scoring family and parameters
    /// ([`prj_core::ScoringSpec::cache_fingerprint`]).
    scoring_fingerprint: u64,
}

impl CacheKey {
    /// Builds a key from the run's determining inputs. `relations` pairs
    /// each relation index with the epoch vector of the snapshot the run
    /// reads, so the key must be built from the same snapshot that is
    /// executed.
    pub fn new(
        relations: Vec<(usize, Vec<u64>)>,
        query: &Vector,
        k: usize,
        access_kind: AccessKind,
        algorithm: Option<Algorithm>,
        scoring_fingerprint: u64,
    ) -> Self {
        CacheKey {
            relations,
            query_bits: query.as_slice().iter().map(|c| c.to_bits()).collect(),
            k,
            access_kind,
            algorithm,
            scoring_fingerprint,
        }
    }

    /// `true` when the key reads relation `index` (at any epoch).
    pub fn uses_relation(&self, index: usize) -> bool {
        self.relations.iter().any(|(r, _)| *r == index)
    }
}

/// A memoised execution: the full operator result plus the plan that
/// produced it.
#[derive(Debug)]
pub struct CachedExecution {
    /// The operator's result.
    pub result: RankJoinResult,
    /// The plan the executor ran with.
    pub plan: Plan,
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries purged because a relation they read was mutated.
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheMetrics {
    /// Hit rate in `[0, 1]`; 0 when no lookup has happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<CacheKey, (Arc<CachedExecution>, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

/// A thread-safe LRU cache of completed executions.
///
/// Recency is tracked with a logical clock per entry; eviction scans for the
/// stalest entry, which is O(entries) but only runs on insert overflow —
/// fine for the few-thousand-entry capacities a result cache wants.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl ResultCache {
    /// Creates a cache retaining at most `capacity` executions; a capacity of
    /// 0 disables caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(CacheInner::default()),
            capacity,
        }
    }

    /// Looks up `key`, marking the entry as recently used.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedExecution>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(key) {
            Some((value, used)) => {
                *used = clock;
                let value = Arc::clone(value);
                inner.hits += 1;
                Some(value)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts an execution under `key`, evicting the least recently used
    /// entry if the cache is full.
    pub fn insert(&self, key: CacheKey, value: Arc<CachedExecution>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.entries.contains_key(&key) && inner.entries.len() >= self.capacity {
            if let Some(stalest) = inner
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&stalest);
                inner.evictions += 1;
            }
        }
        inner.entries.insert(key, (value, clock));
    }

    /// Purges every entry whose key reads relation `index`.
    ///
    /// Correctness never depends on this — post-mutation keys carry the new
    /// epoch and cannot match old entries — but the old entries have become
    /// unreachable garbage, so a mutation reclaims their capacity eagerly
    /// instead of waiting for LRU pressure. Returns the number of purged
    /// entries.
    pub fn invalidate_relation(&self, index: usize) -> usize {
        let mut inner = self.inner.lock().expect("cache lock");
        let before = inner.entries.len();
        inner.entries.retain(|key, _| !key.uses_relation(index));
        let purged = before - inner.entries.len();
        inner.invalidations += purged as u64;
        purged
    }

    /// Current counters.
    pub fn metrics(&self) -> CacheMetrics {
        let inner = self.inner.lock().expect("cache lock");
        CacheMetrics {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            invalidations: inner.invalidations,
            entries: inner.entries.len(),
        }
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        self.inner.lock().expect("cache lock").entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prj_access::AccessStats;
    use prj_core::RunMetrics;

    fn key(q: f64, k: usize) -> CacheKey {
        key_at_epochs(q, k, vec![0, 0], vec![0])
    }

    fn key_at_epochs(q: f64, k: usize, e0: Vec<u64>, e1: Vec<u64>) -> CacheKey {
        CacheKey::new(
            vec![(0, e0), (1, e1)],
            &Vector::from([q, 0.0]),
            k,
            AccessKind::Distance,
            None,
            7,
        )
    }

    fn dummy_execution() -> Arc<CachedExecution> {
        Arc::new(CachedExecution {
            result: RankJoinResult {
                combinations: Vec::new(),
                stats: AccessStats::new(2),
                metrics: RunMetrics::default(),
            },
            plan: Plan {
                algorithm: Algorithm::Tbpa,
                dominance_period: None,
                rationale: String::new(),
            },
        })
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = ResultCache::new(4);
        assert!(cache.get(&key(1.0, 5)).is_none());
        cache.insert(key(1.0, 5), dummy_execution());
        assert!(cache.get(&key(1.0, 5)).is_some());
        // Different k, query, algorithm or fingerprint miss.
        assert!(cache.get(&key(1.0, 6)).is_none());
        assert!(cache.get(&key(1.5, 5)).is_none());
        let m = cache.metrics();
        assert_eq!(m.hits, 1);
        assert_eq!(m.misses, 3);
        assert_eq!(m.entries, 1);
        assert!((m.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn different_epoch_vectors_never_share_an_entry() {
        let cache = ResultCache::new(4);
        cache.insert(
            key_at_epochs(1.0, 5, vec![0, 0], vec![0]),
            dummy_execution(),
        );
        // Bumping any single shard of either relation changes the key.
        assert!(cache
            .get(&key_at_epochs(1.0, 5, vec![1, 0], vec![0]))
            .is_none());
        assert!(cache
            .get(&key_at_epochs(1.0, 5, vec![0, 1], vec![0]))
            .is_none());
        assert!(cache
            .get(&key_at_epochs(1.0, 5, vec![0, 0], vec![1]))
            .is_none());
        assert!(cache
            .get(&key_at_epochs(1.0, 5, vec![0, 0], vec![0]))
            .is_some());
    }

    #[test]
    fn invalidation_purges_entries_reading_the_relation() {
        let cache = ResultCache::new(8);
        cache.insert(key(1.0, 1), dummy_execution());
        cache.insert(key(2.0, 1), dummy_execution());
        let other = CacheKey::new(
            vec![(7, vec![0])],
            &Vector::from([0.0, 0.0]),
            1,
            AccessKind::Distance,
            None,
            7,
        );
        cache.insert(other.clone(), dummy_execution());
        // Relation 1 is read by the two `key(..)` entries, not by `other`.
        assert_eq!(cache.invalidate_relation(1), 2);
        assert!(cache.get(&key(1.0, 1)).is_none());
        assert!(cache.get(&key(2.0, 1)).is_none());
        assert!(cache.get(&other).is_some());
        let m = cache.metrics();
        assert_eq!(m.invalidations, 2);
        assert_eq!(m.entries, 1);
        // Invalidating a relation nothing reads is a no-op.
        assert_eq!(cache.invalidate_relation(42), 0);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let cache = ResultCache::new(2);
        cache.insert(key(1.0, 1), dummy_execution());
        cache.insert(key(2.0, 1), dummy_execution());
        // Touch the first entry so the second becomes stalest.
        assert!(cache.get(&key(1.0, 1)).is_some());
        cache.insert(key(3.0, 1), dummy_execution());
        assert!(cache.get(&key(1.0, 1)).is_some(), "recently used survives");
        assert!(cache.get(&key(2.0, 1)).is_none(), "stalest evicted");
        assert!(cache.get(&key(3.0, 1)).is_some());
        assert_eq!(cache.metrics().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert(key(1.0, 1), dummy_execution());
        assert!(cache.get(&key(1.0, 1)).is_none());
        assert_eq!(cache.metrics().entries, 0);
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = ResultCache::new(2);
        cache.insert(key(1.0, 1), dummy_execution());
        assert!(cache.get(&key(1.0, 1)).is_some());
        cache.clear();
        assert!(cache.get(&key(1.0, 1)).is_none());
        let m = cache.metrics();
        assert_eq!(m.hits, 1);
        assert_eq!(m.entries, 0);
    }
}
