//! The session: the engine's `prj-api` entry point.
//!
//! A [`Session`] owns the client-facing defaults — scoring function, `k`,
//! sorted-access kind, optionally a pinned algorithm — and routes
//! [`prj_api::Request`]s to an [`Engine`], translating between the
//! protocol's name-based world (relation names, scoring selectors, raw
//! tuple rows) and the engine's resolved one (relation ids, shared
//! [`ScoringSpec`] instances, tagged tuples). All engine failures are
//! mapped to typed [`prj_api::ApiError`]s at this boundary; a session never
//! panics on malformed input.
//!
//! Transports stay thin: the in-process caller and the `prj-serve` TCP
//! front-end both push requests through [`Session::dispatch`] and only
//! differ in where the [`Response`]s are written.

use crate::catalog::{CatalogError, RelationId};
use crate::engine::{Engine, EngineError, ExplainData, QuerySpec, ResultStream};
use crate::obs::QueryTrace;
use prj_access::AccessKind;
use prj_api::response::TrajectorySample;
use prj_api::{
    AnalyzeReport, ApiError, ErrorKind, ExplainReport, HealthReport, MetricsReport, QueryRequest,
    RelationPlanStat, RelationRef, Request, Response, ResultRow, StatsReport, TraceSummary,
    TupleData, UnitPlanReport, UnitProfile,
};
use prj_core::{Algorithm, EuclideanLogScore, PrjError, ScoredCombination, ScoringSpec};
use prj_geometry::Vector;
use prj_obs::{SpanId, TraceId};
use std::sync::Arc;

impl From<EngineError> for ApiError {
    fn from(e: EngineError) -> ApiError {
        let message = e.to_string();
        let kind = match &e {
            EngineError::Catalog(c) => match c {
                CatalogError::UnknownId(_) | CatalogError::UnknownName(_) => {
                    ErrorKind::UnknownRelation
                }
                CatalogError::Dropped(_) => ErrorKind::RelationDropped,
                CatalogError::DimensionMismatch { .. } => ErrorKind::InvalidQuery,
            },
            EngineError::UnknownScoring(_) => ErrorKind::UnknownScoring,
            EngineError::InvalidScoringParams { .. } => ErrorKind::InvalidParams,
            EngineError::Prj(p) => match p {
                PrjError::InvalidK | PrjError::NoRelations | PrjError::DimensionMismatch { .. } => {
                    ErrorKind::InvalidQuery
                }
                _ => ErrorKind::Operator,
            },
            EngineError::WorkerUnavailable { .. } => ErrorKind::WorkerUnavailable,
            EngineError::Degraded(_) => ErrorKind::Degraded,
            EngineError::StaleReplica(_) => ErrorKind::StaleEpoch,
            EngineError::WorkerLost => ErrorKind::Internal,
        };
        ApiError::new(kind, message)
    }
}

/// Builder for a [`Session`]'s defaults.
pub struct SessionBuilder {
    engine: Arc<Engine>,
    default_k: usize,
    default_scoring: Arc<dyn ScoringSpec>,
    default_selector: Option<prj_api::ScoringSelector>,
    default_access: AccessKind,
    default_algorithm: Option<Algorithm>,
}

impl SessionBuilder {
    /// Default `K` for queries that do not specify one (initially 10).
    pub fn default_k(mut self, k: usize) -> Self {
        self.default_k = k;
        self
    }

    /// Default scoring function (initially Eq. 2 with unit weights). An
    /// ad-hoc instance has no registry identity, so unpinned queries under
    /// it are not remotely executable — prefer
    /// [`SessionBuilder::default_scoring_named`] on cluster coordinators.
    pub fn default_scoring(mut self, scoring: impl ScoringSpec + 'static) -> Self {
        self.default_scoring = Arc::new(scoring);
        self.default_selector = None;
        self
    }

    /// Default scoring resolved from the engine's registry by name.
    ///
    /// # Errors
    /// Whatever the registry reports for the name/parameters.
    pub fn default_scoring_named(
        mut self,
        name: &str,
        params: &[f64],
    ) -> Result<Self, EngineError> {
        self.default_scoring = self.engine.scoring_registry().resolve(name, params)?;
        self.default_selector = Some(prj_api::ScoringSelector::with_params(name, params));
        Ok(self)
    }

    /// Default sorted-access kind (initially distance-based).
    pub fn default_access(mut self, access: AccessKind) -> Self {
        self.default_access = access;
        self
    }

    /// Pin every unpinned query to `algorithm` instead of consulting the
    /// planner.
    pub fn default_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.default_algorithm = Some(algorithm);
        self
    }

    /// Builds the session.
    pub fn build(self) -> Session {
        Session {
            engine: self.engine,
            default_k: self.default_k,
            default_scoring: self.default_scoring,
            default_selector: self.default_selector,
            default_access: self.default_access,
            default_algorithm: self.default_algorithm,
        }
    }
}

/// A streaming dispatch in progress: rows are pulled one at a time out of
/// the engine's incremental run (with backpressure), already translated to
/// protocol [`ResultRow`]s.
pub struct SessionStream {
    stream: ResultStream,
    delivered: usize,
}

impl SessionStream {
    /// The next certified row, or `None` once the stream is over — either
    /// exhausted or failed; check [`SessionStream::error`] before treating
    /// the drained rows as the full top-K.
    pub fn next_row(&mut self) -> Option<ResultRow> {
        let combo = self.stream.next_result()?;
        self.delivered += 1;
        Some(to_row(&combo))
    }

    /// The typed error that terminated the stream, if the engine-side run
    /// failed instead of completing.
    pub fn error(&self) -> Option<ApiError> {
        self.stream.error().cloned().map(ApiError::from)
    }

    /// Rows delivered so far.
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    /// Whether the stream replays a cached execution.
    pub fn from_cache(&self) -> bool {
        self.stream.from_cache
    }

    /// Short id of the algorithm the stream runs under.
    pub fn algorithm(&self) -> &'static str {
        self.stream.plan.algorithm.id()
    }
}

/// The outcome of [`Session::dispatch`]: a single response, a stream the
/// transport drains at its own pace, or an accepted subscription.
pub enum Dispatch {
    /// One response line.
    One(Response),
    /// An open result stream ([`Request::Stream`] on a cache miss or hit).
    Stream(SessionStream),
    /// An accepted [`Request::Subscribe`]: the transport writes `ack`
    /// (a [`Response::Subscribed`]) immediately, then forwards every
    /// [`Response::Notify`] arriving on `feed` until the sender closes —
    /// interleaved with ordinary responses on the same connection. Only
    /// subscription-capable handlers (`prj-sub`'s `Subscribing` wrapper)
    /// produce this variant; a plain [`Session`] answers `subscribe` with
    /// a typed `Unsupported` error instead.
    Subscribed {
        /// The `Response::Subscribed` acknowledgement, carrying the
        /// subscription id and the initial certified top-K.
        ack: Response,
        /// The push feed: one `Response::Notify` per delivered change
        /// batch; closed (sender dropped) when the subscription ends.
        feed: std::sync::mpsc::Receiver<Response>,
    },
}

/// A serving session over an [`Engine`]; see the module docs.
pub struct Session {
    engine: Arc<Engine>,
    default_k: usize,
    default_scoring: Arc<dyn ScoringSpec>,
    default_selector: Option<prj_api::ScoringSelector>,
    default_access: AccessKind,
    default_algorithm: Option<Algorithm>,
}

impl Session {
    /// A session with the standard defaults (`k = 10`, Eq. 2 scoring with
    /// unit weights, distance-based access, planner-chosen algorithms).
    pub fn new(engine: Arc<Engine>) -> Session {
        Session::builder(engine).build()
    }

    /// A builder for custom defaults.
    pub fn builder(engine: Arc<Engine>) -> SessionBuilder {
        SessionBuilder {
            engine,
            default_k: 10,
            default_scoring: Arc::new(EuclideanLogScore::default()),
            // The default scoring *is* the registry's euclidean-log with
            // default weights, so default queries stay remotely executable.
            default_selector: Some(prj_api::ScoringSelector::named("euclidean-log")),
            default_access: AccessKind::Distance,
            default_algorithm: None,
        }
    }

    /// The engine this session serves.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Routes one request. Failures come back as
    /// [`Dispatch::One`]`(`[`Response::Error`]`)` — never as a panic — so
    /// transports can forward them verbatim.
    pub fn dispatch(&self, request: Request) -> Dispatch {
        match self.try_dispatch(request) {
            Ok(dispatch) => dispatch,
            Err(e) => Dispatch::One(Response::Error(e)),
        }
    }

    /// Routes one request to a single response; a [`Request::Stream`] is
    /// drained to completion first (use [`Session::dispatch`] from
    /// transports that want to forward rows incrementally).
    pub fn handle(&self, request: Request) -> Response {
        match self.dispatch(request) {
            Dispatch::One(response) => response,
            Dispatch::Stream(mut stream) => {
                let mut rows = Vec::new();
                while let Some(row) = stream.next_row() {
                    rows.push(row);
                }
                if let Some(error) = stream.error() {
                    return Response::Error(error);
                }
                let algorithm = stream.algorithm().to_string();
                Response::Results {
                    rows,
                    from_cache: stream.from_cache(),
                    algorithm,
                }
            }
            // A one-shot caller can't drain a push feed; returning the ack
            // alone keeps `handle` total (the feed is dropped, which the
            // subscription manager observes as a send failure and treats
            // as an unsubscribe).
            Dispatch::Subscribed { ack, .. } => ack,
        }
    }

    fn try_dispatch(&self, request: Request) -> Result<Dispatch, ApiError> {
        Ok(Dispatch::One(match request {
            Request::RegisterRelation { name, tuples } => {
                if !prj_api::wire::is_wire_safe_name(&name) {
                    return Err(ApiError::new(
                        ErrorKind::InvalidQuery,
                        format!("relation name {name:?} is not wire-safe ([A-Za-z0-9_.-]+)"),
                    ));
                }
                let rows = to_rows(tuples)?;
                let (id, cardinality) = self
                    .engine
                    .catalog()
                    .register_rows(&name, rows)
                    .map_err(EngineError::Catalog)?;
                Response::Registered {
                    id: id.index(),
                    name,
                    epoch: 0,
                    cardinality,
                }
            }
            Request::AppendTuples { relation, tuples } => {
                let id = self.resolve_relation(&relation)?;
                let outcome = self.engine.append_rows(id, to_rows(tuples)?)?;
                Response::Appended {
                    id: outcome.id.index(),
                    epoch: outcome.epoch,
                    cardinality: outcome.cardinality,
                }
            }
            Request::DropRelation { relation } => {
                let id = self.resolve_relation(&relation)?;
                let outcome = self.engine.drop_relation(id)?;
                Response::Dropped {
                    id: outcome.id.index(),
                    epoch: outcome.epoch,
                }
            }
            Request::TopK(query) => {
                let spec = self.build_spec(query)?;
                let result = self.engine.query(spec)?;
                Response::Results {
                    rows: result.combinations().iter().map(to_row).collect(),
                    from_cache: result.from_cache,
                    algorithm: result.plan().algorithm.id().to_string(),
                }
            }
            Request::Stream(query) => {
                let spec = self.build_spec(query)?;
                let stream = self.engine.stream(spec)?;
                return Ok(Dispatch::Stream(SessionStream {
                    stream,
                    delivered: 0,
                }));
            }
            Request::Hello { max_version } => Response::HelloAck {
                version: max_version
                    .clamp(prj_api::MIN_PROTOCOL_VERSION, prj_api::PROTOCOL_VERSION),
            },
            // Cluster-internal requests are only served by a cluster
            // worker (`prj-cluster`'s WorkerSession); answering with a
            // typed error instead of dropping the connection lets a
            // misdirected coordinator diagnose itself.
            Request::ExecuteUnit(_) | Request::ShardAssignment { .. } | Request::WorkerStats => {
                return Err(ApiError::new(
                    ErrorKind::Unsupported,
                    "this endpoint is not a cluster worker; start it with prj-serve --worker",
                ));
            }
            Request::Stats => {
                let stats = self.engine.stats();
                let cache = self.engine.cache_metrics();
                Response::Stats(StatsReport {
                    queries: stats.queries,
                    cache_hits: stats.cache_hits,
                    executed: stats.executed,
                    relations: self.engine.catalog().live_len(),
                    cache_entries: cache.entries,
                    cache_invalidations: cache.invalidations,
                    total_sum_depths: stats.total_sum_depths,
                    shards: self.engine.shards(),
                    shard_depths: stats.per_shard.iter().map(|l| l.sum_depths).collect(),
                    shard_micros: stats
                        .per_shard
                        .iter()
                        .map(|l| l.total_latency.as_micros() as u64)
                        .collect(),
                    // A plain session serves no remote units; the cluster
                    // coordinator's handler fills these lanes in.
                    worker_shard_depths: Vec::new(),
                    worker_shard_micros: Vec::new(),
                })
            }
            Request::Metrics => Response::Metrics(MetricsReport {
                samples: crate::obs::to_api_samples(&self.engine.metrics_samples()),
            }),
            // Standing queries need a push-capable front-end that owns the
            // connection's write half; `prj-sub`'s `Subscribing` wrapper
            // intercepts these before they reach a plain session.
            Request::Subscribe(_) | Request::Unsubscribe { .. } => {
                return Err(ApiError::new(
                    ErrorKind::Unsupported,
                    "this endpoint does not serve standing queries; \
                     start it with a subscription-capable front-end",
                ));
            }
            Request::Explain { query, analyze } => {
                let spec = self.build_spec(query)?;
                let data = self.engine.explain(spec, analyze)?;
                Response::Explain(to_explain_report(data))
            }
            Request::FetchTrace { trace } => {
                let obs = self.engine.obs();
                // Make any trace already reported to the drain visible
                // before reading the store.
                obs.flush_traces();
                let stored = TraceId::from_u64(trace)
                    .and_then(|id| obs.trace_store().fetch(id))
                    .ok_or_else(|| {
                        ApiError::new(
                            ErrorKind::InvalidQuery,
                            format!("no retained trace {trace} (expired or never sampled)"),
                        )
                    })?;
                Response::Trace {
                    trace,
                    class: stored.class.as_str().to_string(),
                    spans: crate::obs::to_api_spans(&stored.spans),
                }
            }
            Request::ListTraces => {
                let obs = self.engine.obs();
                obs.flush_traces();
                Response::Traces {
                    traces: obs
                        .trace_store()
                        .list()
                        .into_iter()
                        .map(|(t, spans)| TraceSummary {
                            trace: t.trace.as_u64(),
                            class: t.class.as_str().to_string(),
                            root: t.root,
                            duration_micros: t.duration_micros,
                            spans,
                        })
                        .collect(),
                }
            }
            Request::Health => Response::Health(self.base_health()),
        }))
    }

    /// The single-node health report: the wrappers above a plain session
    /// (`prj-sub`'s `Subscribing`, the cluster coordinator/worker handlers)
    /// take this as the base and fill in their own fields.
    pub fn base_health(&self) -> HealthReport {
        let catalog = self.engine.catalog();
        HealthReport {
            ready: true,
            live: true,
            role: "engine".to_string(),
            delta_tuples: catalog.delta_tuples_total() as u64,
            oldest_delta_age_ms: self
                .engine
                .compactor()
                .map_or(0, |c| c.oldest_backlog_age_ms()),
            traces_retained: self.engine.obs().trace_store().len() as u64,
            ..HealthReport::default()
        }
    }

    /// Resolves a protocol [`QueryRequest`] into an engine [`QuerySpec`]
    /// under this session's defaults, exactly as [`Request::TopK`] dispatch
    /// would. Subscription managers use this to pin a standing query's
    /// spec once at subscribe time and re-run it verbatim on every
    /// invalidation.
    pub fn build_query_spec(&self, query: QueryRequest) -> Result<QuerySpec, ApiError> {
        self.build_spec(query)
    }

    fn resolve_relation(&self, relation: &RelationRef) -> Result<RelationId, ApiError> {
        match relation {
            RelationRef::Id(id) => Ok(RelationId(*id)),
            RelationRef::Name(name) => self.engine.catalog().lookup(name).ok_or_else(|| {
                ApiError::new(
                    ErrorKind::UnknownRelation,
                    format!("no relation named {name:?}"),
                )
            }),
        }
    }

    fn build_spec(&self, query: QueryRequest) -> Result<QuerySpec, ApiError> {
        let relations = query
            .relations
            .iter()
            .map(|r| self.resolve_relation(r))
            .collect::<Result<Vec<_>, _>>()?;
        let (scoring, selector) = match &query.scoring {
            Some(selector) => (
                self.engine
                    .scoring_registry()
                    .resolve(&selector.name, &selector.params)?,
                Some(selector.clone()),
            ),
            None => (
                Arc::clone(&self.default_scoring),
                self.default_selector.clone(),
            ),
        };
        Ok(QuerySpec {
            relations,
            query: Vector::new(query.query),
            k: query.k.unwrap_or(self.default_k),
            scoring,
            selector,
            access_kind: query.access.unwrap_or(self.default_access),
            algorithm: query.algorithm.or(self.default_algorithm),
            convergence: 0,
            // A wire trace context joins the engine's recorder under the
            // caller's trace id, stitching this session's spans into the
            // upstream trace (the wire layer guarantees `trace != 0`).
            trace: query.trace.and_then(|t| {
                TraceId::from_u64(t.trace).map(|trace| QueryTrace {
                    trace,
                    parent: SpanId::from_u64(t.parent),
                })
            }),
        })
    }
}

/// Ingestion validation, mirroring what `ProblemBuilder::build` enforces
/// for one-shot problems (catalog views skip those per-tuple checks): at
/// least one coordinate, finite coordinates, and a finite, strictly
/// positive score — Eq. 2 takes `ln σ`, so a non-positive score would turn
/// every result it touches into NaN and get cached as a "success".
fn to_rows(tuples: Vec<TupleData>) -> Result<Vec<(Vector, f64)>, ApiError> {
    tuples
        .into_iter()
        .map(|t| {
            if t.coords.is_empty() {
                return Err(ApiError::new(
                    ErrorKind::InvalidQuery,
                    "tuples must have at least one coordinate",
                ));
            }
            if t.coords.iter().any(|c| !c.is_finite()) {
                return Err(ApiError::new(
                    ErrorKind::InvalidQuery,
                    "tuple coordinates must be finite",
                ));
            }
            if !t.score.is_finite() || t.score <= 0.0 {
                return Err(ApiError::new(
                    ErrorKind::InvalidQuery,
                    format!("tuple scores must be finite and > 0, got {}", t.score),
                ));
            }
            Ok((Vector::new(t.coords), t.score))
        })
        .collect()
}

/// Translates an engine-level EXPLAIN report into its wire shape.
fn to_explain_report(data: ExplainData) -> ExplainReport {
    ExplainReport {
        algorithm: data.plan.algorithm.id().to_string(),
        drive: data.drive,
        k: data.k,
        rationale: data.plan.rationale,
        relations: data
            .relations
            .into_iter()
            .map(|r| RelationPlanStat {
                name: r.name,
                cardinality: r.cardinality,
                skew: r.skew,
                discount: r.discount,
            })
            .collect(),
        units: data
            .units
            .into_iter()
            .map(|u| UnitPlanReport {
                shard: u.shard,
                algorithm: u.plan.algorithm.id().to_string(),
                dominance_period: u.plan.dominance_period,
                rationale: u.plan.rationale,
            })
            .collect(),
        analyzed: data.analyzed.map(|a| AnalyzeReport {
            rows: a.result.combinations.iter().map(to_row).collect(),
            latency_micros: a.latency.as_micros() as u64,
            total_sum_depths: a.total_sum_depths,
            units: a
                .units
                .into_iter()
                .map(|u| UnitProfile {
                    shard: u.shard,
                    cache: u.cache.to_string(),
                    remote: u.remote,
                    depths: u.depths,
                    micros: u.micros,
                    trajectory: u
                        .trajectory
                        .iter()
                        .map(|p| TrajectorySample {
                            depth: p.depth,
                            kth_score: p.kth_score,
                            bound: p.bound,
                        })
                        .collect(),
                })
                .collect(),
        }),
    }
}

/// Translates one engine combination into its protocol row (the
/// `score@rel:idx+rel:idx` unit of the wire format). Public so the
/// subscription layer diffs and delivers exactly the rows a fresh
/// [`Request::TopK`] would produce.
pub fn to_row(combo: &ScoredCombination) -> ResultRow {
    ResultRow {
        score: combo.score,
        tuples: combo
            .tuples
            .iter()
            .map(|t| (t.id.relation, t.id.index))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use prj_api::ScoringSelector;

    fn table1_session() -> Session {
        let engine = Arc::new(EngineBuilder::default().threads(2).build());
        let session = Session::new(engine);
        for (name, rows) in [
            ("R1", vec![([0.0, -0.5], 0.5), ([0.0, 1.0], 1.0)]),
            ("R2", vec![([1.0, 1.0], 1.0), ([-2.0, 2.0], 0.8)]),
            ("R3", vec![([-1.0, 1.0], 1.0), ([-2.0, -2.0], 0.4)]),
        ] {
            let tuples = rows
                .into_iter()
                .map(|(x, s)| TupleData::new(x.to_vec(), s))
                .collect();
            match session.handle(Request::RegisterRelation {
                name: name.to_string(),
                tuples,
            }) {
                Response::Registered { cardinality: 2, .. } => {}
                other => panic!("registration failed: {other:?}"),
            }
        }
        session
    }

    fn table1_query() -> QueryRequest {
        QueryRequest::new(vec!["R1".into(), "R2".into(), "R3".into()], [0.0, 0.0]).k(1)
    }

    #[test]
    fn serves_the_paper_example_by_relation_name() {
        let session = table1_session();
        match session.handle(Request::TopK(table1_query())) {
            Response::Results {
                rows, from_cache, ..
            } => {
                assert!(!from_cache);
                assert_eq!(rows.len(), 1);
                assert!((rows[0].score - (-7.0)).abs() < 0.05);
                assert_eq!(rows[0].tuples, vec![(0, 1), (1, 0), (2, 0)]);
            }
            other => panic!("unexpected response: {other:?}"),
        }
        // Identical request again: the session reports the cache hit.
        match session.handle(Request::TopK(table1_query())) {
            Response::Results { from_cache, .. } => assert!(from_cache),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn stream_dispatch_delivers_rows_incrementally() {
        let session = table1_session();
        let request = Request::Stream(table1_query().k(8));
        let Dispatch::Stream(mut stream) = session.dispatch(request) else {
            panic!("expected a stream dispatch");
        };
        let mut previous = f64::INFINITY;
        let mut rows = 0;
        while let Some(row) = stream.next_row() {
            assert!(row.score <= previous + 1e-12);
            previous = row.score;
            rows += 1;
        }
        assert_eq!(rows, 8);
        assert_eq!(stream.delivered(), 8);
        // handle() drains the same request into one Results response.
        match session.handle(Request::Stream(table1_query().k(8))) {
            Response::Results { rows, .. } => assert_eq!(rows.len(), 8),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn mutations_bump_epochs_and_update_results() {
        let session = table1_session();
        session.handle(Request::TopK(table1_query()));
        let response = session.handle(Request::AppendTuples {
            relation: "R1".into(),
            tuples: vec![TupleData::new([0.0, 0.0], 1.0)],
        });
        match response {
            Response::Appended {
                id,
                epoch,
                cardinality,
            } => {
                assert_eq!(id, 0);
                assert_eq!(epoch, 1);
                assert_eq!(cardinality, 3);
            }
            other => panic!("unexpected response: {other:?}"),
        }
        match session.handle(Request::TopK(table1_query())) {
            Response::Results {
                rows, from_cache, ..
            } => {
                assert!(!from_cache, "mutation must invalidate the cached result");
                assert_eq!(rows[0].tuples[0], (0, 2), "the new tuple wins");
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn typed_errors_cross_the_boundary() {
        let session = table1_session();
        match session.handle(Request::TopK(QueryRequest::new(
            vec!["bars".into()],
            [0.0, 0.0],
        ))) {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::UnknownRelation),
            other => panic!("unexpected response: {other:?}"),
        }
        match session.handle(Request::TopK(
            table1_query().scoring(ScoringSelector::named("mystery")),
        )) {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::UnknownScoring),
            other => panic!("unexpected response: {other:?}"),
        }
        match session.handle(Request::TopK(table1_query().scoring(
            ScoringSelector::with_params("euclidean-log", [1.0, 0.0, 1.0]),
        ))) {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::InvalidParams),
            other => panic!("unexpected response: {other:?}"),
        }
        match session.handle(Request::TopK(table1_query().k(0))) {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::InvalidQuery),
            other => panic!("unexpected response: {other:?}"),
        }
        session.handle(Request::DropRelation {
            relation: "R2".into(),
        });
        match session.handle(Request::TopK(QueryRequest::new(
            vec![RelationRef::Id(1)],
            [0.0, 0.0],
        ))) {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::RelationDropped),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn hostile_input_yields_typed_errors_not_panics() {
        let session = table1_session();
        // Mixed-dimension registration batch (would previously panic inside
        // the catalog write lock and poison it).
        match session.handle(Request::RegisterRelation {
            name: "bad".to_string(),
            tuples: vec![TupleData::new([1.0], 0.5), TupleData::new([1.0, 2.0], 0.5)],
        }) {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::InvalidQuery),
            other => panic!("unexpected response: {other:?}"),
        }
        // Non-positive and non-finite scores (Eq. 2 takes ln σ).
        for score in [0.0, -0.5, f64::NAN] {
            match session.handle(Request::AppendTuples {
                relation: "R1".into(),
                tuples: vec![TupleData::new([0.0, 0.0], score)],
            }) {
                Response::Error(e) => assert_eq!(e.kind, ErrorKind::InvalidQuery),
                other => panic!("score {score} accepted: {other:?}"),
            }
        }
        // Query dimensionality mismatching the relations.
        match session.handle(Request::TopK(QueryRequest::new(
            vec!["R1".into(), "R2".into(), "R3".into()],
            [0.0],
        ))) {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::InvalidQuery),
            other => panic!("unexpected response: {other:?}"),
        }
        // The same mismatch on a *stream* must be an error response too,
        // never an empty-but-"successful" stream.
        match session.handle(Request::Stream(QueryRequest::new(
            vec!["R1".into()],
            [0.0, 0.0, 0.0],
        ))) {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::InvalidQuery),
            other => panic!("unexpected response: {other:?}"),
        }
        // NaN scoring parameters.
        match session.handle(Request::TopK(table1_query().scoring(
            ScoringSelector::with_params("euclidean-log", [f64::NAN, 1.0, 1.0]),
        ))) {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::InvalidParams),
            other => panic!("unexpected response: {other:?}"),
        }
        // The session is fully usable after all of the above.
        assert!(matches!(
            session.handle(Request::TopK(table1_query())),
            Response::Results { .. }
        ));
    }

    #[test]
    fn session_defaults_apply() {
        let engine = Arc::new(EngineBuilder::default().threads(1).build());
        let session = Session::builder(Arc::clone(&engine))
            .default_k(2)
            .default_algorithm(Algorithm::Cbrr)
            .default_scoring_named("euclidean-log", &[1.0, 1.0, 1.0])
            .unwrap()
            .build();
        for (name, rows) in [
            ("a", vec![([0.1, 0.0], 0.9), ([2.0, 0.0], 0.5)]),
            ("b", vec![([0.0, 0.1], 0.8), ([0.0, 2.0], 0.4)]),
        ] {
            session.handle(Request::RegisterRelation {
                name: name.to_string(),
                tuples: rows
                    .into_iter()
                    .map(|(x, s)| TupleData::new(x.to_vec(), s))
                    .collect(),
            });
        }
        match session.handle(Request::TopK(QueryRequest::new(
            vec!["a".into(), "b".into()],
            [0.0, 0.0],
        ))) {
            Response::Results {
                rows, algorithm, ..
            } => {
                assert_eq!(rows.len(), 2, "default k applies");
                assert_eq!(algorithm, "CBRR", "default algorithm applies");
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn stats_reflect_catalog_and_cache() {
        let session = table1_session();
        session.handle(Request::TopK(table1_query()));
        session.handle(Request::TopK(table1_query()));
        match session.handle(Request::Stats) {
            Response::Stats(report) => {
                assert_eq!(report.queries, 2);
                assert_eq!(report.cache_hits, 1);
                assert_eq!(report.executed, 1);
                assert_eq!(report.relations, 3);
                assert_eq!(report.cache_entries, 1);
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
}
