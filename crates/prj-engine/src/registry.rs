//! The scoring registry: runtime-extensible dispatch over scoring families.
//!
//! The engine used to hard-code its scoring dispatch to the two functions
//! shipped by `prj-core`; this registry replaces that closed set. A scoring
//! *family* is registered under a wire-safe name together with a factory
//! closure that turns a parameter list into a shared
//! [`prj_core::ScoringSpec`] trait object. Because [`ScoringSpec`] folds the
//! cache fingerprint into the trait, anything registrable here is
//! cache-safe by construction — the engine can memoise results for scorings
//! it has never heard of at compile time.
//!
//! The two paper scorings are pre-registered:
//!
//! | name | parameters |
//! |---|---|
//! | `euclidean-log` | `[]` (unit weights) or `[w_s, w_q, w_μ]` |
//! | `cosine-similarity` | `[]` (unit weights) or `[w_s, w_q, w_μ]` |

use crate::engine::EngineError;
use prj_core::{CosineSimilarityScore, EuclideanLogScore, ScoringSpec, Weights};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// A factory turning a parameter list into a scoring instance, or a
/// human-readable rejection (surfaced as
/// [`EngineError::InvalidScoringParams`]).
pub type ScoringFactory = Arc<dyn Fn(&[f64]) -> Result<Arc<dyn ScoringSpec>, String> + Send + Sync>;

/// A concurrent name → factory registry of scoring families.
pub struct ScoringRegistry {
    factories: RwLock<HashMap<String, ScoringFactory>>,
    /// Bumped whenever an existing family is *replaced*. The engine folds
    /// this into every cache key, so results computed by a family's old
    /// implementation can never be replayed as the new one's (the
    /// fingerprint alone hashes only name + parameters, which a
    /// replacement typically keeps).
    generation: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for ScoringRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScoringRegistry")
            .field("names", &self.names())
            .finish()
    }
}

fn weights_from(params: &[f64]) -> Result<Weights, String> {
    match params {
        [] => Ok(Weights::default()),
        [w_s, w_q, w_mu] => {
            // The comparisons are written so that NaN fails them too (a
            // NaN weight would otherwise slip through `< 0.0` checks and
            // poison every score with NaN).
            if !(*w_s >= 0.0 && *w_q > 0.0 && *w_mu >= 0.0)
                || w_s.is_infinite()
                || w_q.is_infinite()
                || w_mu.is_infinite()
            {
                return Err(format!(
                    "weights must be finite and satisfy w_s >= 0, w_q > 0, w_mu >= 0; \
                     got [{w_s}, {w_q}, {w_mu}]"
                ));
            }
            Ok(Weights {
                w_s: *w_s,
                w_q: *w_q,
                w_mu: *w_mu,
            })
        }
        other => Err(format!(
            "expected no parameters or [w_s, w_q, w_mu], got {} parameters",
            other.len()
        )),
    }
}

impl ScoringRegistry {
    /// An empty registry (no names resolvable).
    pub fn empty() -> Self {
        ScoringRegistry {
            factories: RwLock::new(HashMap::new()),
            generation: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// A registry with the two paper scorings pre-registered.
    pub fn with_builtins() -> Self {
        let registry = ScoringRegistry::empty();
        registry.register("euclidean-log", |params| {
            Ok(Arc::new(EuclideanLogScore::from_weights(weights_from(params)?)) as _)
        });
        registry.register("cosine-similarity", |params| {
            let w = weights_from(params)?;
            Ok(Arc::new(CosineSimilarityScore::new(w.w_s, w.w_q, w.w_mu)) as _)
        });
        registry
    }

    /// Registers (or replaces) a scoring family under `name`. Callable at
    /// any time, including while the engine is serving queries; replacing
    /// an existing family bumps the registry generation, invalidating
    /// cached results computed under the old implementation.
    pub fn register(
        &self,
        name: impl Into<String>,
        factory: impl Fn(&[f64]) -> Result<Arc<dyn ScoringSpec>, String> + Send + Sync + 'static,
    ) {
        let mut factories = self.factories.write().expect("registry lock");
        let replaced = factories.insert(name.into(), Arc::new(factory)).is_some();
        if replaced {
            // Under the write lock, so a concurrent key derivation cannot
            // pair the new factory with the old generation.
            self.generation
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
    }

    /// The replacement generation (see [`ScoringRegistry::register`]);
    /// folded into engine cache keys.
    pub fn generation(&self) -> u64 {
        self.generation.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Resolves `name` with `params` into a scoring instance.
    ///
    /// Once any family has ever been replaced, resolved instances carry the
    /// registry generation folded into their cache fingerprint, so results
    /// memoised under a family's old implementation can never be replayed
    /// as the new one's. The factory and the generation are read under one
    /// lock, so a concurrent replacement cannot pair an old factory with a
    /// new generation (or vice versa).
    ///
    /// # Errors
    /// [`EngineError::UnknownScoring`] for unregistered names,
    /// [`EngineError::InvalidScoringParams`] when the factory rejects the
    /// parameters.
    pub fn resolve(&self, name: &str, params: &[f64]) -> Result<Arc<dyn ScoringSpec>, EngineError> {
        let (factory, generation) = {
            let factories = self.factories.read().expect("registry lock");
            let factory = factories
                .get(name)
                .cloned()
                .ok_or_else(|| EngineError::UnknownScoring(name.to_string()))?;
            (
                factory,
                self.generation.load(std::sync::atomic::Ordering::SeqCst),
            )
        };
        let scoring = factory(params).map_err(|reason| EngineError::InvalidScoringParams {
            name: name.to_string(),
            reason,
        })?;
        if generation == 0 {
            // Fast path: no family was ever replaced, the plain fingerprint
            // is already unambiguous.
            return Ok(scoring);
        }
        Ok(Arc::new(GenerationTagged {
            inner: scoring,
            generation,
        }))
    }

    /// The registered family names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .factories
            .read()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }
}

impl Default for ScoringRegistry {
    fn default() -> Self {
        ScoringRegistry::with_builtins()
    }
}

/// A resolved scoring instance tagged with the registry generation it was
/// resolved under: behaves exactly like the inner scoring, but its cache
/// fingerprint additionally hashes the generation (see
/// [`ScoringRegistry::resolve`]).
#[derive(Debug)]
struct GenerationTagged {
    inner: Arc<dyn ScoringSpec>,
    generation: u64,
}

impl prj_core::ScoringFunction for GenerationTagged {
    fn proximity_weighted_score(&self, sigma: f64, dq: f64, dmu: f64) -> f64 {
        self.inner.proximity_weighted_score(sigma, dq, dmu)
    }

    fn aggregate(&self, parts: &[f64]) -> f64 {
        self.inner.aggregate(parts)
    }

    fn distance(&self, a: &prj_geometry::Vector, b: &prj_geometry::Vector) -> f64 {
        self.inner.distance(a, b)
    }

    fn centroid(&self, points: &[&prj_geometry::Vector]) -> prj_geometry::Vector {
        self.inner.centroid(points)
    }

    fn score_members(
        &self,
        members: &[prj_core::scoring::Member<'_>],
        query: &prj_geometry::Vector,
    ) -> f64 {
        self.inner.score_members(members, query)
    }

    fn euclidean_weights(&self) -> Option<Weights> {
        self.inner.euclidean_weights()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

impl ScoringSpec for GenerationTagged {
    fn cache_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.inner.cache_fingerprint().hash(&mut h);
        self.generation.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prj_core::ScoringFunction;

    #[test]
    fn builtins_resolve_with_and_without_parameters() {
        let registry = ScoringRegistry::with_builtins();
        assert_eq!(registry.names(), vec!["cosine-similarity", "euclidean-log"]);
        let default = registry.resolve("euclidean-log", &[]).unwrap();
        assert_eq!(default.name(), "euclidean-log");
        assert_eq!(default.euclidean_weights().unwrap().w_s, 1.0);
        let weighted = registry.resolve("euclidean-log", &[2.0, 3.0, 0.5]).unwrap();
        assert_eq!(weighted.euclidean_weights().unwrap().w_q, 3.0);
        assert_ne!(
            default.cache_fingerprint(),
            weighted.cache_fingerprint(),
            "parameters must key the cache"
        );
        let cosine = registry.resolve("cosine-similarity", &[]).unwrap();
        assert!(cosine.euclidean_weights().is_none());
    }

    #[test]
    fn unknown_names_and_bad_parameters_are_typed_errors() {
        let registry = ScoringRegistry::with_builtins();
        match registry.resolve("mystery", &[]) {
            Err(EngineError::UnknownScoring(name)) => assert_eq!(name, "mystery"),
            other => panic!("expected UnknownScoring, got {other:?}"),
        }
        match registry.resolve("euclidean-log", &[1.0]) {
            Err(EngineError::InvalidScoringParams { name, .. }) => {
                assert_eq!(name, "euclidean-log")
            }
            other => panic!("expected InvalidScoringParams, got {other:?}"),
        }
        // w_q = 0 violates the tight-bound reduction's requirement.
        assert!(registry.resolve("euclidean-log", &[1.0, 0.0, 1.0]).is_err());
        // Non-finite weights would poison every score with NaN.
        assert!(registry
            .resolve("euclidean-log", &[f64::NAN, 1.0, 1.0])
            .is_err());
        assert!(registry
            .resolve("cosine-similarity", &[1.0, f64::INFINITY, 1.0])
            .is_err());
        assert!(registry
            .resolve("euclidean-log", &[1.0, f64::NAN, 1.0])
            .is_err());
    }

    #[test]
    fn replacing_a_family_changes_resolved_fingerprints() {
        let registry = ScoringRegistry::with_builtins();
        let before = registry.resolve("euclidean-log", &[]).unwrap();
        assert_eq!(registry.generation(), 0);
        // New names do not bump the generation (they cannot collide with
        // anything already cached)...
        registry.register("fresh", |_| Ok(Arc::new(EuclideanLogScore::default()) as _));
        assert_eq!(registry.generation(), 0);
        // ...but replacing an existing family does, and instances resolved
        // afterwards must not share cache fingerprints with pre-replacement
        // ones even when the new implementation reports the same
        // name/parameter fingerprint.
        registry.register("euclidean-log", |_| {
            Ok(Arc::new(EuclideanLogScore::default()) as _)
        });
        assert_eq!(registry.generation(), 1);
        let after = registry.resolve("euclidean-log", &[]).unwrap();
        assert_ne!(before.cache_fingerprint(), after.cache_fingerprint());
        // The tagged instance still behaves like the inner scoring.
        assert_eq!(after.name(), "euclidean-log");
        assert!(after.euclidean_weights().is_some());
        // Two post-replacement resolutions agree (caching still works).
        let again = registry.resolve("euclidean-log", &[]).unwrap();
        assert_eq!(after.cache_fingerprint(), again.cache_fingerprint());
    }

    #[test]
    fn runtime_registration_extends_the_open_set() {
        let registry = ScoringRegistry::with_builtins();
        registry.register("doubled-euclidean-log", |params| {
            let w = weights_from(params)?;
            Ok(Arc::new(EuclideanLogScore::new(
                2.0 * w.w_s,
                2.0 * w.w_q,
                2.0 * w.w_mu,
            )) as _)
        });
        let s = registry.resolve("doubled-euclidean-log", &[]).unwrap();
        assert_eq!(s.euclidean_weights().unwrap().w_s, 2.0);
        assert_eq!(registry.names().len(), 3);
    }
}
