//! The concurrent executor: a fixed pool of worker threads.
//!
//! Queries are pure CPU work over shared immutable structures, so a classic
//! fixed-size thread pool over an [`mpsc`] job queue is all the engine needs
//! — no async runtime, no work stealing. Jobs are boxed closures; results
//! travel back to the caller through per-query channels owned by the
//! [`crate::engine::QueryTicket`] / [`crate::engine::ResultStream`] handles.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads consuming jobs from a shared queue.
#[derive(Debug)]
pub struct Executor {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl Executor {
    /// Spawns a pool of `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("prj-engine-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the queue lock only while popping, not while
                        // running the job.
                        let job = match receiver.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => return,
                        };
                        match job {
                            // A panicking job must not take the worker down
                            // with it: the job's result channel is dropped
                            // (its ticket observes WorkerLost) and the worker
                            // lives on to serve the next query.
                            Ok(job) => {
                                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            }
                            Err(_) => return, // queue closed: shut down
                        }
                    })
                    .expect("spawn engine worker")
            })
            .collect();
        Executor {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job; some worker will run it.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("executor already shut down")
            .send(Box::new(job))
            .expect("engine workers are gone");
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // Closing the channel lets every worker drain outstanding jobs and
        // exit; joining makes shutdown deterministic.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::sync_channel;

    #[test]
    fn runs_jobs_on_worker_threads() {
        let pool = Executor::new(4);
        assert_eq!(pool.threads(), 4);
        let (tx, rx) = sync_channel(64);
        for i in 0..64usize {
            let tx = tx.clone();
            pool.spawn(move || {
                tx.send((i, std::thread::current().name().map(String::from)))
                    .unwrap();
            });
        }
        let mut seen: Vec<usize> = (0..64)
            .map(|_| rx.recv().unwrap())
            .map(|(i, name)| {
                assert!(name.unwrap_or_default().starts_with("prj-engine-worker-"));
                i
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn drop_drains_outstanding_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = Executor::new(2);
            for _ in 0..32 {
                let counter = Arc::clone(&counter);
                pool.spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Dropping the pool joins the workers after the queue drains.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = Executor::new(1);
        pool.spawn(|| panic!("job blew up"));
        // The single worker must survive to run the next job.
        let (tx, rx) = sync_channel(1);
        pool.spawn(move || tx.send(7u8).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn at_least_one_thread() {
        let pool = Executor::new(0);
        assert_eq!(pool.threads(), 1);
        let (tx, rx) = sync_channel(1);
        pool.spawn(move || tx.send(42u8).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
    }
}
