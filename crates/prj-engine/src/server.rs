//! The TCP front-end: `prj-api` wire lines over a socket.
//!
//! [`Server::bind`] spawns an accept loop; each connection gets its own
//! thread that reads one request line at a time, pushes it through the
//! shared [`Session`], and writes the response line(s) back. A streaming
//! request writes `item` lines as the engine certifies results — the
//! engine-side channel gives the producer backpressure, so a slow client
//! slows its own run, not the pool. Malformed lines are answered with an
//! `err` response instead of dropping the connection, so a curious `nc`
//! user gets diagnostics rather than silence.
//!
//! This is deliberately a *minimal* front-end (std `TcpListener`, blocking
//! I/O, thread per connection): enough to serve the protocol end to end and
//! to be booted on a loopback port by the integration tests.

use crate::session::{Dispatch, Session};
use prj_api::{wire, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Anything able to route one protocol request to a [`Dispatch`]. The
/// plain [`Session`] is the standard handler; `prj-cluster` implements
/// this for its coordinator (which replicates mutations before acking) and
/// its worker (which additionally serves the cluster-internal verbs).
pub trait RequestHandler: Send + Sync {
    /// Routes one request; failures come back as
    /// [`Dispatch::One`]`(`[`Response::Error`]`)`, never as a panic.
    fn dispatch_request(&self, request: Request) -> Dispatch;
}

impl RequestHandler for Session {
    fn dispatch_request(&self, request: Request) -> Dispatch {
        self.dispatch(request)
    }
}

/// A running TCP front-end.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts accepting
    /// connections served by `handler` — a [`Session`] or any other
    /// [`RequestHandler`].
    pub fn bind<H: RequestHandler + 'static>(
        addr: impl ToSocketAddrs,
        handler: Arc<H>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_handle = std::thread::Builder::new()
            .name("prj-serve-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let handler = Arc::clone(&handler);
                    // One thread per connection; connections are expected to
                    // be long-lived (a client keeps one open and pipelines
                    // requests on it).
                    let _ = std::thread::Builder::new()
                        .name("prj-serve-conn".to_string())
                        .spawn(move || serve_connection(stream, handler.as_ref()));
                }
            })?;
        Ok(Server {
            addr,
            shutdown,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept loop. Already
    /// established connections keep being served until their clients hang
    /// up.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection. A wildcard
        // bind (0.0.0.0 / ::) is not a connectable destination everywhere,
        // so aim at the loopback equivalent, and never wait long.
        let mut target = self.addr;
        if target.ip().is_unspecified() {
            target.set_ip(match target.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let unblocked =
            TcpStream::connect_timeout(&target, std::time::Duration::from_secs(1)).is_ok();
        if let Some(handle) = self.accept_handle.take() {
            if unblocked {
                let _ = handle.join();
            }
            // If the self-connect failed, leave the accept thread parked on
            // its listener rather than deadlocking the caller: the shutdown
            // flag makes it exit on the next incoming connection.
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn write_line(writer: &Mutex<TcpStream>, response: &Response, version: u32) -> std::io::Result<()> {
    let mut line = wire::encode_response_at(response, version);
    line.push('\n');
    // One lock per full line keeps concurrent writers (the request loop
    // and subscription forwarders) from interleaving partial lines.
    writer
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .write_all(line.as_bytes())
}

fn serve_connection(stream: TcpStream, handler: &dyn RequestHandler) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // Shared with subscription forwarder threads: notifications are pushed
    // on the same connection, interleaved between ordinary response lines.
    let writer = Arc::new(Mutex::new(write_half));
    let mut forwarders: Vec<JoinHandle<()>> = Vec::new();
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        // Answer every request in the dialect it arrived in, so prj/1
        // clients round-trip against this server unchanged. Lines too
        // broken to reveal a version are answered at prj/1, which every
        // peer parses.
        let (version, outcome) = match wire::decode_request_versioned(&line) {
            Err(e) => (
                prj_api::MIN_PROTOCOL_VERSION,
                Dispatch::One(Response::Error(e)),
            ),
            Ok((version, request)) => (version, handler.dispatch_request(request)),
        };
        let io = match outcome {
            Dispatch::One(response) => write_line(&writer, &response, version),
            Dispatch::Stream(mut stream) => loop {
                match stream.next_row() {
                    Some(row) => {
                        if let Err(e) = write_line(&writer, &Response::StreamItem(row), version) {
                            // The client went away mid-stream; dropping the
                            // SessionStream aborts the engine-side run.
                            break Err(e);
                        }
                    }
                    // A failed run must close the stream with an error
                    // line, not an end marker a client would read as a
                    // complete top-K.
                    None => match stream.error() {
                        Some(error) => break write_line(&writer, &Response::Error(error), version),
                        None => {
                            break write_line(
                                &writer,
                                &Response::StreamEnd {
                                    count: stream.delivered(),
                                },
                                version,
                            )
                        }
                    },
                }
            },
            Dispatch::Subscribed { ack, feed } => {
                // Ack first — the client must learn the subscription id and
                // baseline top-K before any notification referencing them.
                let acked = write_line(&writer, &ack, version);
                if acked.is_ok() {
                    let feed_writer = Arc::clone(&writer);
                    let handle = std::thread::Builder::new()
                        .name("prj-serve-notify".to_string())
                        .spawn(move || {
                            // Drains until the subscription manager drops
                            // the sender (unsubscribe, relation drop, or
                            // terminal error — each ends with a `fin`
                            // notification). A write failure means the
                            // client is gone; stop forwarding and let the
                            // manager notice on its next send.
                            while let Ok(notify) = feed.recv() {
                                if write_line(&feed_writer, &notify, version).is_err() {
                                    break;
                                }
                            }
                        });
                    if let Ok(handle) = handle {
                        forwarders.push(handle);
                    }
                }
                acked
            }
        };
        if io.is_err() {
            break;
        }
    }
    // The read half is closed; shut the socket down so forwarders' writes
    // fail fast instead of queueing into a dead connection, then join them.
    if let Ok(guard) = writer.lock() {
        let _ = guard.shutdown(std::net::Shutdown::Both);
    }
    for handle in forwarders {
        let _ = handle.join();
    }
}
