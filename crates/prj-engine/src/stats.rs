//! Engine-level statistics: aggregation of per-query operator metrics.
//!
//! Every query — cold or cached — contributes one [`QueryRecord`] built from
//! the operator's [`prj_core::RunMetrics`] and [`prj_access::AccessStats`].
//! The aggregate keeps running totals (depths, bound evaluations, latency
//! extremes) plus a bounded ring of recent latencies for percentile
//! estimates, so observing a long-lived engine costs O(1) memory.

use std::sync::Mutex;
use std::time::Duration;

/// How many recent latencies the percentile ring retains.
const LATENCY_RING: usize = 4096;

/// One partitioned execution unit's contribution to a query, tagged with
/// the shard it ran on. Sparse by construction: shards whose driving slice
/// was empty run no unit and therefore contribute no record.
#[derive(Debug, Clone, Copy)]
pub struct UnitRecord {
    /// The driving-relation shard the unit covered.
    pub shard: usize,
    /// Sorted accesses the unit performed.
    pub sum_depths: usize,
    /// The unit's wall time.
    pub latency: Duration,
}

/// One served query, as recorded by the engine.
#[derive(Debug, Clone, Default)]
pub struct QueryRecord {
    /// End-to-end latency observed by the engine (queueing + execution).
    pub latency: Duration,
    /// `sumDepths` of the run (0 for cache hits — no access was performed).
    pub sum_depths: usize,
    /// Number of `updateBound` evaluations (0 for cache hits).
    pub bound_updates: usize,
    /// Whether the result came from the cache.
    pub from_cache: bool,
    /// The execution units that actually ran, one per covered shard (empty
    /// for cache hits).
    pub units: Vec<UnitRecord>,
    /// Per-relation sorted-access depths of the executed result, as
    /// `(relation index, depth)` pairs (empty for cache hits). Feeds the
    /// `prj_relation_depth_total` metric series; unlike `sum_depths` it
    /// counts the accesses the served result *embodies*, including those
    /// replayed from the unit cache.
    pub relation_depths: Vec<(usize, u64)>,
}

#[derive(Debug, Default)]
struct Totals {
    queries: u64,
    cache_hits: u64,
    executed: u64,
    total_latency: Duration,
    min_latency: Option<Duration>,
    max_latency: Duration,
    total_sum_depths: u64,
    total_bound_updates: u64,
    recent_latencies: Vec<Duration>,
    ring_cursor: usize,
    /// Per-shard lanes, grown on demand to the widest record seen.
    shards: Vec<ShardLane>,
}

/// Aggregate work one shard's execution units have performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardLane {
    /// Execution units that actually ran on this shard (a query whose
    /// driving slice of this shard was empty contributes none).
    pub units: u64,
    /// Total sorted accesses performed by this shard's units.
    pub sum_depths: u64,
    /// Total wall time spent in this shard's units.
    pub total_latency: Duration,
}

impl ShardLane {
    /// Mean unit latency on this shard.
    pub fn mean_latency(&self) -> Duration {
        if self.units == 0 {
            Duration::ZERO
        } else {
            self.total_latency / self.units as u32
        }
    }
}

/// Thread-safe aggregate of everything the engine has served.
#[derive(Debug, Default)]
pub struct EngineStats {
    totals: Mutex<Totals>,
}

impl EngineStats {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        EngineStats::default()
    }

    /// Records one served query.
    pub fn record(&self, record: QueryRecord) {
        let mut t = self.totals.lock().expect("stats lock");
        t.queries += 1;
        if record.from_cache {
            t.cache_hits += 1;
        } else {
            t.executed += 1;
        }
        t.total_latency += record.latency;
        t.min_latency = Some(
            t.min_latency
                .map_or(record.latency, |m| m.min(record.latency)),
        );
        t.max_latency = t.max_latency.max(record.latency);
        t.total_sum_depths += record.sum_depths as u64;
        t.total_bound_updates += record.bound_updates as u64;
        for unit in &record.units {
            if t.shards.len() <= unit.shard {
                t.shards.resize(unit.shard + 1, ShardLane::default());
            }
            let lane = &mut t.shards[unit.shard];
            lane.units += 1;
            lane.sum_depths += unit.sum_depths as u64;
            lane.total_latency += unit.latency;
        }
        if t.recent_latencies.len() < LATENCY_RING {
            t.recent_latencies.push(record.latency);
        } else {
            let cursor = t.ring_cursor;
            t.recent_latencies[cursor] = record.latency;
            t.ring_cursor = (cursor + 1) % LATENCY_RING;
        }
    }

    /// A point-in-time snapshot.
    pub fn snapshot(&self) -> EngineStatsSnapshot {
        let t = self.totals.lock().expect("stats lock");
        let mut recent = t.recent_latencies.clone();
        recent.sort_unstable();
        let percentile = |p: f64| -> Duration {
            if recent.is_empty() {
                Duration::ZERO
            } else {
                let idx = ((recent.len() - 1) as f64 * p).floor() as usize;
                recent[idx]
            }
        };
        EngineStatsSnapshot {
            queries: t.queries,
            cache_hits: t.cache_hits,
            executed: t.executed,
            mean_latency: if t.queries == 0 {
                Duration::ZERO
            } else {
                t.total_latency / t.queries as u32
            },
            min_latency: t.min_latency.unwrap_or(Duration::ZERO),
            max_latency: t.max_latency,
            p50_latency: percentile(0.50),
            p95_latency: percentile(0.95),
            total_sum_depths: t.total_sum_depths,
            total_bound_updates: t.total_bound_updates,
            per_shard: t.shards.clone(),
        }
    }
}

/// Point-in-time engine statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineStatsSnapshot {
    /// Total queries served (cold + cached).
    pub queries: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries that actually ran the operator.
    pub executed: u64,
    /// Mean end-to-end latency.
    pub mean_latency: Duration,
    /// Fastest query.
    pub min_latency: Duration,
    /// Slowest query.
    pub max_latency: Duration,
    /// Median latency over the recent ring.
    pub p50_latency: Duration,
    /// 95th-percentile latency over the recent ring.
    pub p95_latency: Duration,
    /// Sum of `sumDepths` over all executed runs — the paper's I/O metric,
    /// aggregated fleet-wide.
    pub total_sum_depths: u64,
    /// Total `updateBound` evaluations over all executed runs.
    pub total_bound_updates: u64,
    /// Per-shard depth/latency breakdown of partitioned executions, indexed
    /// by shard (empty until a sharded query executes).
    pub per_shard: Vec<ShardLane>,
}

impl EngineStatsSnapshot {
    /// Cache hit rate in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// Mean sorted accesses per *executed* (non-cached) query.
    pub fn mean_sum_depths(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.total_sum_depths as f64 / self.executed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(us: u64, depths: usize, cached: bool) -> QueryRecord {
        QueryRecord {
            latency: Duration::from_micros(us),
            sum_depths: depths,
            bound_updates: depths + 1,
            from_cache: cached,
            ..QueryRecord::default()
        }
    }

    #[test]
    fn aggregates_totals() {
        let stats = EngineStats::new();
        stats.record(record(100, 10, false));
        stats.record(record(300, 20, false));
        stats.record(record(20, 0, true));
        let snap = stats.snapshot();
        assert_eq!(snap.queries, 3);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.executed, 2);
        assert_eq!(snap.total_sum_depths, 30);
        assert_eq!(snap.total_bound_updates, 10 + 1 + 20 + 1 + 1);
        assert_eq!(snap.min_latency, Duration::from_micros(20));
        assert_eq!(snap.max_latency, Duration::from_micros(300));
        assert_eq!(snap.mean_latency, Duration::from_micros(140));
        assert!((snap.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((snap.mean_sum_depths() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_over_recent_ring() {
        let stats = EngineStats::new();
        for us in 1..=100 {
            stats.record(record(us, 1, false));
        }
        let snap = stats.snapshot();
        assert_eq!(snap.p50_latency, Duration::from_micros(50));
        assert_eq!(snap.p95_latency, Duration::from_micros(95));
    }

    fn unit(shard: usize, depths: usize, us: u64) -> UnitRecord {
        UnitRecord {
            shard,
            sum_depths: depths,
            latency: Duration::from_micros(us),
        }
    }

    #[test]
    fn per_shard_lanes_accumulate_only_units_that_ran() {
        let stats = EngineStats::new();
        stats.record(QueryRecord {
            latency: Duration::from_micros(100),
            sum_depths: 30,
            units: vec![unit(0, 10, 40), unit(1, 20, 60)],
            ..QueryRecord::default()
        });
        stats.record(QueryRecord {
            latency: Duration::from_micros(50),
            sum_depths: 4,
            // Shard 1's driving slice was empty this time: no unit ran
            // there, so its lane must not be touched. Shard 2 grows the
            // lane vector.
            units: vec![unit(0, 1, 10), unit(2, 3, 30)],
            ..QueryRecord::default()
        });
        // A cache hit contributes nothing per shard.
        stats.record(record(5, 0, true));
        let snap = stats.snapshot();
        assert_eq!(snap.per_shard.len(), 3);
        assert_eq!(snap.per_shard[0].units, 2);
        assert_eq!(snap.per_shard[0].sum_depths, 11);
        assert_eq!(snap.per_shard[0].total_latency, Duration::from_micros(50));
        assert_eq!(snap.per_shard[1].units, 1, "idle shard gains no unit");
        assert_eq!(snap.per_shard[1].sum_depths, 20);
        assert_eq!(snap.per_shard[1].mean_latency(), Duration::from_micros(60));
        assert_eq!(snap.per_shard[2].units, 1);
        assert_eq!(snap.per_shard[2].sum_depths, 3);
        assert_eq!(snap.per_shard[2].mean_latency(), Duration::from_micros(30));
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let snap = EngineStats::new().snapshot();
        assert_eq!(snap.queries, 0);
        assert_eq!(snap.mean_latency, Duration::ZERO);
        assert_eq!(snap.cache_hit_rate(), 0.0);
        assert_eq!(snap.mean_sum_depths(), 0.0);
    }
}
