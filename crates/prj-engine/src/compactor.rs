//! The background compactor: folds shard deltas into their base indexes.
//!
//! With a non-zero [`EngineBuilder::delta_threshold`](crate::EngineBuilder::delta_threshold),
//! appends publish into per-shard [`prj_access::DeltaBuffer`]s in O(delta)
//! and this thread pays the O(|shard|) index work later, off the ingest
//! path. Each pass scans the catalog's delta backlog and calls
//! [`Catalog::compact_shard`] for every shard at or above the threshold;
//! every 8th pass flushes *all* non-empty deltas, which bounds how long a
//! tuple can sit unindexed without introducing wall-clock-dependent
//! behaviour into the fold decisions themselves.
//!
//! Compaction is invisible to query results by construction — it preserves
//! shard epochs and the visible tuple set (see the catalog module docs) —
//! so the *only* externally observable effects are the
//! `prj_compactions_total` counter, the `prj_delta_tuples` gauge, and the
//! `compaction` spans recorded per pass.
//!
//! ## Test hooks
//!
//! [`Compactor::pause`] stops the background thread from starting new
//! passes (and waits out an in-flight one), [`Compactor::step`] runs one
//! synchronous full-flush pass on the calling thread even while paused, and
//! [`Compactor::resume`] restarts background folding. Together they let the
//! differential torture tests force queries to land exactly mid-compaction.

use crate::catalog::Catalog;
use crate::obs::EngineObs;
use prj_obs::{Counter, Gauge, MetricsRegistry, Recorder, TraceId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often an idle compactor wakes to look for aged deltas.
const IDLE_TICK: Duration = Duration::from_millis(25);

/// Every this-many passes, all non-empty deltas are flushed regardless of
/// size — the deterministic "age" bound.
const FLUSH_EVERY: u64 = 8;

/// Shared state between the engine-facing handle and the worker thread.
#[derive(Debug)]
struct Inner {
    catalog: Arc<Catalog>,
    /// Fold a delta once it holds at least this many tuples.
    threshold: usize,
    paused: AtomicBool,
    shutdown: AtomicBool,
    /// Passes started (background + stepped); drives the age flush.
    passes: AtomicU64,
    /// Wake-up flag + condvar: appends notify, the thread drains.
    notified: Mutex<bool>,
    wake: Condvar,
    /// Serialises passes, so `pause` can barrier on an in-flight pass and
    /// `step` never overlaps the background thread.
    pass: Mutex<()>,
    compactions_total: Arc<Counter>,
    delta_tuples: Arc<Gauge>,
    /// Age of the oldest un-folded delta (`prj_compactor_backlog_age_ms`).
    backlog_age_ms: Arc<Gauge>,
    /// Registry handle for the per-shard `prj_delta_tuples{shard=..}`
    /// gauges (shard set is dynamic, so these resolve per pass — off the
    /// query path by construction).
    registry: Arc<MetricsRegistry>,
    /// When each `(relation, shard)` delta first became non-empty, as
    /// observed by the fold loop. `DeltaBuffer`s carry no timestamps, so
    /// the compactor itself is the clock: an entry is stamped the first
    /// pass that sees the backlog and cleared the pass that sees it
    /// drained.
    first_seen: Mutex<HashMap<(usize, usize), Instant>>,
    recorder: Arc<Recorder>,
}

impl Inner {
    /// One compaction pass: fold every shard whose delta is at (or, when
    /// `flush_all`, above zero) the threshold. Returns folded-shard count.
    fn run_pass(&self, flush_all: bool) -> usize {
        let _pass = self.pass.lock().expect("pass lock");
        let min_len = if flush_all { 1 } else { self.threshold.max(1) };
        let backlog = self.catalog.delta_backlog(min_len);
        let mut folded: usize = 0;
        for (id, shard, _) in backlog {
            // Dropped relations and already-drained shards are fine — the
            // backlog entry was just a snapshot.
            if matches!(self.catalog.compact_shard(id, shard), Ok(true)) {
                folded += 1;
            }
        }
        if folded > 0 {
            self.compactions_total.add(folded as u64);
        }
        self.refresh_backlog_gauges();
        if folded > 0 && self.recorder.enabled() {
            let mut span = self.recorder.span(TraceId::generate(), "compaction");
            span.attr("shards", folded);
            span.attr("flush_all", u64::from(flush_all));
            span.finish();
        }
        folded
    }

    /// Refreshes every backlog-derived gauge from the catalog's current
    /// delta state: the total and per-shard `prj_delta_tuples` series and
    /// the `prj_compactor_backlog_age_ms` age of the oldest surviving
    /// delta. Runs once per pass, even when nothing folded, so a drained
    /// backlog reads as zero everywhere.
    fn refresh_backlog_gauges(&self) {
        let backlog = self.catalog.delta_backlog(1);
        let now = Instant::now();
        let mut first_seen = self.first_seen.lock().expect("first-seen lock");
        first_seen.retain(|key, _| {
            backlog
                .iter()
                .any(|(id, shard, _)| (id.index(), *shard) == *key)
        });
        let shards = self.catalog.policy().shards();
        let mut per_shard = vec![0u64; shards];
        for (id, shard, len) in &backlog {
            first_seen.entry((id.index(), *shard)).or_insert(now);
            if let Some(slot) = per_shard.get_mut(*shard) {
                *slot += *len as u64;
            }
        }
        let oldest_ms = first_seen
            .values()
            .map(|t| now.duration_since(*t).as_millis() as u64)
            .max()
            .unwrap_or(0);
        drop(first_seen);
        self.backlog_age_ms.set(oldest_ms as f64);
        self.delta_tuples
            .set(self.catalog.delta_tuples_total() as f64);
        for (shard, len) in per_shard.iter().enumerate() {
            let label = shard.to_string();
            self.registry
                .gauge("prj_delta_tuples", &[("shard", &label)])
                .set(*len as f64);
        }
    }

    fn next_pass_flushes_all(&self) -> bool {
        self.passes.fetch_add(1, Ordering::Relaxed) % FLUSH_EVERY == FLUSH_EVERY - 1
    }
}

/// Handle to the engine's background compaction thread.
///
/// Owned by the [`Engine`](crate::Engine) when its delta threshold is
/// non-zero; dropped (and joined) with it.
#[derive(Debug)]
pub struct Compactor {
    inner: Arc<Inner>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Compactor {
    /// Spawns the compaction thread over `catalog`, folding deltas of
    /// `threshold` tuples or more (and flushing all deltas every
    /// [`FLUSH_EVERY`]th pass).
    pub(crate) fn spawn(catalog: Arc<Catalog>, threshold: usize, obs: &EngineObs) -> Compactor {
        let inner = Arc::new(Inner {
            catalog,
            threshold,
            paused: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            passes: AtomicU64::new(0),
            notified: Mutex::new(false),
            wake: Condvar::new(),
            pass: Mutex::new(()),
            compactions_total: obs.compactions_total(),
            delta_tuples: obs.delta_tuples(),
            backlog_age_ms: obs.registry().gauge("prj_compactor_backlog_age_ms", &[]),
            registry: Arc::clone(obs.registry()),
            first_seen: Mutex::new(HashMap::new()),
            recorder: Arc::clone(obs.recorder()),
        });
        let worker = Arc::clone(&inner);
        let thread = std::thread::Builder::new()
            .name("prj-compactor".to_string())
            .spawn(move || worker_loop(&worker))
            .expect("spawn compactor thread");
        Compactor {
            inner,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// Wakes the background thread (called after every committed append).
    pub fn notify(&self) {
        let mut notified = self.inner.notified.lock().expect("notify lock");
        *notified = true;
        self.inner.wake.notify_one();
    }

    /// Pauses background compaction. Returns once no pass is in flight, so
    /// after `pause()` the catalog's deltas only move via [`Compactor::step`]
    /// (or direct [`Catalog::compact_shard`] calls) — the deterministic
    /// white-box mode the torture tests drive.
    pub fn pause(&self) {
        self.inner.paused.store(true, Ordering::SeqCst);
        // Barrier on an in-flight pass: once we can take the pass lock, the
        // background thread is parked outside run_pass and sees `paused`.
        drop(self.inner.pass.lock().expect("pass lock"));
    }

    /// Resumes background compaction.
    pub fn resume(&self) {
        self.inner.paused.store(false, Ordering::SeqCst);
        self.notify();
    }

    /// Whether background compaction is currently paused.
    pub fn is_paused(&self) -> bool {
        self.inner.paused.load(Ordering::SeqCst)
    }

    /// Runs one synchronous full-flush pass on the calling thread — works
    /// while paused — and returns how many shards were folded.
    pub fn step(&self) -> usize {
        self.inner.passes.fetch_add(1, Ordering::Relaxed);
        self.inner.run_pass(true)
    }

    /// Number of passes started so far (background and stepped).
    pub fn passes(&self) -> u64 {
        self.inner.passes.load(Ordering::Relaxed)
    }

    /// Age (ms) of the oldest delta the fold loop has seen and not yet
    /// drained; 0 when the backlog is empty (or no pass has observed the
    /// newest appends yet — the idle tick bounds that window). This is the
    /// `oldest_delta_age_ms` signal of the health model.
    pub fn oldest_backlog_age_ms(&self) -> u64 {
        let first_seen = self.inner.first_seen.lock().expect("first-seen lock");
        let now = Instant::now();
        first_seen
            .values()
            .map(|t| now.duration_since(*t).as_millis() as u64)
            .max()
            .unwrap_or(0)
    }

    /// Stops and joins the background thread (idempotent; also run on
    /// engine drop).
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.notify();
        if let Some(thread) = self.thread.lock().expect("thread lock").take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        {
            let mut notified = inner.notified.lock().expect("notify lock");
            if !*notified && !inner.shutdown.load(Ordering::SeqCst) {
                let (guard, _timeout) = inner
                    .wake
                    .wait_timeout(notified, IDLE_TICK)
                    .expect("notify lock");
                notified = guard;
            }
            *notified = false;
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            // Final flush so no acknowledged append is left unindexed
            // behind a shutdown (readers would still see it via the delta,
            // but tests asserting drained deltas rely on this).
            if !inner.paused.load(Ordering::SeqCst) {
                inner.run_pass(true);
            }
            return;
        }
        if inner.paused.load(Ordering::SeqCst) {
            continue;
        }
        let flush_all = inner.next_pass_flushes_all();
        inner.run_pass(flush_all);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharding::ShardingPolicy;
    use prj_geometry::Vector;

    fn catalog_with_backlog(threshold: usize, appends: usize) -> (Arc<Catalog>, crate::RelationId) {
        let catalog = Arc::new(Catalog::with_policy_and_delta(
            ShardingPolicy::new(2),
            threshold,
        ));
        let id = catalog.register("r", Vec::new());
        for i in 0..appends {
            let x = (i % 7) as f64 - 3.0;
            catalog
                .append_rows(
                    id,
                    vec![(Vector::from([x, -x]), 0.1 + (i % 9) as f64 / 10.0)],
                )
                .unwrap();
        }
        (catalog, id)
    }

    #[test]
    fn background_thread_drains_deltas() {
        let obs = EngineObs::new(0, None);
        let (catalog, id) = catalog_with_backlog(4, 12);
        assert!(catalog.delta_tuples_total() > 0);
        let compactor = Compactor::spawn(Arc::clone(&catalog), 4, &obs);
        compactor.notify();
        // The age flush drains even below-threshold deltas; poll briefly.
        for _ in 0..400 {
            if catalog.delta_tuples_total() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(catalog.delta_tuples_total(), 0);
        let rel = catalog.relation(id).unwrap();
        assert_eq!(rel.cardinality(), 12);
        compactor.shutdown();
    }

    #[test]
    fn paused_compactor_only_moves_when_stepped() {
        let obs = EngineObs::new(16, None);
        let (catalog, _id) = catalog_with_backlog(2, 6);
        let compactor = Compactor::spawn(Arc::clone(&catalog), 2, &obs);
        compactor.pause();
        assert!(compactor.is_paused());
        let before = catalog.delta_tuples_total();
        assert!(before > 0);
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(
            catalog.delta_tuples_total(),
            before,
            "paused compactor must not fold"
        );
        let folded = compactor.step();
        assert!(folded > 0);
        assert_eq!(catalog.delta_tuples_total(), 0);
        compactor.resume();
        assert!(!compactor.is_paused());
        compactor.shutdown();
    }

    #[test]
    fn shutdown_flushes_remaining_deltas() {
        let obs = EngineObs::new(0, None);
        let (catalog, _id) = catalog_with_backlog(1_000_000, 5);
        let compactor = Compactor::spawn(Arc::clone(&catalog), 1_000_000, &obs);
        assert!(catalog.delta_tuples_total() > 0);
        compactor.shutdown();
        assert_eq!(catalog.delta_tuples_total(), 0);
    }
}
