//! The query planner: pick an algorithm from relation statistics.
//!
//! The paper evaluates four operator instantiations (CBRR/CBPA/TBRR/TBPA)
//! and characterises when each wins: the tight bound dominates the corner
//! bound whenever the scoring function admits the Euclidean reduction
//! (Theorems 3.2/3.3), potential-adaptive pulling never reads deeper than
//! round-robin (Theorem 3.5) and pays off most under skew (Figure 3(g)/(h)),
//! and the LP dominance test only amortises on deep runs (Figure 3(m)/(n)).
//! The [`Planner`] encodes those findings as deterministic rules over the
//! [`RelationStats`] the catalog computed at registration time, so every
//! query gets a defensible algorithm choice without the user having to know
//! the paper.

use prj_access::RelationStats;
use prj_core::Algorithm;

/// Tunable thresholds of the planning heuristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Cardinality imbalance (max/min) beyond which relations count as
    /// asymmetric, favouring potential-adaptive pulling.
    pub imbalance_threshold: f64,
    /// Per-relation depth (cardinality × k heuristic) beyond which the LP
    /// dominance test is enabled for tight-bound runs.
    pub dominance_cardinality: usize,
    /// Dominance-test period used when the test is enabled.
    pub dominance_period: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            imbalance_threshold: 4.0,
            dominance_cardinality: 4000,
            dominance_period: 50,
        }
    }
}

/// The planner's decision for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The chosen operator instantiation.
    pub algorithm: Algorithm,
    /// Dominance-test period to run with (`None` = disabled).
    pub dominance_period: Option<usize>,
    /// Human-readable justification, surfaced in engine results for
    /// observability.
    pub rationale: String,
}

/// Chooses among the four ProxRJ instantiations using relation statistics.
#[derive(Debug, Clone, Default)]
pub struct Planner {
    config: PlannerConfig,
}

impl Planner {
    /// Creates a planner with custom thresholds.
    pub fn with_config(config: PlannerConfig) -> Self {
        Planner { config }
    }

    /// Picks the *driving* relation of a partitioned execution — the one
    /// whose shards the combination space is split by — by estimated
    /// `sumDepths` instead of blindly taking the first.
    ///
    /// The model: per execution unit, the driving relation contributes only
    /// its shard slice, while every *non-driving* relation is read through
    /// a whole-relation merged view, so the non-driving relations dominate
    /// the expected access cost. How deep a non-driving relation is read
    /// before the bound closes depends on its score distribution:
    /// top-heavy (right-skewed) scores let potential-adaptive pulling stop
    /// early (the paper's Figure 3(g)/(h) skew behaviour), roughly
    /// discounting its expected depth by `1 / (1 + skew)`. The driving
    /// relation forfeits its own discount — its slices are enumerated
    /// regardless — so the best driving choice is the relation whose
    /// *removal* from the non-driving set costs least:
    ///
    /// ```text
    /// drive = argmin_d Σ_{r ≠ d} cardinality(r) / (1 + max(skew(r), 0))
    /// ```
    ///
    /// Deterministic (ties resolve to the lowest index, so symmetric
    /// relations keep the historical "first relation drives" behaviour) and
    /// a pure function of the statistics, which makes it safe to fold into
    /// cache keys implicitly. Correctness never depends on the choice: the
    /// combination space partitions exactly over *any* relation's shards.
    pub fn choose_driving(&self, stats: &[RelationStats]) -> usize {
        if stats.len() <= 1 {
            return 0;
        }
        let discounted: Vec<f64> = stats
            .iter()
            .map(|s| s.cardinality as f64 / (1.0 + s.score_skewness.max(0.0)))
            .collect();
        let total: f64 = discounted.iter().sum();
        // Σ_{r≠d} discounted(r) = total − discounted(d): minimising the
        // non-driving cost means driving the largest discounted term.
        (0..stats.len())
            .min_by(|&a, &b| (total - discounted[a]).total_cmp(&(total - discounted[b])))
            .unwrap_or(0)
    }

    /// Plans one query.
    ///
    /// * `scoring_reducible` — whether the scoring function exposes
    ///   Euclidean-reduction weights (tight bound available).
    /// * `stats` — per-relation statistics, in join order.
    pub fn plan(&self, scoring_reducible: bool, stats: &[RelationStats]) -> Plan {
        // Pulling strategy: potential-adaptive never loses (Theorem 3.5), but
        // its potentials only differ from round-robin's choices when the
        // relations are asymmetric — unbalanced cardinalities or skewed
        // score distributions. Keeping round-robin on symmetric inputs makes
        // runs byte-reproducible with the paper's TBRR/CBRR columns.
        let max_card = stats.iter().map(|s| s.cardinality).max().unwrap_or(0);
        let min_card = stats.iter().map(|s| s.cardinality).min().unwrap_or(0);
        let imbalanced =
            min_card == 0 || (max_card as f64 / min_card as f64) > self.config.imbalance_threshold;
        let skewed = stats.iter().any(|s| s.is_score_skewed());
        let adaptive = imbalanced || skewed;

        if !scoring_reducible {
            // No Euclidean reduction: the tight bound is unavailable, fall
            // back to the HRJN-family corner bound.
            let algorithm = if adaptive {
                Algorithm::Cbpa
            } else {
                Algorithm::Cbrr
            };
            return Plan {
                algorithm,
                dominance_period: None,
                rationale: format!(
                    "scoring not Euclidean-reducible -> corner bound; {} pulling ({})",
                    if adaptive {
                        "potential-adaptive"
                    } else {
                        "round-robin"
                    },
                    pulling_reason(imbalanced, skewed),
                ),
            };
        }

        let algorithm = if adaptive {
            Algorithm::Tbpa
        } else {
            Algorithm::Tbrr
        };
        // The LP dominance test costs one simplex solve per retained partial
        // combination; Figure 3(m)/(n) shows it only pays off when runs go
        // deep, which large relations make likely.
        let dominance_period = if max_card >= self.config.dominance_cardinality {
            Some(self.config.dominance_period)
        } else {
            None
        };
        Plan {
            algorithm,
            dominance_period,
            rationale: format!(
                "tight bound (instance-optimal); {} pulling ({}); dominance test {}",
                if adaptive {
                    "potential-adaptive"
                } else {
                    "round-robin"
                },
                pulling_reason(imbalanced, skewed),
                match dominance_period {
                    Some(p) => format!("every {p} accesses (large relations)"),
                    None => "disabled (shallow runs expected)".to_string(),
                },
            ),
        }
    }
}

fn pulling_reason(imbalanced: bool, skewed: bool) -> &'static str {
    match (imbalanced, skewed) {
        (true, true) => "cardinality imbalance + score skew",
        (true, false) => "cardinality imbalance",
        (false, true) => "score skew",
        (false, false) => "symmetric relations",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cardinality: usize, skewness: f64) -> RelationStats {
        RelationStats {
            cardinality,
            dimensions: 2,
            min_score: 0.05,
            max_score: 1.0,
            mean_score: 0.5,
            score_stddev: 0.2,
            score_skewness: skewness,
        }
    }

    #[test]
    fn symmetric_reducible_gets_tbrr() {
        let plan = Planner::default().plan(true, &[stats(100, 0.0), stats(110, 0.1)]);
        assert_eq!(plan.algorithm, Algorithm::Tbrr);
        assert_eq!(plan.dominance_period, None);
        assert!(plan.rationale.contains("round-robin"));
    }

    #[test]
    fn skew_triggers_potential_adaptive() {
        let plan = Planner::default().plan(true, &[stats(100, 1.2), stats(100, 0.0)]);
        assert_eq!(plan.algorithm, Algorithm::Tbpa);
        assert!(plan.rationale.contains("score skew"));
    }

    #[test]
    fn imbalance_triggers_potential_adaptive() {
        let plan = Planner::default().plan(true, &[stats(1000, 0.0), stats(50, 0.0)]);
        assert_eq!(plan.algorithm, Algorithm::Tbpa);
        assert!(plan.rationale.contains("imbalance"));
    }

    #[test]
    fn non_reducible_scoring_falls_back_to_corner_bound() {
        let symmetric = Planner::default().plan(false, &[stats(100, 0.0), stats(100, 0.0)]);
        assert_eq!(symmetric.algorithm, Algorithm::Cbrr);
        let skewed = Planner::default().plan(false, &[stats(100, 2.0), stats(100, 0.0)]);
        assert_eq!(skewed.algorithm, Algorithm::Cbpa);
    }

    #[test]
    fn symmetric_stats_keep_the_first_relation_driving() {
        let planner = Planner::default();
        assert_eq!(planner.choose_driving(&[]), 0);
        assert_eq!(planner.choose_driving(&[stats(100, 0.0)]), 0);
        assert_eq!(
            planner.choose_driving(&[stats(100, 0.0), stats(100, 0.0), stats(100, 0.0)]),
            0,
            "ties resolve to the lowest index"
        );
    }

    #[test]
    fn skewed_stats_flip_the_driving_choice() {
        let planner = Planner::default();
        // Equal cardinalities, but relation 0's scores are heavily skewed:
        // it benefits from staying non-driving (potential-adaptive reads it
        // shallowly), so the uniform relation 1 drives instead of "first".
        let flipped = planner.choose_driving(&[stats(100, 2.0), stats(100, 0.0)]);
        assert_eq!(flipped, 1, "skew on the first relation flips the choice");
        // The same stats with the skew moved keep relation 0 driving.
        assert_eq!(
            planner.choose_driving(&[stats(100, 0.0), stats(100, 2.0)]),
            0
        );
        // Cardinality dominates when skews agree: drive the big relation so
        // its cost leaves the non-driving sum.
        assert_eq!(
            planner.choose_driving(&[stats(50, 0.0), stats(1000, 0.0), stats(60, 0.0)]),
            1
        );
    }

    #[test]
    fn large_relations_enable_dominance_test() {
        let plan = Planner::default().plan(true, &[stats(10_000, 0.0), stats(9_000, 0.0)]);
        assert_eq!(plan.algorithm, Algorithm::Tbrr);
        assert_eq!(plan.dominance_period, Some(50));
        assert!(plan.rationale.contains("every 50 accesses"));
    }
}
