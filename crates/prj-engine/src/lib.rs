//! # prj-engine — a concurrent query-serving subsystem over ProxRJ
//!
//! The other `prj-*` crates reproduce the *Proximity Rank Join* operator
//! (Martinenghi & Tagliasacchi, PVLDB 2010) as a single-shot library call:
//! build a [`prj_core::Problem`], run an [`prj_core::Algorithm`], get a
//! top-K. This crate adds the execution layer that turns that operator into
//! a multi-query serving engine.
//!
//! **The entry point is [`Session`]**: it speaks the versioned `prj-api`
//! request/response protocol ([`prj_api::Request`] in,
//! [`prj_api::Response`] out), owns the client-facing defaults (scoring,
//! `k`, access kind), and routes to the layers below:
//!
//! * [`catalog`] — *mutable, sharded* relations behind per-shard epoch
//!   counters: registration partitions each relation under the catalog's
//!   [`sharding::ShardingPolicy`] (hash-by-grid-cell; 1 shard = unsharded)
//!   and builds every shard's R-tree, score-sorted array and
//!   [`prj_access::RelationStats`] once, shared behind
//!   [`std::sync::Arc`]s; appends rebuild only the touched shards
//!   copy-on-write (an O(n/S) publish) and bump their epochs; drops retire
//!   the id forever.
//! * [`registry`] — the open set of scoring functions: families are
//!   registered at runtime as factories producing
//!   [`prj_core::ScoringSpec`] trait objects, whose cache fingerprint is
//!   part of the trait — so anything servable is cache-safe by
//!   construction.
//! * [`planner`] — per execution unit, chooses among the paper's four
//!   instantiations (CBRR/CBPA/TBRR/TBPA) and decides whether to enable
//!   the LP dominance test, using the unit's (per-shard) relation
//!   statistics.
//! * [`engine`] — the execution façade: a fixed worker pool
//!   ([`executor`]), batched and streaming queries
//!   ([`Engine::stream`] exposes the paper's incremental pulling model
//!   with backpressure), partitioned execution fanned over the driving
//!   relation's shards and recombined by `prj_core`'s bound-aware merges
//!   (shard count is unobservable through results), and epoch-consistent
//!   cache keying.
//! * [`cache`] — an LRU result cache keyed by (relations *with their
//!   per-shard epoch vectors*, query point bits, `k`, scoring fingerprint,
//!   algorithm): a mutation changes the key, so a stale memoised result
//!   can never be served, and
//!   [`cache::ResultCache::invalidate_relation`] reclaims the orphaned
//!   entries eagerly.
//! * [`server`] — a minimal line-delimited TCP front-end forwarding wire
//!   requests to any [`server::RequestHandler`] — a shared [`Session`], or
//!   `prj-cluster`'s coordinator/worker handlers (the `prj-serve` binary
//!   lives there and serves all three roles).
//! * [`stats`] — engine-wide aggregation of the operator's metrics.
//! * [`obs`] — observability: per-query span traces (recorded into a
//!   lock-light ring, stitched across processes for distributed queries)
//!   and the metric series behind the `prj/2` `metrics` verb and the
//!   `--metrics-addr` Prometheus-style exposition.
//!
//! ## Example
//!
//! ```
//! use prj_engine::{EngineBuilder, Session};
//! use prj_api::{QueryRequest, Request, Response, TupleData};
//! use std::sync::Arc;
//!
//! // A session over a fresh engine; relations arrive through the API.
//! let engine = Arc::new(EngineBuilder::default().threads(2).build());
//! let session = Session::new(engine);
//! for (name, rows) in [
//!     ("R1", vec![([0.0, -0.5], 0.5), ([0.0, 1.0], 1.0)]),
//!     ("R2", vec![([1.0, 1.0], 1.0), ([-2.0, 2.0], 0.8)]),
//!     ("R3", vec![([-1.0, 1.0], 1.0), ([-2.0, -2.0], 0.4)]),
//! ] {
//!     session.handle(Request::RegisterRelation {
//!         name: name.to_string(),
//!         tuples: rows.into_iter().map(|(x, s)| TupleData::new(x.to_vec(), s)).collect(),
//!     });
//! }
//!
//! // The paper's Example 3.1, served by relation name.
//! let request = Request::TopK(
//!     QueryRequest::new(vec!["R1".into(), "R2".into(), "R3".into()], [0.0, 0.0]).k(1),
//! );
//! match session.handle(request) {
//!     Response::Results { rows, .. } => {
//!         assert!((rows[0].score - (-7.0)).abs() < 0.05);
//!     }
//!     other => panic!("unexpected response: {other:?}"),
//! }
//! ```
//!
//! The lower-level [`Engine`] API ([`QuerySpec`], [`QueryTicket`],
//! [`ResultStream`]) remains available for embedders that want to skip the
//! protocol layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod compactor;
pub mod engine;
pub mod executor;
pub mod obs;
pub mod planner;
pub mod registry;
pub mod server;
pub mod session;
pub mod sharding;
pub mod stats;

pub use cache::{CacheKey, CacheMetrics, CachedExecution, ResultCache, UnitCache, UnitKey};
pub use catalog::{
    Catalog, CatalogError, CatalogRelation, MutationOutcome, RelationId, RelationShard,
};
pub use compactor::Compactor;
pub use engine::{
    AnalyzeData, Engine, EngineBuilder, EngineError, EngineResult, ExplainData, MutationEvent,
    MutationKind, MutationObserver, QuerySpec, QueryTicket, RelationPlanData, RemoteUnitBackend,
    RemoteUnitCall, ResultStream, UnitPlanData, UnitProfileData, ANALYZE_CONVERGENCE_EVERY,
};
pub use executor::Executor;
pub use obs::{EngineObs, QueryTrace};
pub use planner::{Plan, Planner, PlannerConfig};
pub use registry::{ScoringFactory, ScoringRegistry};
pub use server::{RequestHandler, Server};
pub use session::{to_row, Dispatch, Session, SessionBuilder, SessionStream};
pub use sharding::ShardingPolicy;
pub use stats::{EngineStats, EngineStatsSnapshot, QueryRecord, ShardLane, UnitRecord};
