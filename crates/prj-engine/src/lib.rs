//! # prj-engine — a concurrent query-serving subsystem over ProxRJ
//!
//! The other `prj-*` crates reproduce the *Proximity Rank Join* operator
//! (Martinenghi & Tagliasacchi, PVLDB 2010) as a single-shot library call:
//! build a [`prj_core::Problem`], run an [`prj_core::Algorithm`], get a
//! top-K. This crate adds the execution layer that turns that operator into
//! a multi-query serving engine:
//!
//! * [`catalog`] — relations are registered **once**; their R-tree, their
//!   score-sorted array and their [`prj_access::RelationStats`] are built at
//!   registration time and shared behind [`std::sync::Arc`]s, so creating a
//!   per-query sorted-access view is O(1) and thousands of concurrent
//!   queries read one copy of the data.
//! * [`planner`] — per query, chooses among the paper's four instantiations
//!   (CBRR/CBPA/TBRR/TBPA) and decides whether to enable the LP dominance
//!   test, using the relation statistics: the tight bound whenever the
//!   scoring admits the Euclidean reduction, potential-adaptive pulling under
//!   cardinality imbalance or score skew, dominance testing for deep runs.
//! * [`executor`] — a fixed pool of worker threads (std threads + channels,
//!   no external runtime) running batches of queries in parallel;
//!   [`engine::Engine::stream`] exposes the paper's incremental pulling model
//!   as a streaming [`engine::ResultStream::next_result`] API with
//!   backpressure, backed by [`prj_core::StreamingRun`].
//! * [`cache`] — an LRU result cache keyed by (relations, query point bits,
//!   `k`, scoring parameters, algorithm), with hit/miss/eviction metrics;
//!   ProxRJ runs are pure, so memoised results are byte-identical to cold
//!   ones.
//! * [`stats`] — engine-wide aggregation of the operator's metrics (depths,
//!   bound evaluations, latency percentiles) on top of
//!   [`prj_access::AccessStats`].
//!
//! ## Example
//!
//! ```
//! use prj_engine::{Engine, EngineBuilder, QuerySpec};
//! use prj_access::{Tuple, TupleId};
//! use prj_geometry::Vector;
//!
//! // The paper's Table 1 relations, registered once.
//! let mk = |rel: usize, rows: &[([f64; 2], f64)]| -> Vec<Tuple> {
//!     rows.iter()
//!         .enumerate()
//!         .map(|(i, (x, s))| Tuple::new(TupleId::new(rel, i), Vector::from(*x), *s))
//!         .collect()
//! };
//! let engine: Engine = EngineBuilder::default().threads(2).build();
//! let r1 = engine.register("R1", mk(0, &[([0.0, -0.5], 0.5), ([0.0, 1.0], 1.0)]));
//! let r2 = engine.register("R2", mk(1, &[([1.0, 1.0], 1.0), ([-2.0, 2.0], 0.8)]));
//! let r3 = engine.register("R3", mk(2, &[([-1.0, 1.0], 1.0), ([-2.0, -2.0], 0.4)]));
//!
//! // Serve queries concurrently; identical queries hit the result cache.
//! let spec = QuerySpec::top_k(vec![r1, r2, r3], Vector::from([0.0, 0.0]), 1);
//! let cold = engine.query(spec.clone()).unwrap();
//! let warm = engine.query(spec).unwrap();
//! assert!((cold.combinations()[0].score - (-7.0)).abs() < 0.05); // Example 3.1
//! assert!(!cold.from_cache);
//! assert!(warm.from_cache);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod engine;
pub mod executor;
pub mod planner;
pub mod stats;

pub use cache::{CacheKey, CacheMetrics, CachedExecution, ResultCache};
pub use catalog::{Catalog, CatalogRelation, RelationId};
pub use engine::{
    CacheFingerprint, Engine, EngineBuilder, EngineError, EngineResult, QuerySpec, QueryTicket,
    ResultStream,
};
pub use executor::Executor;
pub use planner::{Plan, Planner, PlannerConfig};
pub use stats::{EngineStats, EngineStatsSnapshot, QueryRecord};
