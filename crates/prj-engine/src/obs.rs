//! Engine observability: the pre-registered metric handles and the span
//! recorder every query path reports into.
//!
//! The engine instruments itself against `prj-obs` primitives: one
//! [`Recorder`] ring per engine (capacity set by
//! [`EngineBuilder::trace_capacity`](crate::EngineBuilder::trace_capacity),
//! 0 disables tracing entirely) and one [`MetricsRegistry`] whose hot-path
//! handles are resolved **once** at engine build time — recording a query
//! is a handful of atomic RMWs, never a registry lookup.
//!
//! ## Metric names
//!
//! | series | kind | meaning |
//! |---|---|---|
//! | `prj_queries_total` | counter | queries served (cold + cached) |
//! | `prj_cache_hits_total` | counter | queries answered from the result cache |
//! | `prj_cache_misses_total` | counter | queries that executed the operator |
//! | `prj_query_latency_seconds` | histogram | end-to-end query latency |
//! | `prj_unit_latency_seconds` | histogram | per-execution-unit latency |
//! | `prj_sum_depths_total` | counter | sorted accesses (the paper's `sumDepths`) |
//! | `prj_bound_updates_total` | counter | `updateBound` evaluations |
//! | `prj_relation_depth_total{relation="rN"}` | counter | accesses into relation `N` |
//! | `prj_compactions_total` | counter | shard deltas folded into their base |
//! | `prj_delta_tuples` | gauge | tuples currently waiting in shard deltas |
//!
//! The cluster layer adds `prj_failovers_total` and
//! `prj_remote_units_total` through the same registry. The subscription
//! layer (`prj-sub`) adds `prj_subscriptions_active` (gauge),
//! `prj_subscription_notifications_total`,
//! `prj_subscription_reexecuted_units_total`, and
//! `prj_subscription_suppressed_total` (counters).
//!
//! ## Trace anatomy
//!
//! One query = one [`TraceId`]. The engine emits a root `query` span (a
//! *child* span when the request carried a [`QueryTrace`] from an upstream
//! coordinator), a `plan` span covering unit preparation, one `unit` span
//! per driving-shard execution unit (annotated `shard`, `remote`, `cache`),
//! and a `merge` span when several units recombine. Workers executing
//! remote units ship their `execute_unit`/`run` spans back over the wire;
//! the coordinator stitches them under the dispatching `unit` span via
//! [`Recorder::import`].

use crate::stats::QueryRecord;
use prj_api::{MetricKind, MetricSample, SpanRecord};
use prj_obs::metrics::SampleKind;
use prj_obs::trace::RemoteSpan;
use prj_obs::{
    Counter, Gauge, Histogram, MetricsRegistry, Recorder, RetentionPolicy, Sample, SpanId,
    TraceClass, TraceId, TraceStore,
};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

/// The trace identity a query executes under: the cluster-wide trace id
/// plus the span the query's root span should attach to (None for a root
/// query, `Some` when an upstream coordinator dispatched it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTrace {
    /// The trace every span of this query joins.
    pub trace: TraceId,
    /// The upstream span to parent the query's root span under.
    pub parent: Option<SpanId>,
}

/// One finished query handed to the background trace drain: the spans are
/// looked up (and the retention decision made) *off* the query path.
#[derive(Debug)]
struct TraceEvent {
    trace: TraceId,
    class: TraceClass,
    latency: Duration,
}

/// Shared bookkeeping between trace producers and the drain thread, so
/// [`EngineObs::flush_traces`] can wait for the queue to empty.
#[derive(Debug, Default)]
struct DrainState {
    pending: Mutex<usize>,
    idle: Condvar,
}

/// The sending half of the trace drain. The `Sender` sits behind a mutex
/// because query completions arrive from many threads; the lock is
/// per-completion, never on a hot loop.
#[derive(Debug)]
struct TraceDrain {
    sender: Mutex<mpsc::Sender<TraceEvent>>,
    state: Arc<DrainState>,
}

/// The engine's observability bundle: recorder, registry, and the metric
/// handles the query paths update.
#[derive(Debug)]
pub struct EngineObs {
    recorder: Arc<Recorder>,
    registry: Arc<MetricsRegistry>,
    queries_total: Arc<Counter>,
    cache_hits_total: Arc<Counter>,
    cache_misses_total: Arc<Counter>,
    sum_depths_total: Arc<Counter>,
    bound_updates_total: Arc<Counter>,
    query_latency: Arc<Histogram>,
    unit_latency: Arc<Histogram>,
    compactions_total: Arc<Counter>,
    delta_tuples: Arc<Gauge>,
    slow_threshold: Option<Duration>,
    trace_store: Arc<TraceStore>,
    drain: Option<TraceDrain>,
}

impl EngineObs {
    /// An observability bundle whose recorder retains `trace_capacity`
    /// spans (0 = tracing disabled) and whose slow-query log fires for
    /// queries slower than `slow_threshold`.
    pub fn new(trace_capacity: usize, slow_threshold: Option<Duration>) -> EngineObs {
        let registry = Arc::new(MetricsRegistry::new());
        let recorder = Arc::new(Recorder::new(trace_capacity));
        // Tail-sampled retention rides on tracing: with the recorder off
        // there are no spans to retain, so the store is disabled too.
        let trace_store = Arc::new(TraceStore::new(if trace_capacity > 0 {
            RetentionPolicy::default()
        } else {
            RetentionPolicy {
                capacity: 0,
                ok_sample_per_mille: 0,
            }
        }));
        let drain = (trace_capacity > 0).then(|| {
            let (sender, receiver) = mpsc::channel::<TraceEvent>();
            let state = Arc::new(DrainState::default());
            let thread_recorder = Arc::clone(&recorder);
            let thread_store = Arc::clone(&trace_store);
            let thread_state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("prj-trace-drain".to_string())
                .spawn(move || {
                    while let Ok(event) = receiver.recv() {
                        drain_trace(&thread_recorder, &thread_store, slow_threshold, event);
                        let mut pending = thread_state.pending.lock().expect("trace drain state");
                        *pending -= 1;
                        if *pending == 0 {
                            thread_state.idle.notify_all();
                        }
                    }
                })
                .expect("spawn prj-trace-drain");
            TraceDrain {
                sender: Mutex::new(sender),
                state,
            }
        });
        EngineObs {
            queries_total: registry.counter("prj_queries_total", &[]),
            cache_hits_total: registry.counter("prj_cache_hits_total", &[]),
            cache_misses_total: registry.counter("prj_cache_misses_total", &[]),
            sum_depths_total: registry.counter("prj_sum_depths_total", &[]),
            bound_updates_total: registry.counter("prj_bound_updates_total", &[]),
            query_latency: registry.histogram("prj_query_latency_seconds", &[]),
            unit_latency: registry.histogram("prj_unit_latency_seconds", &[]),
            compactions_total: registry.counter("prj_compactions_total", &[]),
            delta_tuples: registry.gauge("prj_delta_tuples", &[]),
            registry,
            recorder,
            slow_threshold,
            trace_store,
            drain,
        }
    }

    /// The `prj_compactions_total` counter (folded shard deltas), updated
    /// by the engine's background compactor.
    pub fn compactions_total(&self) -> Arc<Counter> {
        Arc::clone(&self.compactions_total)
    }

    /// The `prj_delta_tuples` gauge (tuples waiting in shard deltas).
    pub fn delta_tuples(&self) -> Arc<Gauge> {
        Arc::clone(&self.delta_tuples)
    }

    /// The span recorder (shared with every query's guards).
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// The metrics registry; layers above the engine (cluster, serve)
    /// register their own series here so one snapshot covers the process.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The configured slow-query threshold.
    pub fn slow_threshold(&self) -> Option<Duration> {
        self.slow_threshold
    }

    /// Folds one served query into the metric series. Pre-registered
    /// handles make the common path pure atomics; only the per-relation
    /// depth series (executed queries only) resolve through the registry.
    pub fn record_query(&self, record: &QueryRecord) {
        self.queries_total.inc();
        if record.from_cache {
            self.cache_hits_total.inc();
        } else {
            self.cache_misses_total.inc();
        }
        self.query_latency.record(record.latency);
        self.sum_depths_total.add(record.sum_depths as u64);
        self.bound_updates_total.add(record.bound_updates as u64);
        for unit in &record.units {
            self.unit_latency.record(unit.latency);
        }
        for (relation, depth) in &record.relation_depths {
            let label = format!("r{relation}");
            self.registry
                .counter("prj_relation_depth_total", &[("relation", &label)])
                .add(*depth);
        }
    }

    /// Observes one execution-unit latency (the worker-side entry point,
    /// where units arrive outside a whole-query record).
    pub fn observe_unit(&self, latency: Duration) {
        self.unit_latency.record(latency);
    }

    /// The tail-sampled trace store (the `FetchTrace`/`ListTraces`
    /// backing). Disabled (capacity 0) when tracing is off.
    pub fn trace_store(&self) -> &Arc<TraceStore> {
        &self.trace_store
    }

    /// Reports a successfully finished query to the background trace
    /// drain. Classification happens here (slow vs. ok, by the configured
    /// threshold); span collection, the retention decision, and the
    /// slow-query stderr dump all happen on the drain thread — nothing
    /// blocks the query path.
    pub fn query_finished(&self, trace: Option<TraceId>, latency: Duration) {
        let class = match self.slow_threshold {
            Some(threshold) if latency >= threshold => TraceClass::Slow,
            _ => TraceClass::Ok,
        };
        self.trace_event(trace, class, latency);
    }

    /// Hands one finished trace (with an explicit outcome class, e.g.
    /// [`TraceClass::Error`]) to the background drain.
    pub fn trace_event(&self, trace: Option<TraceId>, class: TraceClass, latency: Duration) {
        let (Some(drain), Some(trace)) = (self.drain.as_ref(), trace) else {
            return;
        };
        *drain.state.pending.lock().expect("trace drain state") += 1;
        let sent = drain
            .sender
            .lock()
            .expect("trace drain sender")
            .send(TraceEvent {
                trace,
                class,
                latency,
            })
            .is_ok();
        if !sent {
            // Drain thread gone (only possible during teardown): undo the
            // pending count so flush_traces never hangs.
            let mut pending = drain.state.pending.lock().expect("trace drain state");
            *pending -= 1;
            if *pending == 0 {
                drain.state.idle.notify_all();
            }
        }
    }

    /// Blocks until the background drain has processed every event sent so
    /// far. Trace reads (`FetchTrace`/`ListTraces`) call this so a query
    /// finished before the read is guaranteed visible in the store.
    pub fn flush_traces(&self) {
        let Some(drain) = self.drain.as_ref() else {
            return;
        };
        let mut pending = drain.state.pending.lock().expect("trace drain state");
        while *pending > 0 {
            pending = drain.state.idle.wait(pending).expect("trace drain state");
        }
    }
}

/// One drain-thread step: collect the trace's spans, upgrade the class to
/// `failover` when the trace contains a failover event span (the outcome
/// the query path can't see), emit the slow-query stderr dump, and offer
/// the trace to the tail-sampled store.
fn drain_trace(
    recorder: &Recorder,
    store: &TraceStore,
    slow_threshold: Option<Duration>,
    event: TraceEvent,
) {
    let spans = recorder.trace(event.trace);
    let class = if matches!(event.class, TraceClass::Ok | TraceClass::Slow)
        && spans.iter().any(|s| s.name == "failover")
    {
        TraceClass::Failover
    } else {
        event.class
    };
    if let Some(threshold) = slow_threshold {
        if event.latency >= threshold {
            let trace = event.trace;
            let mut out = format!(
                "slow-query trace={trace} latency_us={} threshold_us={} spans={}\n",
                event.latency.as_micros(),
                threshold.as_micros(),
                spans.len(),
            );
            for span in &spans {
                out.push_str("  ");
                out.push_str(&span.to_line());
                out.push('\n');
            }
            eprint!("{out}");
        }
    }
    store.offer(class, event.trace, spans);
}

impl Default for EngineObs {
    /// The engine default: a 4096-span ring, no slow-query log.
    fn default() -> Self {
        EngineObs::new(4096, None)
    }
}

/// Converts registry samples into their `prj-api` wire shape.
pub fn to_api_samples(samples: &[Sample]) -> Vec<MetricSample> {
    samples
        .iter()
        .map(|s| MetricSample {
            name: s.name.clone(),
            labels: s.labels.clone(),
            kind: match s.kind {
                SampleKind::Counter => MetricKind::Counter,
                SampleKind::Gauge => MetricKind::Gauge,
                SampleKind::Histogram => MetricKind::Histogram,
            },
            value: s.value,
        })
        .collect()
}

/// Converts wire samples back into registry samples (what a coordinator
/// does with a worker's report before rendering a cluster-wide exposition).
pub fn from_api_samples(samples: &[MetricSample]) -> Vec<Sample> {
    samples
        .iter()
        .map(|s| Sample {
            name: s.name.clone(),
            labels: s.labels.clone(),
            kind: match s.kind {
                MetricKind::Counter => SampleKind::Counter,
                MetricKind::Gauge => SampleKind::Gauge,
                MetricKind::Histogram => SampleKind::Histogram,
            },
            value: s.value,
        })
        .collect()
}

/// Converts recorder spans into their wire records. `parent` 0 encodes
/// "no parent"; attributes don't travel — the wire span shape is identity
/// plus timing.
pub fn to_api_spans(spans: &[prj_obs::Span]) -> Vec<SpanRecord> {
    spans
        .iter()
        .map(|s| SpanRecord {
            name: s.name.clone(),
            id: s.id.as_u64(),
            parent: s.parent.map_or(0, |p| p.as_u64()),
            start_micros: s.start_micros,
            duration_micros: s.duration_micros,
        })
        .collect()
}

/// Converts wire span records into the recorder's import shape (`parent` 0
/// on the wire means "batch root").
pub fn to_remote_spans(spans: &[SpanRecord]) -> Vec<RemoteSpan> {
    spans
        .iter()
        .map(|s| RemoteSpan {
            name: s.name.clone(),
            id: s.id,
            parent: (s.parent != 0).then_some(s.parent),
            start_micros: s.start_micros,
            duration_micros: s.duration_micros,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::UnitRecord;

    #[test]
    fn record_query_updates_every_series() {
        let obs = EngineObs::new(16, None);
        obs.record_query(&QueryRecord {
            latency: Duration::from_micros(500),
            sum_depths: 12,
            bound_updates: 13,
            from_cache: false,
            units: vec![UnitRecord {
                shard: 0,
                sum_depths: 12,
                latency: Duration::from_micros(400),
            }],
            relation_depths: vec![(0, 7), (3, 5)],
        });
        obs.record_query(&QueryRecord {
            latency: Duration::from_micros(20),
            from_cache: true,
            ..QueryRecord::default()
        });
        let samples = obs.registry().snapshot();
        let value = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name && !s.labels.iter().any(|(k, _)| k == "le"))
                .map(|s| s.value)
                .unwrap_or_else(|| panic!("missing series {name}"))
        };
        assert_eq!(value("prj_queries_total"), 2.0);
        assert_eq!(value("prj_cache_hits_total"), 1.0);
        assert_eq!(value("prj_cache_misses_total"), 1.0);
        assert_eq!(value("prj_sum_depths_total"), 12.0);
        assert_eq!(value("prj_bound_updates_total"), 13.0);
        assert_eq!(value("prj_query_latency_seconds_count"), 2.0);
        assert_eq!(value("prj_unit_latency_seconds_count"), 1.0);
        let r3 = samples
            .iter()
            .find(|s| {
                s.name == "prj_relation_depth_total"
                    && s.labels == vec![("relation".to_string(), "r3".to_string())]
            })
            .expect("relation series");
        assert_eq!(r3.value, 5.0);
    }

    #[test]
    fn sample_conversions_round_trip() {
        let obs = EngineObs::new(0, None);
        obs.record_query(&QueryRecord::default());
        let native = obs.registry().snapshot();
        let api = to_api_samples(&native);
        assert_eq!(from_api_samples(&api), native);
    }

    #[test]
    fn wire_spans_convert_to_import_shape() {
        let spans = vec![
            SpanRecord {
                name: "execute_unit".to_string(),
                id: 4,
                parent: 0,
                start_micros: 100,
                duration_micros: 50,
            },
            SpanRecord {
                name: "run".to_string(),
                id: 5,
                parent: 4,
                start_micros: 110,
                duration_micros: 30,
            },
        ];
        let remote = to_remote_spans(&spans);
        assert_eq!(remote[0].parent, None, "wire parent 0 is the batch root");
        assert_eq!(remote[1].parent, Some(4));
        assert_eq!(remote[1].name, "run");
    }
}
