//! The relation catalog: register once, share everywhere.
//!
//! A serving engine cannot afford to bulk-load an R-tree per query the way
//! the one-shot [`prj_core::ProblemBuilder`] does. The [`Catalog`] therefore
//! builds each relation's access structures exactly once at registration
//! time —
//!
//! * an R-tree over the tuples for distance-based access,
//! * a score-sorted tuple array for score-based access,
//! * [`RelationStats`] for the planner —
//!
//! and hands them out behind [`Arc`]s. Creating a per-query [`SortedAccess`]
//! view ([`CatalogRelation::distance_view`] / [`CatalogRelation::score_view`])
//! is O(1) in the relation size, so thousands of concurrent queries share one
//! copy of the data without locks on the read path.

use prj_access::{
    RelationStats, SharedRTreeRelation, SharedScoreRelation, SortedAccess, Tuple, TupleId,
    VecRelation,
};
use prj_core::ScoringFunction;
use prj_geometry::Vector;
use prj_index::RTree;
use std::sync::{Arc, RwLock};

/// Identifier of a registered relation, returned by [`Catalog::register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub(crate) usize);

impl RelationId {
    /// The raw index of the relation in registration order.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// One registered relation: the raw tuples plus the shared, immutable access
/// structures built from them.
#[derive(Debug)]
pub struct CatalogRelation {
    name: Arc<str>,
    tuples: Arc<Vec<Tuple>>,
    /// R-tree over the tuples (distance-based access path).
    rtree: Arc<RTree<(TupleId, f64)>>,
    /// Tuples in non-increasing score order (score-based access path).
    score_sorted: Arc<Vec<Tuple>>,
    stats: RelationStats,
}

impl CatalogRelation {
    fn build(name: &str, tuples: Vec<Tuple>) -> Self {
        let stats = RelationStats::from_tuples(&tuples);
        let dim = stats.dimensions.max(1);
        let items: Vec<(Vector, (TupleId, f64))> = tuples
            .iter()
            .map(|t| (t.vector.clone(), (t.id, t.score)))
            .collect();
        let rtree = Arc::new(RTree::bulk_load(dim, items));
        // Reuse VecRelation's ordering (score desc, ties by id) so catalog
        // views are indistinguishable from single-query sources.
        let score_sorted = Arc::new(
            VecRelation::score_sorted(name.to_string(), tuples.clone())
                .sorted_tuples()
                .to_vec(),
        );
        CatalogRelation {
            name: Arc::from(name),
            tuples: Arc::new(tuples),
            rtree,
            score_sorted,
            stats,
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registered tuples, in registration order.
    pub fn tuples(&self) -> &Arc<Vec<Tuple>> {
        &self.tuples
    }

    /// The shared R-tree.
    pub fn rtree(&self) -> &Arc<RTree<(TupleId, f64)>> {
        &self.rtree
    }

    /// Data statistics computed at registration time.
    pub fn stats(&self) -> RelationStats {
        self.stats
    }

    /// An O(1) distance-based sorted-access view for `query`, walking the
    /// shared R-tree (Euclidean frontier).
    pub fn distance_view(&self, query: Vector) -> Box<dyn SortedAccess> {
        Box::new(SharedRTreeRelation::new(
            Arc::clone(&self.name),
            Arc::clone(&self.rtree),
            query,
            self.stats.max_score,
        ))
    }

    /// An O(1) score-based sorted-access view (query-independent).
    pub fn score_view(&self) -> Box<dyn SortedAccess> {
        Box::new(SharedScoreRelation::new(
            Arc::clone(&self.name),
            Arc::clone(&self.score_sorted),
            self.stats.max_score,
        ))
    }

    /// A distance-based view sorted under the *scoring function's own*
    /// distance `δ` — the fallback for non-Euclidean scorings, where the
    /// R-tree's Euclidean frontier would disagree with the proximity terms.
    /// O(n log n) per query (the tuples are re-sorted), used only when the
    /// planner has no shared structure that matches `δ`.
    pub fn distance_view_by<S: ScoringFunction>(
        &self,
        scoring: &S,
        query: &Vector,
    ) -> Box<dyn SortedAccess> {
        let q = query.clone();
        let rel = VecRelation::distance_sorted_by(
            self.name.to_string(),
            self.tuples.as_ref().clone(),
            move |t| scoring.distance(&t.vector, &q),
        )
        .with_max_score(self.stats.max_score);
        Box::new(rel)
    }
}

/// A concurrent registry of relations.
///
/// Registration takes a write lock; queries only ever take the read lock for
/// the instant it takes to clone the relevant [`Arc`]s.
#[derive(Debug, Default)]
pub struct Catalog {
    relations: RwLock<Vec<Arc<CatalogRelation>>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a relation, building its shared access structures, and
    /// returns its id. Tuple ids should be tagged with the relation's
    /// registration index for readable results (the engine does not rewrite
    /// them).
    pub fn register(&self, name: impl AsRef<str>, tuples: Vec<Tuple>) -> RelationId {
        let relation = Arc::new(CatalogRelation::build(name.as_ref(), tuples));
        let mut relations = self.relations.write().expect("catalog lock");
        relations.push(relation);
        RelationId(relations.len() - 1)
    }

    /// The relation registered under `id`.
    ///
    /// # Panics
    /// Panics if `id` does not come from this catalog.
    pub fn relation(&self, id: RelationId) -> Arc<CatalogRelation> {
        Arc::clone(&self.relations.read().expect("catalog lock")[id.0])
    }

    /// Snapshots the relations registered under `ids`, in order.
    pub fn snapshot(&self, ids: &[RelationId]) -> Vec<Arc<CatalogRelation>> {
        let relations = self.relations.read().expect("catalog lock");
        ids.iter().map(|id| Arc::clone(&relations[id.0])).collect()
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.relations.read().expect("catalog lock").len()
    }

    /// `true` when no relation has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ids of all registered relations, in registration order.
    pub fn all_ids(&self) -> Vec<RelationId> {
        (0..self.len()).map(RelationId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prj_access::AccessKind;

    fn mk_tuples(rel: usize, n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                let x = ((i * 37) % 100) as f64 / 10.0 - 5.0;
                let y = ((i * 53) % 100) as f64 / 10.0 - 5.0;
                Tuple::new(
                    TupleId::new(rel, i),
                    Vector::from([x, y]),
                    (i % 10) as f64 / 10.0 + 0.05,
                )
            })
            .collect()
    }

    #[test]
    fn register_and_snapshot() {
        let catalog = Catalog::new();
        let a = catalog.register("hotels", mk_tuples(0, 20));
        let b = catalog.register("restaurants", mk_tuples(1, 30));
        assert_eq!(catalog.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        let snap = catalog.snapshot(&[b, a]);
        assert_eq!(snap[0].name(), "restaurants");
        assert_eq!(snap[1].name(), "hotels");
        assert_eq!(snap[0].stats().cardinality, 30);
        assert_eq!(catalog.all_ids(), vec![a, b]);
    }

    #[test]
    fn views_share_rather_than_copy() {
        let catalog = Catalog::new();
        let id = catalog.register("r", mk_tuples(0, 40));
        let rel = catalog.relation(id);
        let v1 = rel.distance_view(Vector::from([0.0, 0.0]));
        let v2 = rel.distance_view(Vector::from([1.0, 1.0]));
        assert_eq!(v1.kind(), AccessKind::Distance);
        assert_eq!(v2.total_len(), Some(40));
        // Three users of the tree: the catalog entry and the two views.
        assert_eq!(Arc::strong_count(rel.rtree()), 3);
    }

    #[test]
    fn score_view_is_score_sorted() {
        let catalog = Catalog::new();
        let id = catalog.register("r", mk_tuples(0, 25));
        let mut view = catalog.relation(id).score_view();
        let mut previous = f64::INFINITY;
        let mut count = 0;
        while let Some(t) = view.next_tuple() {
            assert!(t.score <= previous);
            previous = t.score;
            count += 1;
        }
        assert_eq!(count, 25);
    }

    #[test]
    fn distance_view_orders_by_distance() {
        let catalog = Catalog::new();
        let id = catalog.register("r", mk_tuples(0, 35));
        let query = Vector::from([0.5, -0.5]);
        let mut view = catalog.relation(id).distance_view(query.clone());
        let mut previous = f64::NEG_INFINITY;
        while let Some(t) = view.next_tuple() {
            let d = t.distance_to(&query);
            assert!(d >= previous - 1e-12);
            previous = d;
        }
    }
}
