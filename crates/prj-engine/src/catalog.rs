//! The relation catalog: register once, share everywhere, mutate behind
//! per-shard epochs.
//!
//! A serving engine cannot afford to bulk-load an R-tree per query the way
//! the one-shot [`prj_core::ProblemBuilder`] does. The [`Catalog`] therefore
//! builds each relation's access structures at registration time and hands
//! them out behind [`Arc`]s. Creating a per-query [`SortedAccess`] view is
//! O(1) in the relation size, so thousands of concurrent queries share one
//! copy of the data without locks on the read path.
//!
//! ## Sharding
//!
//! Each relation is partitioned into `S` spatial shards by the catalog's
//! [`ShardingPolicy`] (hash-by-grid-cell; `S = 1` disables partitioning).
//! Every shard is a self-contained [`RelationShard`]: its own tuple slice,
//! R-tree, score-sorted array, [`RelationStats`] and **epoch** counter.
//! Shard-local views ([`CatalogRelation::shard_distance_view`], …) drive the
//! executor's partitioned runs; merged views
//! ([`CatalogRelation::distance_view`], …) recombine the shards into one
//! globally sorted access stream via [`prj_access::MergedAccess`], so
//! unsharded consumers observe exactly the Definition 2.1 contract.
//!
//! ## Mutation and epoch vectors
//!
//! Relations are *mutable*: [`Catalog::append`] adds tuples and
//! [`Catalog::drop_relation`] removes a relation. Mutations are
//! copy-on-write and **shard-local**: an append routes each new tuple to its
//! shard, clones only the touched shards' R-trees (an O(|relation|/S)
//! publish instead of O(|relation|)), extends them with the engine's
//! incremental insert, and bumps only those shards' epochs. In-flight
//! queries keep reading their old `Arc`s untouched. The engine keys its
//! result cache by each relation's **epoch vector**
//! ([`CatalogRelation::epochs`]), which is what makes a memoised
//! pre-mutation result structurally unservable afterwards — ingest on one
//! shard invalidates exactly the results that could have read that shard's
//! relation, and nothing needs carefully ordered invalidation calls.
//!
//! Mutations are serialised by a dedicated mutex (readers never touch it);
//! nothing that can panic runs under the slot lock, so a bad batch can
//! never poison it.
//!
//! ## Delta shards (the O(delta) ingest lane)
//!
//! With a non-zero delta limit ([`Catalog::with_policy_and_delta`]), appends
//! stop rebuilding shard structures altogether: the new tuples land in the
//! shard's [`DeltaBuffer`] — a small score-sorted side structure — and the
//! publish costs O(delta), not O(|shard|). Every read path merges base +
//! delta through the ordinary [`MergedAccess`] machinery (σ_max is the
//! fold-max over both parts, so bounds stay admissible and stops stay
//! certified), and a delta append bumps the touched shard's epoch exactly
//! like a rebuild append does, so caching, subscriptions and cluster
//! replication observe the two publish modes identically.
//!
//! [`Catalog::compact_shard`] — driven by the engine's background compactor
//! — folds a shard's delta into its base: the fold replays the delta in
//! arrival (id) order through the same incremental R-tree inserts the
//! rebuild path would have used, so the folded shard is physically
//! identical to the one immediate rebuilds would have produced. Compaction
//! is a pure physical reorganisation: it preserves the shard's **epoch**
//! (same logical data, so cached results and replicated epoch vectors stay
//! valid) and only bumps the shard's `compactions` counter. Appends that
//! race the fold are never lost: the publish step recomputes the residual
//! delta (live minus folded snapshot) under the mutation mutex.

use crate::sharding::ShardingPolicy;
use prj_access::{
    DeltaBuffer, MergeOrder, MergedAccess, RelationStats, SharedRTreeRelation, SharedScoreRelation,
    SortedAccess, Tuple, TupleId, VecRelation,
};
use prj_core::ScoringFunction;
use prj_geometry::Vector;
use prj_index::RTree;
use std::sync::{Arc, Mutex, RwLock};

/// Identifier of a registered relation, returned by [`Catalog::register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub(crate) usize);

impl RelationId {
    /// Rebuilds an id from a raw registration index — for callers (like a
    /// cluster worker) that receive indices over the wire. The index is
    /// *not* checked here; the catalog answers
    /// [`CatalogError::UnknownId`] on first use if it never existed.
    pub fn from_index(index: usize) -> RelationId {
        RelationId(index)
    }

    /// The raw index of the relation in registration order.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Catalog lookup / mutation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The id does not come from this catalog.
    UnknownId(usize),
    /// No live relation is registered under the name.
    UnknownName(String),
    /// The relation existed but has been dropped.
    Dropped(usize),
    /// Appended tuples do not match the relation's dimensionality.
    DimensionMismatch {
        /// The relation's dimensionality.
        expected: usize,
        /// The offending tuple's dimensionality.
        got: usize,
    },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::UnknownId(id) => write!(f, "no relation with id {id}"),
            CatalogError::UnknownName(name) => write!(f, "no relation named {name:?}"),
            CatalogError::Dropped(id) => write!(f, "relation {id} has been dropped"),
            CatalogError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "tuple dimension {got} does not match relation dimension {expected}"
                )
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// The result of a successful catalog mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationOutcome {
    /// The mutated relation.
    pub id: RelationId,
    /// The sum of the relation's per-shard epochs after the mutation
    /// (strictly greater than before; see [`CatalogRelation::epochs`] for
    /// the full vector).
    pub epoch: u64,
    /// Its cardinality after the mutation (0 for a drop).
    pub cardinality: usize,
    /// The shards the mutation landed on (every shard for a drop). This is
    /// what lets the engine's per-shard unit cache purge only the entries
    /// the mutation actually made unreachable.
    pub touched_shards: Vec<usize>,
}

/// One immutable shard of a relation: a disjoint slice of the tuples plus
/// the access structures built from them, stamped with the epoch it was
/// published at. The slice splits into an indexed **base** (tuple array,
/// R-tree, score-sorted array) and a small **delta** of freshly appended
/// tuples not yet folded into the base (always empty when the catalog's
/// delta limit is 0).
#[derive(Debug)]
pub struct RelationShard {
    /// The base tuples, in ingestion order.
    tuples: Arc<Vec<Tuple>>,
    /// R-tree over the base tuples (distance-based access path).
    rtree: Arc<RTree<(TupleId, f64)>>,
    /// The base tuples in non-increasing score order (score-based path).
    score_sorted: Arc<Vec<Tuple>>,
    /// Appended-but-not-yet-compacted tuples (the O(delta) ingest lane).
    delta: Arc<DeltaBuffer>,
    /// Statistics over the base tuples only.
    base_stats: RelationStats,
    /// Statistics over base + delta (what planning and σ_max read).
    stats: RelationStats,
    epoch: u64,
    /// Number of delta folds this shard has absorbed (observability only:
    /// compaction never changes the epoch or the visible data).
    compactions: u64,
}

impl RelationShard {
    fn build(tuples: Vec<Tuple>, epoch: u64) -> Self {
        let stats = RelationStats::from_tuples(&tuples);
        let dim = stats.dimensions.max(1);
        let items: Vec<(Vector, (TupleId, f64))> = tuples
            .iter()
            .map(|t| (t.vector.clone(), (t.id, t.score)))
            .collect();
        let rtree = Arc::new(RTree::bulk_load(dim, items));
        Self::assemble(tuples, rtree, stats, epoch)
    }

    fn assemble(
        tuples: Vec<Tuple>,
        rtree: Arc<RTree<(TupleId, f64)>>,
        stats: RelationStats,
        epoch: u64,
    ) -> Self {
        // Reuse VecRelation's ordering (score desc, ties by id) so catalog
        // views are indistinguishable from single-query sources.
        let score_sorted = Arc::new(
            VecRelation::score_sorted(String::new(), tuples.clone())
                .sorted_tuples()
                .to_vec(),
        );
        RelationShard {
            tuples: Arc::new(tuples),
            rtree,
            score_sorted,
            delta: Arc::new(DeltaBuffer::empty()),
            base_stats: stats,
            stats,
            epoch,
            compactions: 0,
        }
    }

    /// A new shard snapshot with `extra` appended at a bumped epoch. The
    /// R-tree is extended copy-on-write with the incremental insert path —
    /// no bulk re-load — so in-flight readers of the old shard are
    /// unaffected, and only this shard's structures are rebuilt.
    fn appended(&self, extra: Vec<Tuple>) -> RelationShard {
        debug_assert!(
            self.delta.is_empty(),
            "rebuild appends and delta appends must not mix on one shard"
        );
        let epoch = self.epoch + 1;
        if self.tuples.is_empty() {
            // The empty shard's R-tree was built with a placeholder
            // dimensionality; rebuild from scratch.
            return RelationShard::build(extra, epoch);
        }
        let mut tuples = self.tuples.as_ref().clone();
        let mut rtree = self.rtree.as_ref().clone();
        for t in &extra {
            rtree.insert(t.vector.clone(), (t.id, t.score));
        }
        tuples.extend(extra);
        let stats = RelationStats::from_tuples(&tuples);
        Self::assemble(tuples, Arc::new(rtree), stats, epoch)
    }

    /// A new shard snapshot with `extra` published into the delta at a
    /// bumped epoch — O(delta + extra), no index rebuild. The base
    /// structures are shared as-is; readers merge base + delta.
    fn delta_appended(&self, extra: Vec<Tuple>) -> RelationShard {
        let epoch = self.epoch + 1;
        let delta = self.delta.appended(extra);
        let stats = RelationStats::combine(&[self.base_stats, delta.stats()]);
        RelationShard {
            tuples: Arc::clone(&self.tuples),
            rtree: Arc::clone(&self.rtree),
            score_sorted: Arc::clone(&self.score_sorted),
            delta: Arc::new(delta),
            base_stats: self.base_stats,
            stats,
            epoch,
            compactions: self.compactions,
        }
    }

    /// The expensive half of a compaction, run **outside every lock**: a
    /// fresh base with this snapshot's delta folded in (and an empty
    /// delta). The delta is replayed in arrival (id) order through the same
    /// incremental inserts [`RelationShard::appended`] uses, so the folded
    /// structures are physically identical to the ones the immediate-
    /// rebuild path would have built from the same appends.
    fn folded_base(&self) -> RelationShard {
        let mut delta: Vec<Tuple> = self.delta.tuples().as_ref().clone();
        delta.sort_by_key(|t| t.id);
        if self.tuples.is_empty() {
            // Placeholder-dimensionality base: build for real.
            return RelationShard::build(delta, self.epoch);
        }
        let mut tuples = self.tuples.as_ref().clone();
        let mut rtree = self.rtree.as_ref().clone();
        rtree.extend(delta.iter().map(|t| (t.vector.clone(), (t.id, t.score))));
        tuples.extend(delta);
        let stats = RelationStats::from_tuples(&tuples);
        Self::assemble(tuples, Arc::new(rtree), stats, self.epoch)
    }

    /// The cheap publish half of a compaction: the folded base plus the
    /// residual delta (appends that raced the fold), at the **unchanged**
    /// live epoch — compaction is invisible to everything keyed by epochs.
    fn with_residual(
        base: &RelationShard,
        residual: DeltaBuffer,
        epoch: u64,
        compactions: u64,
    ) -> RelationShard {
        let stats = if residual.is_empty() {
            base.base_stats
        } else {
            RelationStats::combine(&[base.base_stats, residual.stats()])
        };
        RelationShard {
            tuples: Arc::clone(&base.tuples),
            rtree: Arc::clone(&base.rtree),
            score_sorted: Arc::clone(&base.score_sorted),
            delta: Arc::new(residual),
            base_stats: base.base_stats,
            stats,
            epoch,
            compactions,
        }
    }

    /// The epoch this shard snapshot was published at (0 at registration,
    /// +1 per append that touched this shard; unchanged by compaction).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shard's base tuples, in ingestion order (excludes the delta;
    /// see [`RelationShard::delta`]).
    pub fn tuples(&self) -> &Arc<Vec<Tuple>> {
        &self.tuples
    }

    /// The shard's shared R-tree (over the base tuples).
    pub fn rtree(&self) -> &Arc<RTree<(TupleId, f64)>> {
        &self.rtree
    }

    /// The shard's not-yet-compacted delta buffer (empty when the
    /// catalog's delta limit is 0).
    pub fn delta(&self) -> &DeltaBuffer {
        &self.delta
    }

    /// Number of tuples waiting in the delta.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Number of delta folds this shard has absorbed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Statistics of this shard's slice of the relation (base + delta).
    pub fn stats(&self) -> RelationStats {
        self.stats
    }
}

/// One immutable snapshot of a relation: its shards plus combined
/// statistics, published atomically in the catalog slot.
#[derive(Debug)]
pub struct CatalogRelation {
    name: Arc<str>,
    shards: Vec<Arc<RelationShard>>,
    /// Whole-relation statistics, combined from the shard statistics.
    stats: RelationStats,
}

impl CatalogRelation {
    fn build(name: &str, tuples: Vec<Tuple>, policy: &ShardingPolicy) -> Self {
        let shards: Vec<Arc<RelationShard>> = policy
            .partition(tuples, |t| &t.vector)
            .into_iter()
            .map(|bucket| Arc::new(RelationShard::build(bucket, 0)))
            .collect();
        Self::from_shards(Arc::from(name), shards)
    }

    fn from_shards(name: Arc<str>, shards: Vec<Arc<RelationShard>>) -> Self {
        let per_shard: Vec<RelationStats> = shards.iter().map(|s| s.stats).collect();
        let stats = RelationStats::combine(&per_shard);
        CatalogRelation {
            name,
            shards,
            stats,
        }
    }

    /// A new snapshot with `extra` appended: the touched shards get bumped
    /// epochs, untouched shards are shared as-is. With `delta_mode` the
    /// tuples are published into the touched shards' deltas (O(delta));
    /// otherwise the shards are rebuilt copy-on-write. Also returns the
    /// indices of the shards that were touched.
    fn appended(
        &self,
        extra: Vec<Tuple>,
        policy: &ShardingPolicy,
        delta_mode: bool,
    ) -> (CatalogRelation, Vec<usize>) {
        let mut shards = self.shards.clone();
        let mut touched = Vec::new();
        for (j, bucket) in policy
            .partition(extra, |t| &t.vector)
            .into_iter()
            .enumerate()
        {
            if !bucket.is_empty() {
                shards[j] = Arc::new(if delta_mode {
                    shards[j].delta_appended(bucket)
                } else {
                    shards[j].appended(bucket)
                });
                touched.push(j);
            }
        }
        (Self::from_shards(Arc::clone(&self.name), shards), touched)
    }

    /// A new snapshot with shard `j` swapped for `shard` (the compaction
    /// publish step); everything else is shared as-is.
    fn with_shard(&self, j: usize, shard: RelationShard) -> CatalogRelation {
        let mut shards = self.shards.clone();
        shards[j] = Arc::new(shard);
        Self::from_shards(Arc::clone(&self.name), shards)
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of shards (the catalog policy's shard count).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `j` of this snapshot.
    pub fn shard(&self, j: usize) -> &RelationShard {
        &self.shards[j]
    }

    /// The per-shard epoch vector. A mutation bumps exactly the entries of
    /// the shards it touched; the engine folds this vector into its cache
    /// keys, so any ingest makes pre-mutation entries unreachable.
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.epoch).collect()
    }

    /// The sum of the per-shard epochs — the scalar "version" reported on
    /// the API surface (0 at registration, +1 per single-shard append).
    pub fn epoch(&self) -> u64 {
        self.shards.iter().map(|s| s.epoch).sum()
    }

    /// Total number of tuples across all shards.
    pub fn cardinality(&self) -> usize {
        self.stats.cardinality
    }

    /// Every tuple of the relation — base then delta, concatenated shard by
    /// shard. O(n); used by the non-Euclidean fallback path and by tests —
    /// hot paths go through the shared per-shard structures instead.
    pub fn all_tuples(&self) -> Vec<Tuple> {
        let mut all = Vec::with_capacity(self.cardinality());
        for shard in &self.shards {
            all.extend(shard.tuples.iter().cloned());
            all.extend(shard.delta.tuples().iter().cloned());
        }
        all
    }

    /// Total number of tuples waiting in shard deltas (0 when the delta
    /// lane is off).
    pub fn delta_len(&self) -> usize {
        self.shards.iter().map(|s| s.delta.len()).sum()
    }

    /// Whole-relation statistics (combined over the shards).
    pub fn stats(&self) -> RelationStats {
        self.stats
    }

    /// An O(1) distance-based sorted-access view of **shard `j`**, walking
    /// that shard's R-tree (Euclidean frontier). Takes the query behind an
    /// `Arc` (or an owned [`Vector`], converted) so every view of one query
    /// shares a single allocation. A non-empty delta is merged in behind
    /// the same globally sorted contract: its tuples are distance-sorted
    /// per query (O(delta·log delta), delta is small by construction) and
    /// recombined with the tree frontier via [`MergedAccess`], whose σ_max
    /// is the fold-max over both parts — bounds stay admissible.
    pub fn shard_distance_view(
        &self,
        j: usize,
        query: impl Into<Arc<Vector>>,
    ) -> Box<dyn SortedAccess> {
        let shard = &self.shards[j];
        let query = query.into();
        let base = Box::new(SharedRTreeRelation::new(
            Arc::clone(&self.name),
            Arc::clone(&shard.rtree),
            Arc::clone(&query),
            shard.base_stats.max_score,
        ));
        if shard.delta.is_empty() {
            return base;
        }
        let delta = Box::new(VecRelation::distance_sorted(
            self.name.to_string(),
            query.as_ref(),
            shard.delta.tuples().as_ref().clone(),
        ));
        Box::new(self.merged(
            vec![base, delta],
            MergeOrder::AscendingBy(Box::new(move |t| t.distance_to(&query))),
        ))
    }

    /// An O(1) score-based sorted-access view of **shard `j`** (the delta's
    /// lane is already score-sorted, so merging it in costs nothing extra).
    pub fn shard_score_view(&self, j: usize) -> Box<dyn SortedAccess> {
        let shard = &self.shards[j];
        let base = Box::new(SharedScoreRelation::new(
            Arc::clone(&self.name),
            Arc::clone(&shard.score_sorted),
            shard.base_stats.max_score,
        ));
        if shard.delta.is_empty() {
            return base;
        }
        let delta = Box::new(SharedScoreRelation::new(
            Arc::clone(&self.name),
            Arc::clone(shard.delta.tuples()),
            shard.delta.max_score(),
        ));
        Box::new(self.merged(vec![base, delta], MergeOrder::DescendingScore))
    }

    /// A distance view of shard `j` sorted under the scoring function's own
    /// distance `δ` — the non-Euclidean fallback ( O(|shard| log |shard|) ).
    /// Base and delta are sorted together; the id tie-break makes the order
    /// independent of where a tuple currently lives.
    pub fn shard_distance_view_by<S: ScoringFunction>(
        &self,
        j: usize,
        scoring: &S,
        query: &Vector,
    ) -> Box<dyn SortedAccess> {
        let shard = &self.shards[j];
        let q = query.clone();
        let mut tuples = shard.tuples.as_ref().clone();
        tuples.extend(shard.delta.tuples().iter().cloned());
        let rel = VecRelation::distance_sorted_by(self.name.to_string(), tuples, move |t| {
            scoring.distance(&t.vector, &q)
        })
        .with_max_score(shard.stats.max_score);
        Box::new(rel)
    }

    /// A whole-relation distance-based view: the shards' Euclidean
    /// frontiers recombined into one globally sorted stream
    /// ([`MergedAccess`]; the wrapper is skipped for a single shard). O(S)
    /// to build.
    pub fn distance_view(&self, query: impl Into<Arc<Vector>>) -> Box<dyn SortedAccess> {
        let query = query.into();
        if self.shards.len() == 1 {
            return self.shard_distance_view(0, query);
        }
        let parts: Vec<Box<dyn SortedAccess>> = (0..self.shards.len())
            .map(|j| self.shard_distance_view(j, Arc::clone(&query)))
            .collect();
        Box::new(self.merged(
            parts,
            MergeOrder::AscendingBy(Box::new(move |t| t.distance_to(&query))),
        ))
    }

    /// A whole-relation score-based view (shards merged by score).
    pub fn score_view(&self) -> Box<dyn SortedAccess> {
        if self.shards.len() == 1 {
            return self.shard_score_view(0);
        }
        let parts: Vec<Box<dyn SortedAccess>> = (0..self.shards.len())
            .map(|j| self.shard_score_view(j))
            .collect();
        Box::new(self.merged(parts, MergeOrder::DescendingScore))
    }

    /// A whole-relation distance view under the scoring function's own `δ`
    /// — the fallback for non-Euclidean scorings, where the R-trees'
    /// Euclidean frontiers would disagree with the proximity terms. O(n log
    /// n) per query; the sort's id tie-break makes the order independent of
    /// the shard layout.
    pub fn distance_view_by<S: ScoringFunction>(
        &self,
        scoring: &S,
        query: &Vector,
    ) -> Box<dyn SortedAccess> {
        let q = query.clone();
        let rel = VecRelation::distance_sorted_by(self.name.to_string(), self.all_tuples(), {
            move |t| scoring.distance(&t.vector, &q)
        })
        .with_max_score(self.stats.max_score);
        Box::new(rel)
    }

    fn merged(&self, parts: Vec<Box<dyn SortedAccess>>, order: MergeOrder) -> MergedAccess {
        MergedAccess::new(self.name.to_string(), parts, order)
    }
}

/// One catalog slot. Ids are never reused: a dropped slot stays occupied so
/// later references fail with [`CatalogError::Dropped`] rather than
/// silently resolving to some other relation. A `Reserved` slot holds an id
/// whose relation is still being built outside the lock; it reads as
/// unknown until the registration publishes.
#[derive(Debug)]
enum Slot {
    Live(Arc<CatalogRelation>),
    Reserved,
    Dropped,
}

/// A concurrent registry of mutable, sharded relations.
///
/// Queries only ever take the read lock for the instant it takes to clone
/// the relevant [`Arc`]s — and the write lock is held just as briefly:
/// index building (bulk load on registration, copy-on-write shard extension
/// on append) happens *outside* any lock, and only the final slot swap is
/// locked. Appends use optimistic concurrency: the new snapshot is built
/// from the current one and published only if the base is unchanged,
/// retrying otherwise, so no append is ever lost. Nothing that can panic
/// runs under the lock, so a bad batch can never poison it.
#[derive(Debug, Default)]
pub struct Catalog {
    slots: RwLock<Vec<Slot>>,
    /// Serialises appends/drops so that an append's copy-on-write rebuild
    /// is never raced by another mutation and then thrown away in the
    /// optimistic-retry loop. Readers never touch this lock.
    mutations: Mutex<()>,
    policy: ShardingPolicy,
    /// Delta-lane size threshold: 0 turns the lane off (appends rebuild
    /// shards immediately); N > 0 routes appends into shard deltas, with
    /// N as the size at which the background compactor folds a delta in.
    delta_limit: usize,
}

impl Catalog {
    /// Creates an empty, unsharded catalog (one shard per relation).
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Creates an empty catalog partitioning every relation under `policy`.
    pub fn with_policy(policy: ShardingPolicy) -> Self {
        Self::with_policy_and_delta(policy, 0)
    }

    /// Creates an empty catalog partitioning under `policy` with the delta
    /// ingest lane configured: `delta_limit` 0 keeps today's immediate
    /// copy-on-write rebuilds; N > 0 makes appends O(delta) publishes that
    /// the compactor folds in once a shard's delta reaches N tuples.
    pub fn with_policy_and_delta(policy: ShardingPolicy, delta_limit: usize) -> Self {
        Catalog {
            slots: RwLock::new(Vec::new()),
            mutations: Mutex::new(()),
            policy,
            delta_limit,
        }
    }

    /// The sharding policy every relation of this catalog is partitioned
    /// under.
    pub fn policy(&self) -> ShardingPolicy {
        self.policy
    }

    /// The delta-lane threshold (0 = delta lane off).
    pub fn delta_limit(&self) -> usize {
        self.delta_limit
    }

    /// Registers a relation, building its shared access structures (outside
    /// any lock), and returns its id. Tuple ids should be tagged with the
    /// relation's registration index for readable results (the engine does
    /// not rewrite them); use [`Catalog::register_rows`] to have ids
    /// assigned — and the batch validated — for you.
    ///
    /// # Panics
    /// Panics (without touching the catalog lock) if the tuples do not
    /// share one dimensionality.
    pub fn register(&self, name: impl AsRef<str>, tuples: Vec<Tuple>) -> RelationId {
        let relation = Arc::new(CatalogRelation::build(name.as_ref(), tuples, &self.policy));
        let mut slots = self.slots.write().expect("catalog lock");
        slots.push(Slot::Live(relation));
        RelationId(slots.len() - 1)
    }

    /// Registers a relation from raw `(location, score)` rows, assigning
    /// [`TupleId`]s (relation index + arrival rank). The id is reserved
    /// under the lock, the indexes are built outside it, and the relation
    /// is then published — concurrent queries are never blocked behind an
    /// index build.
    ///
    /// # Errors
    /// [`CatalogError::DimensionMismatch`] when the rows do not share one
    /// dimensionality (checked before anything is built, so a bad batch has
    /// no effect beyond burning one id).
    pub fn register_rows(
        &self,
        name: impl AsRef<str>,
        rows: Vec<(Vector, f64)>,
    ) -> Result<(RelationId, usize), CatalogError> {
        if let Some(first) = rows.first() {
            let expected = first.0.dim();
            for (v, _) in &rows {
                if v.dim() != expected {
                    return Err(CatalogError::DimensionMismatch {
                        expected,
                        got: v.dim(),
                    });
                }
            }
        }
        let index = {
            let mut slots = self.slots.write().expect("catalog lock");
            slots.push(Slot::Reserved);
            slots.len() - 1
        };
        let tuples: Vec<Tuple> = rows
            .into_iter()
            .enumerate()
            .map(|(i, (v, s))| Tuple::new(TupleId::new(index, i), v, s))
            .collect();
        let cardinality = tuples.len();
        let relation = Arc::new(CatalogRelation::build(name.as_ref(), tuples, &self.policy));
        let mut slots = self.slots.write().expect("catalog lock");
        slots[index] = Slot::Live(relation);
        Ok((RelationId(index), cardinality))
    }

    /// Appends to a live relation via optimistic copy-on-write: snapshot
    /// the current relation, build the extended snapshot outside any lock
    /// (rebuilding only the shards the new tuples land on), then publish it
    /// only if the base is still current — retrying against the new base
    /// otherwise, so concurrent appends are serialised without ever holding
    /// the lock across an index build and none is lost.
    fn append_with(
        &self,
        id: RelationId,
        make_tuples: impl Fn(&CatalogRelation) -> Vec<Tuple>,
    ) -> Result<MutationOutcome, CatalogError> {
        // With mutations serialised, the optimistic publish below succeeds
        // on the first pass; the retry loop remains as a correctness
        // backstop, not as the concurrency mechanism.
        let _mutations = self.mutations.lock().expect("mutation lock");
        loop {
            let current = self.relation(id)?;
            let tuples = make_tuples(&current);
            Self::check_dimensions(&current, &tuples)?;
            let (appended, touched_shards) =
                current.appended(tuples, &self.policy, self.delta_limit > 0);
            let next = Arc::new(appended);
            let epoch = next.epoch();
            let cardinality = next.cardinality();
            let mut slots = self.slots.write().expect("catalog lock");
            match &slots[id.0] {
                Slot::Live(base) if Arc::ptr_eq(base, &current) => {
                    slots[id.0] = Slot::Live(next);
                    return Ok(MutationOutcome {
                        id,
                        epoch,
                        cardinality,
                        touched_shards,
                    });
                }
                // A concurrent mutation published first: rebuild from the
                // new base.
                Slot::Live(_) => continue,
                Slot::Reserved => return Err(CatalogError::UnknownId(id.0)),
                Slot::Dropped => return Err(CatalogError::Dropped(id.0)),
            }
        }
    }

    /// Appends pre-tagged tuples to a live relation, publishing a new
    /// snapshot whose touched shards carry bumped epochs (copy-on-write;
    /// see the module docs).
    ///
    /// # Errors
    /// [`CatalogError::UnknownId`] / [`CatalogError::Dropped`] for bad
    /// targets, [`CatalogError::DimensionMismatch`] when a tuple's
    /// dimensionality disagrees with the relation's.
    pub fn append(
        &self,
        id: RelationId,
        tuples: Vec<Tuple>,
    ) -> Result<MutationOutcome, CatalogError> {
        self.append_with(id, |_| tuples.clone())
    }

    /// Appends raw `(location, score)` rows, assigning [`TupleId`]s from
    /// the relation's cardinality at publication time (so concurrent
    /// appends can never produce colliding ids).
    pub fn append_rows(
        &self,
        id: RelationId,
        rows: Vec<(Vector, f64)>,
    ) -> Result<MutationOutcome, CatalogError> {
        self.append_with(id, |current| {
            let base = current.cardinality();
            rows.iter()
                .enumerate()
                .map(|(i, (v, s))| Tuple::new(TupleId::new(id.0, base + i), v.clone(), *s))
                .collect()
        })
    }

    /// Drops a live relation. The id is never reused; later lookups fail
    /// with [`CatalogError::Dropped`].
    pub fn drop_relation(&self, id: RelationId) -> Result<MutationOutcome, CatalogError> {
        let _mutations = self.mutations.lock().expect("mutation lock");
        let mut slots = self.slots.write().expect("catalog lock");
        let current = Self::live(&slots, id)?;
        let epoch = current.epoch() + 1;
        let touched_shards = (0..current.num_shards()).collect();
        slots[id.0] = Slot::Dropped;
        Ok(MutationOutcome {
            id,
            epoch,
            cardinality: 0,
            touched_shards,
        })
    }

    /// Folds shard `j` of relation `id`'s delta into its base. The
    /// expensive fold runs outside every lock; the publish step recomputes
    /// the residual delta (appends that raced the fold are kept, never
    /// lost) under the mutation mutex and swaps the shard in at its
    /// **unchanged** epoch — compaction is invisible to everything keyed
    /// by epoch vectors. Returns whether a fold was published (`false`
    /// when the delta was empty or the base moved under the fold; the
    /// compactor simply retries on its next pass).
    pub fn compact_shard(&self, id: RelationId, j: usize) -> Result<bool, CatalogError> {
        let snapshot = self.relation(id)?;
        if j >= snapshot.num_shards() || snapshot.shard(j).delta.is_empty() {
            return Ok(false);
        }
        let folded = snapshot.shard(j).folded_base();
        let _mutations = self.mutations.lock().expect("mutation lock");
        let current = self.relation(id)?;
        let cur = current.shard(j);
        // Only fold onto the base we folded from: a different base means a
        // concurrent compaction published first.
        if !Arc::ptr_eq(&cur.tuples, &snapshot.shard(j).tuples) {
            return Ok(false);
        }
        // Appends only ever add to a shard's delta, so the live delta is a
        // superset of the folded snapshot; the difference is exactly the
        // tuples that arrived while the fold ran.
        let residual = cur.delta.difference(&snapshot.shard(j).delta);
        let shard = RelationShard::with_residual(&folded, residual, cur.epoch, cur.compactions + 1);
        let next = Arc::new(current.with_shard(j, shard));
        let mut slots = self.slots.write().expect("catalog lock");
        match &slots[id.0] {
            Slot::Live(base) if Arc::ptr_eq(base, &current) => {
                slots[id.0] = Slot::Live(next);
                Ok(true)
            }
            // Unreachable while the mutation mutex is held; bail safely
            // all the same.
            Slot::Live(_) => Ok(false),
            Slot::Reserved => Err(CatalogError::UnknownId(id.0)),
            Slot::Dropped => Err(CatalogError::Dropped(id.0)),
        }
    }

    /// The shards whose deltas hold at least `min_len` tuples, as
    /// `(relation, shard, delta_len)` triples — the compactor's work list.
    /// `min_len` 0 lists every non-empty delta (the age-flush pass).
    pub fn delta_backlog(&self, min_len: usize) -> Vec<(RelationId, usize, usize)> {
        let slots = self.slots.read().expect("catalog lock");
        let mut backlog = Vec::new();
        for (i, slot) in slots.iter().enumerate() {
            if let Slot::Live(rel) = slot {
                for j in 0..rel.num_shards() {
                    let len = rel.shard(j).delta_len();
                    if len > 0 && len >= min_len {
                        backlog.push((RelationId(i), j, len));
                    }
                }
            }
        }
        backlog
    }

    /// Total number of tuples currently waiting in deltas across every
    /// live relation (what the `prj_delta_tuples` gauge reports).
    pub fn delta_tuples_total(&self) -> usize {
        let slots = self.slots.read().expect("catalog lock");
        slots
            .iter()
            .map(|s| match s {
                Slot::Live(rel) => rel.delta_len(),
                _ => 0,
            })
            .sum()
    }

    fn live(slots: &[Slot], id: RelationId) -> Result<Arc<CatalogRelation>, CatalogError> {
        match slots.get(id.0) {
            // A reserved slot's registration has not published yet, so the
            // id is not yet known to any caller.
            None | Some(Slot::Reserved) => Err(CatalogError::UnknownId(id.0)),
            Some(Slot::Dropped) => Err(CatalogError::Dropped(id.0)),
            Some(Slot::Live(relation)) => Ok(Arc::clone(relation)),
        }
    }

    fn check_dimensions(current: &CatalogRelation, tuples: &[Tuple]) -> Result<(), CatalogError> {
        let expected = if current.cardinality() == 0 {
            tuples.first().map_or(0, |t| t.dim())
        } else {
            current.stats.dimensions
        };
        for t in tuples {
            if t.dim() != expected {
                return Err(CatalogError::DimensionMismatch {
                    expected,
                    got: t.dim(),
                });
            }
        }
        Ok(())
    }

    /// The live relation registered under `id`.
    pub fn relation(&self, id: RelationId) -> Result<Arc<CatalogRelation>, CatalogError> {
        Self::live(&self.slots.read().expect("catalog lock"), id)
    }

    /// Snapshots the live relations registered under `ids`, in order. Each
    /// snapshot carries the epoch vector it was published at, so the caller
    /// can build an epoch-consistent cache key from the same snapshot it
    /// queries.
    pub fn snapshot(&self, ids: &[RelationId]) -> Result<Vec<Arc<CatalogRelation>>, CatalogError> {
        let slots = self.slots.read().expect("catalog lock");
        ids.iter().map(|id| Self::live(&slots, *id)).collect()
    }

    /// Resolves a name to the id of the most recently registered *live*
    /// relation with that name.
    pub fn lookup(&self, name: &str) -> Option<RelationId> {
        let slots = self.slots.read().expect("catalog lock");
        slots
            .iter()
            .enumerate()
            .rev()
            .find_map(|(i, slot)| match slot {
                Slot::Live(relation) if relation.name() == name => Some(RelationId(i)),
                _ => None,
            })
    }

    /// Number of catalog slots ever allocated (live + dropped); ids range
    /// over `0..len()`.
    pub fn len(&self) -> usize {
        self.slots.read().expect("catalog lock").len()
    }

    /// Number of live (not dropped) relations.
    pub fn live_len(&self) -> usize {
        self.slots
            .read()
            .expect("catalog lock")
            .iter()
            .filter(|s| matches!(s, Slot::Live(_)))
            .count()
    }

    /// `true` when no relation has ever been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ids of all live relations, in registration order.
    pub fn all_ids(&self) -> Vec<RelationId> {
        let slots = self.slots.read().expect("catalog lock");
        slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                Slot::Live(_) => Some(RelationId(i)),
                Slot::Reserved | Slot::Dropped => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prj_access::AccessKind;

    fn mk_tuples(rel: usize, n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                let x = ((i * 37) % 100) as f64 / 10.0 - 5.0;
                let y = ((i * 53) % 100) as f64 / 10.0 - 5.0;
                Tuple::new(
                    TupleId::new(rel, i),
                    Vector::from([x, y]),
                    (i % 10) as f64 / 10.0 + 0.05,
                )
            })
            .collect()
    }

    #[test]
    fn register_and_snapshot() {
        let catalog = Catalog::new();
        let a = catalog.register("hotels", mk_tuples(0, 20));
        let b = catalog.register("restaurants", mk_tuples(1, 30));
        assert_eq!(catalog.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        let snap = catalog.snapshot(&[b, a]).unwrap();
        assert_eq!(snap[0].name(), "restaurants");
        assert_eq!(snap[1].name(), "hotels");
        assert_eq!(snap[0].stats().cardinality, 30);
        assert_eq!(snap[0].epoch(), 0);
        assert_eq!(snap[0].epochs(), vec![0]);
        assert_eq!(snap[0].num_shards(), 1);
        assert_eq!(catalog.all_ids(), vec![a, b]);
        assert_eq!(catalog.lookup("hotels"), Some(a));
        assert_eq!(catalog.lookup("bars"), None);
    }

    #[test]
    fn views_share_rather_than_copy() {
        let catalog = Catalog::new();
        let id = catalog.register("r", mk_tuples(0, 40));
        let rel = catalog.relation(id).unwrap();
        let v1 = rel.distance_view(Vector::from([0.0, 0.0]));
        let v2 = rel.distance_view(Vector::from([1.0, 1.0]));
        assert_eq!(v1.kind(), AccessKind::Distance);
        assert_eq!(v2.total_len(), Some(40));
        // Three users of the tree: the catalog shard and the two views.
        assert_eq!(Arc::strong_count(rel.shard(0).rtree()), 3);
    }

    #[test]
    fn sharded_registration_partitions_all_tuples() {
        let catalog = Catalog::with_policy(ShardingPolicy::new(4));
        let id = catalog.register("r", mk_tuples(0, 60));
        let rel = catalog.relation(id).unwrap();
        assert_eq!(rel.num_shards(), 4);
        assert_eq!(rel.cardinality(), 60);
        assert_eq!(rel.epochs(), vec![0, 0, 0, 0]);
        let per_shard: usize = (0..4).map(|j| rel.shard(j).tuples().len()).sum();
        assert_eq!(per_shard, 60);
        // Every tuple sits on the shard the policy assigns it to.
        let policy = catalog.policy();
        for j in 0..4 {
            for t in rel.shard(j).tuples().iter() {
                assert_eq!(policy.shard_of(&t.vector), j);
            }
        }
        // Combined stats agree with a direct computation.
        let direct = RelationStats::from_tuples(&rel.all_tuples());
        assert_eq!(rel.stats().cardinality, direct.cardinality);
        assert_eq!(rel.stats().max_score, direct.max_score);
    }

    #[test]
    fn merged_views_traverse_all_shards_in_sorted_order() {
        let catalog = Catalog::with_policy(ShardingPolicy::new(3));
        let id = catalog.register("r", mk_tuples(0, 35));
        let rel = catalog.relation(id).unwrap();
        let query = Vector::from([0.5, -0.5]);
        let mut view = rel.distance_view(query.clone());
        let mut previous = f64::NEG_INFINITY;
        let mut count = 0;
        while let Some(t) = view.next_tuple() {
            let d = t.distance_to(&query);
            assert!(d >= previous - 1e-12);
            previous = d;
            count += 1;
        }
        assert_eq!(count, 35);

        let mut view = rel.score_view();
        let mut previous = f64::INFINITY;
        let mut count = 0;
        while let Some(t) = view.next_tuple() {
            assert!(t.score <= previous);
            previous = t.score;
            count += 1;
        }
        assert_eq!(count, 35);
    }

    #[test]
    fn append_bumps_only_the_touched_shard_epoch() {
        let catalog = Catalog::with_policy(ShardingPolicy::new(4));
        let id = catalog.register("r", mk_tuples(0, 10));
        let before = catalog.relation(id).unwrap();
        assert_eq!(before.epoch(), 0);

        let point = Vector::from([9.0, 9.0]);
        let target = catalog.policy().shard_of(&point);
        let outcome = catalog.append_rows(id, vec![(point, 0.5)]).unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.cardinality, 11);

        // The pre-mutation snapshot is untouched (copy-on-write).
        assert_eq!(before.cardinality(), 10);

        let after = catalog.relation(id).unwrap();
        assert_eq!(after.cardinality(), 11);
        let epochs = after.epochs();
        for (j, epoch) in epochs.iter().enumerate() {
            assert_eq!(*epoch, u64::from(j == target), "shard {j}");
        }
        // Untouched shards still share the old snapshot's structures.
        for j in (0..4).filter(|&j| j != target) {
            assert!(Arc::ptr_eq(before.shard(j).rtree(), after.shard(j).rtree()));
        }
        // Ids keep counting from the previous cardinality.
        assert_eq!(
            after.shard(target).tuples().last().unwrap().id,
            TupleId::new(0, 10)
        );
        // The appended tuple is reachable through the merged distance view.
        let mut view = after.distance_view(Vector::from([9.0, 9.0]));
        let first = view.next_tuple().unwrap();
        assert_eq!(first.id, TupleId::new(0, 10));
    }

    #[test]
    fn appended_score_view_stays_sorted() {
        let catalog = Catalog::with_policy(ShardingPolicy::new(2));
        let id = catalog.register("r", mk_tuples(0, 12));
        catalog
            .append_rows(
                id,
                vec![
                    (Vector::from([0.5, 0.5]), 0.99),
                    (Vector::from([1.5, -0.5]), 0.01),
                ],
            )
            .unwrap();
        let mut view = catalog.relation(id).unwrap().score_view();
        let mut previous = f64::INFINITY;
        let mut count = 0;
        while let Some(t) = view.next_tuple() {
            assert!(t.score <= previous);
            previous = t.score;
            count += 1;
        }
        assert_eq!(count, 14);
    }

    #[test]
    fn append_to_empty_relation_establishes_dimensionality() {
        let catalog = Catalog::new();
        let (id, n) = catalog.register_rows("fresh", Vec::new()).unwrap();
        assert_eq!(n, 0);
        let outcome = catalog
            .append_rows(id, vec![(Vector::from([1.0, 2.0]), 0.7)])
            .unwrap();
        assert_eq!(outcome.cardinality, 1);
        let rel = catalog.relation(id).unwrap();
        assert_eq!(rel.stats().dimensions, 2);
        assert_eq!(rel.shard(0).rtree().len(), 1);
    }

    #[test]
    fn mixed_dimension_registration_is_a_typed_error_and_cannot_poison_the_lock() {
        let catalog = Catalog::new();
        let err = catalog
            .register_rows(
                "bad",
                vec![(Vector::from([1.0]), 0.5), (Vector::from([1.0, 2.0]), 0.5)],
            )
            .unwrap_err();
        assert!(matches!(err, CatalogError::DimensionMismatch { .. }));
        // The catalog stays fully usable afterwards (no poisoned lock, no
        // half-registered slot visible).
        assert_eq!(catalog.live_len(), 0);
        let ok = catalog.register_rows("good", vec![(Vector::from([1.0]), 0.5)]);
        assert!(ok.is_ok());
        assert_eq!(catalog.live_len(), 1);
    }

    #[test]
    fn concurrent_appends_are_all_retained() {
        // Optimistic copy-on-write must serialise racing appends without
        // losing any (a lost update would silently drop client data) —
        // including across shards.
        let catalog = Arc::new(Catalog::with_policy(ShardingPolicy::new(3)));
        let id = catalog.register("r", mk_tuples(0, 4));
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let catalog = Arc::clone(&catalog);
                scope.spawn(move || {
                    for i in 0..8 {
                        let x = worker as f64 + i as f64 / 10.0;
                        catalog
                            .append_rows(id, vec![(Vector::from([x, -x]), 0.5)])
                            .unwrap();
                    }
                });
            }
        });
        let relation = catalog.relation(id).unwrap();
        assert_eq!(relation.cardinality(), 4 + 32);
        assert_eq!(relation.epoch(), 32);
        // Ids are dense and unique across shards.
        let mut indices: Vec<usize> = relation.all_tuples().iter().map(|t| t.id.index).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..36).collect::<Vec<_>>());
    }

    #[test]
    fn delta_appends_publish_without_rebuilding() {
        let catalog = Catalog::with_policy_and_delta(ShardingPolicy::new(2), 64);
        assert_eq!(catalog.delta_limit(), 64);
        let id = catalog.register("r", mk_tuples(0, 12));
        let before = catalog.relation(id).unwrap();
        let point = Vector::from([0.5, 0.5]);
        let target = catalog.policy().shard_of(&point);
        let outcome = catalog.append_rows(id, vec![(point, 0.99)]).unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.cardinality, 13);
        assert_eq!(outcome.touched_shards, vec![target]);
        let after = catalog.relation(id).unwrap();
        // The base structures are shared as-is — no rebuild happened.
        assert!(Arc::ptr_eq(
            before.shard(target).rtree(),
            after.shard(target).rtree()
        ));
        assert_eq!(after.shard(target).delta_len(), 1);
        assert_eq!(after.delta_len(), 1);
        assert_eq!(catalog.delta_tuples_total(), 1);
        assert_eq!(after.cardinality(), 13);
        assert_eq!(after.stats().max_score, 0.99);
        // Merged views observe base + delta in globally sorted order.
        let mut view = after.score_view();
        let mut previous = f64::INFINITY;
        let mut count = 0;
        while let Some(t) = view.next_tuple() {
            assert!(t.score <= previous);
            previous = t.score;
            count += 1;
        }
        assert_eq!(count, 13);
        let query = Vector::from([0.5, 0.5]);
        let mut view = after.distance_view(query.clone());
        let first = view.next_tuple().unwrap();
        assert_eq!(first.id, TupleId::new(0, 12), "delta tuple is nearest");
        let mut count = 1;
        let mut previous = first.distance_to(&query);
        while let Some(t) = view.next_tuple() {
            let d = t.distance_to(&query);
            assert!(d >= previous - 1e-12);
            previous = d;
            count += 1;
        }
        assert_eq!(count, 13);
    }

    #[test]
    fn compaction_preserves_epochs_and_matches_the_rebuild_path() {
        let delta_catalog = Catalog::with_policy_and_delta(ShardingPolicy::new(2), 4);
        let rebuild_catalog = Catalog::with_policy(ShardingPolicy::new(2));
        let a = delta_catalog.register("r", mk_tuples(0, 10));
        let b = rebuild_catalog.register("r", mk_tuples(0, 10));
        for i in 0..6 {
            let row = (
                Vector::from([i as f64 - 3.0, 3.0 - i as f64]),
                0.1 * i as f64 + 0.2,
            );
            delta_catalog.append_rows(a, vec![row.clone()]).unwrap();
            rebuild_catalog.append_rows(b, vec![row]).unwrap();
        }
        let before = delta_catalog.relation(a).unwrap();
        assert!(before.delta_len() > 0);
        let epochs = before.epochs();
        for j in 0..2 {
            let had_delta = before.shard(j).delta_len() > 0;
            assert_eq!(delta_catalog.compact_shard(a, j).unwrap(), had_delta);
            // Compacting an already-empty delta is a no-op.
            assert!(!delta_catalog.compact_shard(a, j).unwrap());
        }
        let after = delta_catalog.relation(a).unwrap();
        let reference = rebuild_catalog.relation(b).unwrap();
        // Compaction changed no epoch and lost no data.
        assert_eq!(after.epochs(), epochs);
        assert_eq!(after.delta_len(), 0);
        assert_eq!(delta_catalog.delta_tuples_total(), 0);
        assert_eq!(delta_catalog.delta_backlog(0), vec![]);
        // The folded shards are physically identical to the rebuild path's:
        // same tuple order, same score order, same tree size.
        for j in 0..2 {
            assert_eq!(
                after.shard(j).tuples().as_slice(),
                reference.shard(j).tuples().as_slice()
            );
            assert_eq!(
                after.shard(j).rtree().len(),
                reference.shard(j).rtree().len()
            );
            if before.shard(j).delta_len() > 0 {
                assert_eq!(after.shard(j).compactions(), 1);
            }
        }
    }

    #[test]
    fn delta_backlog_lists_shards_at_threshold() {
        let catalog = Catalog::with_policy_and_delta(ShardingPolicy::new(1), 3);
        let id = catalog.register("r", mk_tuples(0, 5));
        assert!(catalog.delta_backlog(0).is_empty());
        catalog
            .append_rows(id, vec![(Vector::from([1.0, 1.0]), 0.5)])
            .unwrap();
        assert_eq!(catalog.delta_backlog(0), vec![(id, 0, 1)]);
        assert!(catalog.delta_backlog(3).is_empty());
        catalog
            .append_rows(
                id,
                vec![
                    (Vector::from([2.0, 1.0]), 0.4),
                    (Vector::from([1.0, 2.0]), 0.6),
                ],
            )
            .unwrap();
        assert_eq!(catalog.delta_backlog(3), vec![(id, 0, 3)]);
    }

    #[test]
    fn concurrent_appends_survive_concurrent_compaction() {
        // Appends racing the compactor's fold land in the residual delta;
        // none may be lost and ids stay dense.
        let catalog = Arc::new(Catalog::with_policy_and_delta(ShardingPolicy::new(2), 2));
        let id = catalog.register("r", mk_tuples(0, 4));
        std::thread::scope(|scope| {
            for worker in 0..3 {
                let catalog = Arc::clone(&catalog);
                scope.spawn(move || {
                    for i in 0..10 {
                        let x = worker as f64 + i as f64 / 10.0;
                        catalog
                            .append_rows(id, vec![(Vector::from([x, -x]), 0.5)])
                            .unwrap();
                    }
                });
            }
            let catalog = Arc::clone(&catalog);
            scope.spawn(move || {
                for _ in 0..50 {
                    for (rel, shard, _) in catalog.delta_backlog(1) {
                        let _ = catalog.compact_shard(rel, shard);
                    }
                    std::thread::yield_now();
                }
            });
        });
        // Final flush so the assertion below sees everything folded.
        for (rel, shard, _) in catalog.delta_backlog(0) {
            assert!(catalog.compact_shard(rel, shard).unwrap());
        }
        let relation = catalog.relation(id).unwrap();
        assert_eq!(relation.cardinality(), 4 + 30);
        assert_eq!(relation.epoch(), 30);
        assert_eq!(relation.delta_len(), 0);
        let mut indices: Vec<usize> = relation.all_tuples().iter().map(|t| t.id.index).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..34).collect::<Vec<_>>());
    }

    #[test]
    fn delta_append_to_empty_relation_is_queryable_and_compactable() {
        let catalog = Catalog::with_policy_and_delta(ShardingPolicy::new(1), 8);
        let (id, _) = catalog.register_rows("fresh", Vec::new()).unwrap();
        catalog
            .append_rows(id, vec![(Vector::from([1.0, 2.0]), 0.7)])
            .unwrap();
        let rel = catalog.relation(id).unwrap();
        assert_eq!(rel.stats().dimensions, 2);
        assert_eq!(rel.shard(0).delta_len(), 1);
        let mut view = rel.distance_view(Vector::from([0.0, 0.0]));
        assert_eq!(view.next_tuple().unwrap().id, TupleId::new(id.0, 0));
        assert!(catalog.compact_shard(id, 0).unwrap());
        let rel = catalog.relation(id).unwrap();
        // The placeholder-dimension base was rebuilt for real.
        assert_eq!(rel.shard(0).rtree().len(), 1);
        assert_eq!(rel.shard(0).rtree().dim(), 2);
        assert_eq!(rel.epochs(), vec![1]);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let catalog = Catalog::new();
        let id = catalog.register("r", mk_tuples(0, 5));
        let err = catalog
            .append_rows(id, vec![(Vector::from([1.0, 2.0, 3.0]), 0.7)])
            .unwrap_err();
        assert_eq!(
            err,
            CatalogError::DimensionMismatch {
                expected: 2,
                got: 3
            }
        );
        // The failed append must not have bumped the epoch.
        assert_eq!(catalog.relation(id).unwrap().epoch(), 0);
    }

    #[test]
    fn drop_makes_later_access_fail_without_reusing_the_id() {
        let catalog = Catalog::new();
        let a = catalog.register("a", mk_tuples(0, 5));
        let b = catalog.register("b", mk_tuples(1, 5));
        let outcome = catalog.drop_relation(a).unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(catalog.relation(a).unwrap_err(), CatalogError::Dropped(0));
        assert_eq!(
            catalog.snapshot(&[a, b]).unwrap_err(),
            CatalogError::Dropped(0)
        );
        assert_eq!(catalog.lookup("a"), None);
        assert_eq!(catalog.live_len(), 1);
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.all_ids(), vec![b]);
        // A new registration does not resurrect the dropped id.
        let c = catalog.register("c", mk_tuples(2, 5));
        assert_eq!(c.index(), 2);
        assert_eq!(
            catalog.drop_relation(a).unwrap_err(),
            CatalogError::Dropped(0)
        );
        assert_eq!(
            catalog.relation(RelationId(99)).unwrap_err(),
            CatalogError::UnknownId(99)
        );
    }

    #[test]
    fn lookup_resolves_the_most_recent_live_name() {
        let catalog = Catalog::new();
        let old = catalog.register("r", mk_tuples(0, 3));
        let new = catalog.register("r", mk_tuples(1, 4));
        assert_eq!(catalog.lookup("r"), Some(new));
        catalog.drop_relation(new).unwrap();
        assert_eq!(catalog.lookup("r"), Some(old));
    }
}
