//! `prj-serve` — the line-delimited TCP front-end for the ProxRJ engine.
//!
//! ```text
//! cargo run --release -p prj-engine --bin prj-serve -- [OPTIONS]
//!
//! OPTIONS:
//!     --addr HOST:PORT   listen address (default 127.0.0.1:7878; port 0 = ephemeral)
//!     --threads N        engine worker threads (default: available parallelism)
//!     --cache N          result-cache capacity in entries (default 1024)
//!     --shards N         spatial shards per relation (default 1 = unsharded)
//!     --table1           preload the paper's Table 1 relations as R1, R2, R3
//!     --self-check       bind an ephemeral port, run one client round-trip, exit
//! ```
//!
//! The protocol is `prj-api`'s `prj/1` line format; try it by hand:
//!
//! ```text
//! $ nc 127.0.0.1 7878
//! prj/1 register name=hotels tuples=0.0,-0.5:0.5;0.0,1.0:1.0
//! prj/1 ok registered id=0 name=hotels epoch=0 n=2
//! prj/1 topk rels=hotels q=0.0,0.0 k=1
//! prj/1 ok results cached=false algo=TBRR rows=-0.9431471805599453@0:0
//! ```

use prj_api::{ApiClient, QueryRequest, Request, TupleData};
use prj_engine::{EngineBuilder, Server, Session};
use std::sync::Arc;

struct Options {
    addr: String,
    threads: Option<usize>,
    cache: usize,
    shards: usize,
    table1: bool,
    self_check: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:7878".to_string(),
        threads: None,
        cache: 1024,
        shards: 1,
        table1: false,
        self_check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--addr" => options.addr = value("--addr")?,
            "--threads" => {
                options.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|_| "--threads expects an integer".to_string())?,
                )
            }
            "--cache" => {
                options.cache = value("--cache")?
                    .parse()
                    .map_err(|_| "--cache expects an integer".to_string())?
            }
            "--shards" => {
                options.shards = value("--shards")?
                    .parse()
                    .map_err(|_| "--shards expects an integer".to_string())?;
                if options.shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--table1" => options.table1 = true,
            "--self-check" => options.self_check = true,
            "--help" | "-h" => {
                println!(
                    "prj-serve: TCP front-end for the ProxRJ engine\n\
                     usage: prj-serve [--addr HOST:PORT] [--threads N] [--cache N] \
                     [--shards N] [--table1] [--self-check]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(options)
}

fn build_session(options: &Options) -> Arc<Session> {
    let mut builder = EngineBuilder::default()
        .cache_capacity(options.cache)
        .shards(options.shards);
    if let Some(threads) = options.threads {
        builder = builder.threads(threads);
    }
    let engine = Arc::new(builder.build());
    let session = Arc::new(Session::new(Arc::clone(&engine)));
    if options.table1 {
        type Table1Row<'a> = (&'a str, &'a [([f64; 2], f64)]);
        let table1: [Table1Row; 3] = [
            ("R1", &[([0.0, -0.5], 0.5), ([0.0, 1.0], 1.0)]),
            ("R2", &[([1.0, 1.0], 1.0), ([-2.0, 2.0], 0.8)]),
            ("R3", &[([-1.0, 1.0], 1.0), ([-2.0, -2.0], 0.4)]),
        ];
        for (name, rows) in table1 {
            session.handle(Request::RegisterRelation {
                name: name.to_string(),
                tuples: rows
                    .iter()
                    .map(|(x, s)| TupleData::new(x.to_vec(), *s))
                    .collect(),
            });
        }
        println!("preloaded Table 1 relations: R1, R2, R3");
    }
    session
}

/// Boots the server on an ephemeral port and runs one full client
/// round-trip against it: register → topk → append → topk (invalidated) →
/// stats. Exits non-zero on any mismatch, which makes it a cheap CI smoke
/// test of the whole binary.
fn self_check(options: &Options) -> Result<(), String> {
    let session = build_session(options);
    let server = Server::bind("127.0.0.1:0", session).map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.local_addr();
    let mut client = ApiClient::connect(addr).map_err(|e| format!("connect failed: {e}"))?;

    let hotels_id = match client
        .call(&Request::RegisterRelation {
            name: "hotels".to_string(),
            tuples: vec![
                TupleData::new([0.0, -0.5], 0.5),
                TupleData::new([0.0, 1.0], 1.0),
            ],
        })
        .map_err(|e| format!("register failed: {e}"))?
    {
        prj_api::Response::Registered { id, .. } => id,
        other => return Err(format!("unexpected register response: {other:?}")),
    };
    let (rows, from_cache) = client
        .top_k(QueryRequest::new(vec!["hotels".into()], [0.0, 0.0]).k(1))
        .map_err(|e| format!("topk failed: {e}"))?;
    if rows.len() != 1 || from_cache {
        return Err(format!(
            "unexpected cold topk: {rows:?} cached={from_cache}"
        ));
    }
    client
        .call(&Request::AppendTuples {
            relation: "hotels".into(),
            tuples: vec![TupleData::new([0.0, 0.0], 1.0)],
        })
        .map_err(|e| format!("append failed: {e}"))?;
    let (rows, from_cache) = client
        .top_k(QueryRequest::new(vec!["hotels".into()], [0.0, 0.0]).k(1))
        .map_err(|e| format!("post-append topk failed: {e}"))?;
    if from_cache || rows[0].tuples != vec![(hotels_id, 2)] {
        return Err(format!(
            "append was not observed: {rows:?} cached={from_cache}"
        ));
    }
    let stats = client.stats().map_err(|e| format!("stats failed: {e}"))?;
    let expected_relations = if options.table1 { 4 } else { 1 };
    if stats.queries != 2 || stats.relations != expected_relations {
        return Err(format!("unexpected stats: {stats:?}"));
    }
    if stats.shards != options.shards {
        return Err(format!(
            "engine reports {} shards, expected {}",
            stats.shards, options.shards
        ));
    }
    if stats.shard_depths.iter().sum::<u64>() != stats.total_sum_depths {
        return Err(format!(
            "per-shard depths {:?} do not add up to sumDepths {}",
            stats.shard_depths, stats.total_sum_depths
        ));
    }
    server.shutdown();
    println!("self-check ok: served {} queries on {addr}", stats.queries);
    Ok(())
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(e) => {
            eprintln!("prj-serve: {e}");
            std::process::exit(2);
        }
    };
    if options.self_check {
        if let Err(e) = self_check(&options) {
            eprintln!("prj-serve self-check FAILED: {e}");
            std::process::exit(1);
        }
        return;
    }
    let session = build_session(&options);
    let server = match Server::bind(&options.addr, Arc::clone(&session)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("prj-serve: cannot bind {}: {e}", options.addr);
            std::process::exit(1);
        }
    };
    println!(
        "prj-serve listening on {} (prj/{} line protocol, {} worker threads)",
        server.local_addr(),
        prj_api::PROTOCOL_VERSION,
        session.engine().threads(),
    );
    let addr = server.local_addr();
    println!(
        "try: printf 'prj/1 stats\\n' | nc {} {}",
        addr.ip(),
        addr.port()
    );
    loop {
        std::thread::park();
    }
}
