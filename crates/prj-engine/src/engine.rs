//! The engine façade: the piece that turns the ProxRJ library into a
//! multi-query serving system.
//!
//! A query's life: [`Engine::submit`] snapshots the catalog relations (Arc
//! clones stamped with their epochs), derives the cache key from that same
//! snapshot and returns a memoised result immediately on a hit; on a miss it
//! asks the [`Planner`] for an algorithm, builds a [`prj_core::Problem`] out
//! of O(1) shared-index views, and hands the run to the [`Executor`]'s
//! thread pool. The caller gets a [`QueryTicket`] to wait on;
//! [`Engine::stream`] instead returns a [`ResultStream`] whose
//! [`next_result`](ResultStream::next_result) pulls certified results one at
//! a time out of an incremental [`prj_core::StreamingRun`], mirroring the
//! paper's pulling model end to end.
//!
//! Scoring is an *open set*: a [`QuerySpec`] carries an
//! `Arc<dyn ScoringSpec>` and the engine exposes a
//! [`ScoringRegistry`](crate::registry::ScoringRegistry) that resolves
//! wire-level `(name, params)` selectors — including families registered at
//! runtime by embedding code. Mutations ([`Engine::append_rows`],
//! [`Engine::drop_relation`]) bump the target relation's epoch, which the
//! cache key incorporates, so a stale memoised result can never be served.
//!
//! Most callers should not drive `Engine` directly but go through
//! [`crate::session::Session`], which speaks the versioned `prj-api`
//! request/response protocol.

use crate::cache::{CacheKey, CacheMetrics, CachedExecution, ResultCache};
use crate::catalog::{Catalog, CatalogError, CatalogRelation, MutationOutcome, RelationId};
use crate::executor::Executor;
use crate::planner::{Plan, Planner, PlannerConfig};
use crate::registry::ScoringRegistry;
use crate::stats::{EngineStats, EngineStatsSnapshot, QueryRecord};
use prj_access::AccessKind;
use prj_core::{
    Algorithm, EuclideanLogScore, PrjError, ProblemBuilder, RankJoinResult, ScoredCombination,
    ScoringSpec,
};
use prj_geometry::Vector;
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Capacity of a stream's in-flight buffer: the producer runs at most this
/// many certified results ahead of the consumer (backpressure mirroring the
/// incremental pulling model).
const STREAM_BUFFER: usize = 8;

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The underlying operator rejected the query.
    Prj(PrjError),
    /// The worker executing the query disappeared (it panicked).
    WorkerLost,
    /// A referenced relation is unknown, dropped, or the mutation was
    /// rejected by the catalog.
    Catalog(CatalogError),
    /// The requested scoring name is not in the registry.
    UnknownScoring(String),
    /// The scoring factory rejected the parameters.
    InvalidScoringParams {
        /// The scoring family.
        name: String,
        /// The factory's rejection message.
        reason: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Prj(e) => write!(f, "operator error: {e}"),
            EngineError::WorkerLost => write!(f, "engine worker disappeared"),
            EngineError::Catalog(e) => write!(f, "catalog error: {e}"),
            EngineError::UnknownScoring(name) => {
                write!(f, "no scoring family registered as {name:?}")
            }
            EngineError::InvalidScoringParams { name, reason } => {
                write!(f, "invalid parameters for scoring {name:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PrjError> for EngineError {
    fn from(e: PrjError) -> Self {
        EngineError::Prj(e)
    }
}

impl From<CatalogError> for EngineError {
    fn from(e: CatalogError) -> Self {
        EngineError::Catalog(e)
    }
}

/// One top-k request against registered relations.
///
/// The scoring function is a shared [`ScoringSpec`] trait object, so specs
/// are not generic over the scoring family and any runtime-registered
/// family can be queried through the same engine.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The relations to join, in join order.
    pub relations: Vec<RelationId>,
    /// The query point `q`.
    pub query: Vector,
    /// Number of requested results `K`.
    pub k: usize,
    /// The aggregation function.
    pub scoring: Arc<dyn ScoringSpec>,
    /// Sorted-access kind (Definition 2.1).
    pub access_kind: AccessKind,
    /// Pin a specific algorithm, or let the planner choose (`None`).
    pub algorithm: Option<Algorithm>,
}

impl QuerySpec {
    /// A distance-access top-k query under the paper's default scoring
    /// (Eq. 2 with unit weights).
    pub fn top_k(relations: Vec<RelationId>, query: Vector, k: usize) -> Self {
        QuerySpec {
            relations,
            query,
            k,
            scoring: Arc::new(EuclideanLogScore::default()),
            access_kind: AccessKind::Distance,
            algorithm: None,
        }
    }

    /// Pins the operator instantiation instead of consulting the planner.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Selects the sorted-access kind.
    pub fn with_access_kind(mut self, kind: AccessKind) -> Self {
        self.access_kind = kind;
        self
    }

    /// Replaces the scoring function.
    pub fn with_scoring(mut self, scoring: impl ScoringSpec + 'static) -> Self {
        self.scoring = Arc::new(scoring);
        self
    }

    /// Replaces the scoring function with an already-shared instance (e.g.
    /// one resolved from the [`ScoringRegistry`]).
    pub fn with_shared_scoring(mut self, scoring: Arc<dyn ScoringSpec>) -> Self {
        self.scoring = scoring;
        self
    }
}

/// The outcome of one engine query.
#[derive(Debug, Clone)]
pub struct EngineResult {
    execution: Arc<CachedExecution>,
    /// Whether the result was served from the cache.
    pub from_cache: bool,
    /// End-to-end latency observed by the engine.
    pub latency: Duration,
}

impl EngineResult {
    /// The top-K combinations, best first.
    pub fn combinations(&self) -> &[ScoredCombination] {
        &self.execution.result.combinations
    }

    /// The full operator result (depths, metrics).
    pub fn result(&self) -> &RankJoinResult {
        &self.execution.result
    }

    /// The plan the result was produced with.
    pub fn plan(&self) -> &Plan {
        &self.execution.plan
    }
}

/// A handle to an in-flight query submitted to the pool.
#[derive(Debug)]
pub struct QueryTicket {
    receiver: Receiver<Result<EngineResult, EngineError>>,
}

impl QueryTicket {
    /// Blocks until the result is available.
    pub fn wait(self) -> Result<EngineResult, EngineError> {
        self.receiver.recv().unwrap_or(Err(EngineError::WorkerLost))
    }
}

enum StreamInner {
    /// Replaying a cached execution.
    Replay {
        execution: Arc<CachedExecution>,
        cursor: usize,
    },
    /// Receiving from a live incremental run on a worker thread. The
    /// producer sends `Err` if it panics, so a failed run is
    /// distinguishable from a completed one.
    Live(Receiver<Result<ScoredCombination, EngineError>>),
}

/// A streaming query: results are pulled one at a time, each produced with
/// only as many sorted accesses as its certification required.
pub struct ResultStream {
    inner: StreamInner,
    /// The plan the stream runs under.
    pub plan: Plan,
    /// Whether the stream replays a cached execution.
    pub from_cache: bool,
    error: Option<EngineError>,
}

impl ResultStream {
    /// The next certified result, best first; `None` once the top-K is
    /// exhausted. On a live stream this blocks while the worker performs the
    /// accesses the next result needs.
    ///
    /// `None` means either clean completion or a failed run — check
    /// [`ResultStream::error`] to tell them apart before treating the
    /// drained rows as the full top-K.
    pub fn next_result(&mut self) -> Option<ScoredCombination> {
        match &mut self.inner {
            StreamInner::Replay { execution, cursor } => {
                let combo = execution.result.combinations.get(*cursor).cloned();
                *cursor += combo.is_some() as usize;
                combo
            }
            StreamInner::Live(receiver) => match receiver.recv() {
                Ok(Ok(combo)) => Some(combo),
                Ok(Err(e)) => {
                    self.error = Some(e);
                    None
                }
                Err(_) => None,
            },
        }
    }

    /// The error that terminated the stream, if the producer failed instead
    /// of completing.
    pub fn error(&self) -> Option<&EngineError> {
        self.error.as_ref()
    }
}

/// Configuration builder for [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    threads: usize,
    cache_capacity: usize,
    planner: PlannerConfig,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            cache_capacity: 1024,
            planner: PlannerConfig::default(),
        }
    }
}

impl EngineBuilder {
    /// Number of worker threads (default: available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Result-cache capacity in entries (default 1024; 0 disables caching).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Planner thresholds.
    pub fn planner_config(mut self, config: PlannerConfig) -> Self {
        self.planner = config;
        self
    }

    /// Builds the engine (scoring registry pre-loaded with the built-ins).
    pub fn build(self) -> Engine {
        Engine {
            catalog: Arc::new(Catalog::new()),
            executor: Executor::new(self.threads),
            cache: Arc::new(ResultCache::new(self.cache_capacity)),
            stats: Arc::new(EngineStats::new()),
            planner: Planner::with_config(self.planner),
            registry: Arc::new(ScoringRegistry::with_builtins()),
        }
    }
}

/// A concurrent query-serving engine over the ProxRJ operator.
pub struct Engine {
    catalog: Arc<Catalog>,
    executor: Executor,
    cache: Arc<ResultCache>,
    stats: Arc<EngineStats>,
    planner: Planner,
    registry: Arc<ScoringRegistry>,
}

impl Engine {
    /// An engine with default settings.
    pub fn new() -> Self {
        EngineBuilder::default().build()
    }

    /// A configuration builder.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Registers a relation in the catalog (builds its shared indexes once).
    pub fn register(&self, name: impl AsRef<str>, tuples: Vec<prj_access::Tuple>) -> RelationId {
        self.catalog.register(name, tuples)
    }

    /// Appends pre-tagged tuples to a relation; bumps its epoch and purges
    /// the now-unreachable cache entries.
    pub fn append(
        &self,
        id: RelationId,
        tuples: Vec<prj_access::Tuple>,
    ) -> Result<MutationOutcome, EngineError> {
        let outcome = self.catalog.append(id, tuples)?;
        self.cache.invalidate_relation(id.index());
        Ok(outcome)
    }

    /// Appends raw `(location, score)` rows (tuple ids assigned under the
    /// catalog lock); bumps the epoch and purges stale cache entries.
    pub fn append_rows(
        &self,
        id: RelationId,
        rows: Vec<(Vector, f64)>,
    ) -> Result<MutationOutcome, EngineError> {
        let outcome = self.catalog.append_rows(id, rows)?;
        self.cache.invalidate_relation(id.index());
        Ok(outcome)
    }

    /// Drops a relation; bumps its epoch and purges stale cache entries.
    pub fn drop_relation(&self, id: RelationId) -> Result<MutationOutcome, EngineError> {
        let outcome = self.catalog.drop_relation(id)?;
        self.cache.invalidate_relation(id.index());
        Ok(outcome)
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The scoring registry; register new families here at any time.
    pub fn scoring_registry(&self) -> &Arc<ScoringRegistry> {
        &self.registry
    }

    /// Number of executor worker threads.
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// Engine-level statistics.
    pub fn stats(&self) -> EngineStatsSnapshot {
        self.stats.snapshot()
    }

    /// Result-cache counters.
    pub fn cache_metrics(&self) -> CacheMetrics {
        self.cache.metrics()
    }

    /// Snapshots the referenced relations and derives the cache key *from
    /// that snapshot*, so the epochs in the key always describe exactly the
    /// data the run would read (no key/snapshot race around mutations).
    fn snapshot_and_key(
        &self,
        spec: &QuerySpec,
    ) -> Result<(Vec<Arc<CatalogRelation>>, CacheKey), EngineError> {
        let snapshot = self.catalog.snapshot(&spec.relations)?;
        // Validate the query's dimensionality up front: catalog views skip
        // `ProblemBuilder`'s per-tuple checks (they would be O(n) per
        // query), so without this a mismatched query would panic a worker
        // instead of returning a typed error.
        for relation in &snapshot {
            let stats = relation.stats();
            if stats.cardinality > 0 && stats.dimensions != spec.query.dim() {
                return Err(EngineError::Prj(PrjError::DimensionMismatch {
                    expected: stats.dimensions,
                    found: spec.query.dim(),
                }));
            }
        }
        let relations = spec
            .relations
            .iter()
            .zip(snapshot.iter())
            .map(|(id, rel)| (id.index(), rel.epoch()))
            .collect();
        let key = CacheKey::new(
            relations,
            &spec.query,
            spec.k,
            spec.access_kind,
            spec.algorithm,
            spec.scoring.cache_fingerprint(),
        );
        Ok((snapshot, key))
    }

    /// Plans the query and builds a problem out of O(1) shared-index views.
    fn prepare(
        &self,
        spec: &QuerySpec,
        snapshot: &[Arc<CatalogRelation>],
    ) -> Result<(Plan, prj_core::Problem<Arc<dyn ScoringSpec>>), EngineError> {
        let reducible = spec.scoring.euclidean_weights().is_some();
        let plan = match spec.algorithm {
            Some(algorithm) => Plan {
                algorithm,
                dominance_period: None,
                rationale: "algorithm pinned by the query".to_string(),
            },
            None => {
                let stats: Vec<_> = snapshot.iter().map(|r| r.stats()).collect();
                self.planner.plan(reducible, &stats)
            }
        };
        let mut builder = ProblemBuilder::new(spec.query.clone(), Arc::clone(&spec.scoring))
            .k(spec.k)
            .access_kind(spec.access_kind)
            .dominance_period(plan.dominance_period);
        for relation in snapshot {
            let view = match spec.access_kind {
                AccessKind::Distance if reducible => relation.distance_view(spec.query.clone()),
                // Non-Euclidean proximity: the shared R-tree's Euclidean
                // frontier would disagree with the scoring's own distance, so
                // fall back to a per-query sort under δ.
                AccessKind::Distance => relation.distance_view_by(&spec.scoring, &spec.query),
                AccessKind::Score => relation.score_view(),
            };
            builder = builder.relation(view);
        }
        let problem = builder.build().map_err(EngineError::Prj)?;
        Ok((plan, problem))
    }

    /// Submits a query to the pool and returns a ticket to wait on.
    ///
    /// Cache hits and planning errors resolve the ticket immediately; misses
    /// run on a worker thread.
    pub fn submit(&self, spec: QuerySpec) -> QueryTicket {
        let started = Instant::now();
        let (sender, receiver) = sync_channel(1);
        let (snapshot, key) = match self.snapshot_and_key(&spec) {
            Ok(snapshot_and_key) => snapshot_and_key,
            Err(e) => {
                let _ = sender.send(Err(e));
                return QueryTicket { receiver };
            }
        };

        if let Some(execution) = self.cache.get(&key) {
            let latency = started.elapsed();
            self.stats.record(QueryRecord {
                latency,
                sum_depths: 0,
                bound_updates: 0,
                from_cache: true,
            });
            let _ = sender.send(Ok(EngineResult {
                execution,
                from_cache: true,
                latency,
            }));
            return QueryTicket { receiver };
        }

        match self.prepare(&spec, &snapshot) {
            Err(e) => {
                let _ = sender.send(Err(e));
            }
            Ok((plan, mut problem)) => {
                let cache = Arc::clone(&self.cache);
                let stats = Arc::clone(&self.stats);
                self.executor.spawn(move || {
                    // Re-check the cache at execution time: a duplicate query
                    // queued behind the first execution of this key should be
                    // served from its result, not re-run (thundering herd).
                    if let Some(execution) = cache.get(&key) {
                        let latency = started.elapsed();
                        stats.record(QueryRecord {
                            latency,
                            sum_depths: 0,
                            bound_updates: 0,
                            from_cache: true,
                        });
                        let _ = sender.send(Ok(EngineResult {
                            execution,
                            from_cache: true,
                            latency,
                        }));
                        return;
                    }
                    let outcome = plan.algorithm.run(&mut problem).map_err(EngineError::Prj);
                    let response = outcome.map(|result| {
                        let latency = started.elapsed();
                        stats.record(QueryRecord {
                            latency,
                            sum_depths: result.stats.sum_depths(),
                            bound_updates: result.metrics.bound_updates,
                            from_cache: false,
                        });
                        let execution = Arc::new(CachedExecution { result, plan });
                        cache.insert(key, Arc::clone(&execution));
                        EngineResult {
                            execution,
                            from_cache: false,
                            latency,
                        }
                    });
                    let _ = sender.send(response);
                });
            }
        }
        QueryTicket { receiver }
    }

    /// Runs one query to completion (submit + wait).
    pub fn query(&self, spec: QuerySpec) -> Result<EngineResult, EngineError> {
        self.submit(spec).wait()
    }

    /// Submits a batch and waits for every result, preserving order.
    pub fn query_batch(&self, specs: Vec<QuerySpec>) -> Vec<Result<EngineResult, EngineError>> {
        let tickets: Vec<QueryTicket> = specs.into_iter().map(|s| self.submit(s)).collect();
        tickets.into_iter().map(|t| t.wait()).collect()
    }

    /// Opens a streaming query: results are certified and delivered one at a
    /// time (the paper's incremental pulling model), with backpressure.
    ///
    /// A fully drained stream populates the result cache just like a batch
    /// query; a cache hit replays the memoised combinations. Live streams run
    /// on a dedicated thread rather than a pool worker: their producer is
    /// consumer-paced (it blocks once it runs a few results
    /// ahead), and a slow or idle consumer must not starve the pool that
    /// serves batch queries.
    pub fn stream(&self, spec: QuerySpec) -> Result<ResultStream, EngineError> {
        let started = Instant::now();
        let (snapshot, key) = self.snapshot_and_key(&spec)?;
        if let Some(execution) = self.cache.get(&key) {
            self.stats.record(QueryRecord {
                latency: started.elapsed(),
                sum_depths: 0,
                bound_updates: 0,
                from_cache: true,
            });
            let plan = execution.plan.clone();
            return Ok(ResultStream {
                inner: StreamInner::Replay {
                    execution,
                    cursor: 0,
                },
                plan,
                from_cache: true,
                error: None,
            });
        }

        let (plan, problem) = self.prepare(&spec, &snapshot)?;
        let mut run = plan
            .algorithm
            .start_streaming(problem)
            .map_err(EngineError::Prj)?;
        let (sender, receiver) = sync_channel(STREAM_BUFFER);
        let cache = Arc::clone(&self.cache);
        let stats = Arc::clone(&self.stats);
        let worker_plan = plan.clone();
        std::thread::Builder::new()
            .name("prj-engine-stream".to_string())
            .spawn(move || {
                let panic_sender = sender.clone();
                let worker = std::panic::AssertUnwindSafe(move || {
                    while let Some(combo) = run.next_certified() {
                        if sender.send(Ok(combo)).is_err() {
                            // Consumer dropped the stream: abandon the run
                            // without caching the partial result.
                            return;
                        }
                    }
                    let result = run.into_result();
                    stats.record(QueryRecord {
                        // The operator tracks its active stepping time, so
                        // the recorded latency measures engine work, not how
                        // slowly the consumer drained the stream.
                        latency: result.metrics.total_time,
                        sum_depths: result.stats.sum_depths(),
                        bound_updates: result.metrics.bound_updates,
                        from_cache: false,
                    });
                    cache.insert(
                        key,
                        Arc::new(CachedExecution {
                            result,
                            plan: worker_plan,
                        }),
                    );
                    // Dropping the sender closes the stream.
                });
                // A panicking run must be reported, not mistaken for clean
                // completion: the consumer would otherwise serve a
                // truncated stream as the full top-K.
                if std::panic::catch_unwind(worker).is_err() {
                    let _ = panic_sender.send(Err(EngineError::WorkerLost));
                }
            })
            .expect("spawn stream thread");
        Ok(ResultStream {
            inner: StreamInner::Live(receiver),
            plan,
            from_cache: false,
            error: None,
        })
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prj_access::{Tuple, TupleId};
    use prj_core::CosineSimilarityScore;

    fn table1() -> Vec<Vec<Tuple>> {
        let mk = |rel: usize, rows: &[([f64; 2], f64)]| -> Vec<Tuple> {
            rows.iter()
                .enumerate()
                .map(|(i, (x, s))| Tuple::new(TupleId::new(rel, i), Vector::from(*x), *s))
                .collect()
        };
        vec![
            mk(0, &[([0.0, -0.5], 0.5), ([0.0, 1.0], 1.0)]),
            mk(1, &[([1.0, 1.0], 1.0), ([-2.0, 2.0], 0.8)]),
            mk(2, &[([-1.0, 1.0], 1.0), ([-2.0, -2.0], 0.4)]),
        ]
    }

    fn table1_engine() -> (Engine, Vec<RelationId>) {
        let engine = EngineBuilder::default().threads(2).build();
        let ids = table1()
            .into_iter()
            .enumerate()
            .map(|(i, tuples)| engine.register(format!("R{}", i + 1), tuples))
            .collect();
        (engine, ids)
    }

    #[test]
    fn serves_the_paper_example() {
        let (engine, ids) = table1_engine();
        let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 1)
            .with_scoring(EuclideanLogScore::new(1.0, 1.0, 1.0));
        let result = engine.query(spec).expect("query");
        assert_eq!(result.combinations().len(), 1);
        // Example 3.1: the top combination scores -7.
        assert!((result.combinations()[0].score - (-7.0)).abs() < 0.05);
        assert!(!result.from_cache);
    }

    #[test]
    fn second_identical_query_hits_the_cache() {
        let (engine, ids) = table1_engine();
        let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 2);
        let cold = engine.query(spec.clone()).expect("cold");
        let warm = engine.query(spec).expect("warm");
        assert!(!cold.from_cache);
        assert!(warm.from_cache);
        assert_eq!(cold.combinations(), warm.combinations());
        let stats = engine.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.executed, 1);
        assert_eq!(engine.cache_metrics().hits, 1);
    }

    #[test]
    fn different_parameters_do_not_share_cache_entries() {
        let (engine, ids) = table1_engine();
        let base = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 2);
        engine.query(base.clone()).expect("first");
        let different_k = QuerySpec {
            k: 3,
            ..base.clone()
        };
        assert!(!engine.query(different_k).expect("k=3").from_cache);
        let different_q = QuerySpec {
            query: Vector::from([0.1, 0.0]),
            ..base.clone()
        };
        assert!(!engine.query(different_q).expect("moved q").from_cache);
        let different_w = base
            .clone()
            .with_scoring(EuclideanLogScore::new(2.0, 1.0, 1.0));
        assert!(!engine.query(different_w).expect("weights").from_cache);
        let pinned = base.with_algorithm(Algorithm::Cbrr);
        assert!(!engine.query(pinned).expect("pinned").from_cache);
    }

    #[test]
    fn mutation_invalidates_cached_results() {
        let (engine, ids) = table1_engine();
        let spec = QuerySpec::top_k(ids.clone(), Vector::from([0.0, 0.0]), 1);
        let cold = engine.query(spec.clone()).expect("cold");
        assert!(engine.query(spec.clone()).expect("warm").from_cache);

        // Append a perfect tuple right on the query point to R1: the old
        // memoised top-1 is now wrong and must not be served.
        engine
            .append_rows(ids[0], vec![(Vector::from([0.0, 0.0]), 1.0)])
            .expect("append");
        let fresh = engine.query(spec.clone()).expect("post-mutation");
        assert!(!fresh.from_cache, "mutation must invalidate the cache");
        assert!(
            fresh.combinations()[0].score > cold.combinations()[0].score,
            "the appended tuple improves the best combination"
        );
        assert_eq!(fresh.combinations()[0].tuples[0].id, TupleId::new(0, 2));
        // And the fresh result is itself cacheable under the new epoch.
        assert!(engine.query(spec).expect("re-warm").from_cache);
    }

    #[test]
    fn dropped_relations_fail_with_a_typed_error() {
        let (engine, ids) = table1_engine();
        engine.drop_relation(ids[1]).expect("drop");
        let spec = QuerySpec::top_k(ids.clone(), Vector::from([0.0, 0.0]), 1);
        match engine.query(spec) {
            Err(EngineError::Catalog(CatalogError::Dropped(index))) => {
                assert_eq!(index, ids[1].index())
            }
            other => panic!("expected a dropped-relation error, got {other:?}"),
        }
        // Double drop is also typed.
        assert!(matches!(
            engine.drop_relation(ids[1]),
            Err(EngineError::Catalog(CatalogError::Dropped(_)))
        ));
    }

    #[test]
    fn streaming_matches_batch_and_populates_cache() {
        let (engine, ids) = table1_engine();
        let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 8);
        let batch = engine.query(spec.clone()).expect("batch");
        engine.cache.clear();
        let mut stream = engine.stream(spec.clone()).expect("stream");
        let mut streamed = Vec::new();
        while let Some(combo) = stream.next_result() {
            streamed.push(combo);
        }
        assert_eq!(streamed.as_slice(), batch.combinations());
        // The drained stream cached its execution; a replayed stream agrees.
        let mut replay = engine.stream(spec).expect("replay");
        assert!(replay.from_cache);
        let mut replayed = Vec::new();
        while let Some(combo) = replay.next_result() {
            replayed.push(combo);
        }
        assert_eq!(replayed, streamed);
    }

    #[test]
    fn pinned_algorithm_is_respected() {
        let (engine, ids) = table1_engine();
        let spec =
            QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 1).with_algorithm(Algorithm::Cbrr);
        let result = engine.query(spec).expect("query");
        assert_eq!(result.plan().algorithm, Algorithm::Cbrr);
        assert!(result.plan().rationale.contains("pinned"));
    }

    #[test]
    fn cosine_scoring_is_served_with_corner_bound() {
        let engine = EngineBuilder::default().threads(1).build();
        let mk = |rel: usize, rows: &[([f64; 2], f64)]| -> Vec<Tuple> {
            rows.iter()
                .enumerate()
                .map(|(i, (x, s))| Tuple::new(TupleId::new(rel, i), Vector::from(*x), *s))
                .collect()
        };
        let a = engine.register("a", mk(0, &[([0.5, 0.1], 0.9), ([0.0, 1.0], 0.8)]));
        let b = engine.register("b", mk(1, &[([0.8, 0.2], 0.7), ([-1.0, 0.1], 0.6)]));
        let spec = QuerySpec::top_k(vec![a, b], Vector::from([1.0, 0.0]), 1)
            .with_scoring(CosineSimilarityScore::default());
        let result = engine.query(spec).expect("cosine query");
        assert!(matches!(
            result.plan().algorithm,
            Algorithm::Cbrr | Algorithm::Cbpa
        ));
        assert_eq!(result.combinations().len(), 1);
    }

    #[test]
    fn registry_resolved_scoring_is_queryable() {
        let (engine, ids) = table1_engine();
        let scoring = engine
            .scoring_registry()
            .resolve("euclidean-log", &[1.0, 1.0, 1.0])
            .expect("builtin");
        let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 1).with_shared_scoring(scoring);
        let result = engine.query(spec).expect("query");
        assert!((result.combinations()[0].score - (-7.0)).abs() < 0.05);
    }

    #[test]
    fn invalid_query_reports_an_operator_error() {
        let (engine, ids) = table1_engine();
        let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 0);
        match engine.query(spec) {
            Err(EngineError::Prj(PrjError::InvalidK)) => {}
            other => panic!("expected InvalidK, got {other:?}"),
        }
    }
}
