//! The engine façade: the piece that turns the ProxRJ library into a
//! multi-query serving system.
//!
//! A query's life: [`Engine::submit`] snapshots the catalog relations (Arc
//! clones stamped with their per-shard epoch vectors), derives the cache
//! key from that same snapshot and returns a memoised result immediately on
//! a hit; on a miss it builds one *execution unit* per (non-empty) shard of
//! the driving relation — each planned by the [`Planner`] from its own
//! shard statistics, each a [`prj_core::Problem`] out of O(1) shared-index
//! views — and hands the fan-out to the [`Executor`]'s thread pool, where
//! the certified per-unit top-Ks recombine exactly through
//! [`prj_core::merge_shared`] (the shard count is unobservable through
//! results). The caller gets a [`QueryTicket`] to wait on;
//! [`Engine::stream`] instead returns a [`ResultStream`] whose
//! [`next_result`](ResultStream::next_result) pulls certified results one
//! at a time out of incremental [`prj_core::StreamingRun`]s (lazily merged
//! by [`prj_core::CertifiedMerge`] when sharded), mirroring the paper's
//! pulling model end to end.
//!
//! Scoring is an *open set*: a [`QuerySpec`] carries an
//! `Arc<dyn ScoringSpec>` and the engine exposes a
//! [`ScoringRegistry`](crate::registry::ScoringRegistry) that resolves
//! wire-level `(name, params)` selectors — including families registered at
//! runtime by embedding code. Mutations ([`Engine::append_rows`],
//! [`Engine::drop_relation`]) bump the target relation's epoch, which the
//! cache key incorporates, so a stale memoised result can never be served.
//!
//! Most callers should not drive `Engine` directly but go through
//! [`crate::session::Session`], which speaks the versioned `prj-api`
//! request/response protocol.

use crate::cache::{CacheKey, CacheMetrics, CachedExecution, ResultCache, UnitCache, UnitKey};
use crate::catalog::{Catalog, CatalogError, CatalogRelation, MutationOutcome, RelationId};
use crate::compactor::Compactor;
use crate::executor::Executor;
use crate::obs::{EngineObs, QueryTrace};
use crate::planner::{Plan, Planner, PlannerConfig};
use crate::registry::ScoringRegistry;
use crate::sharding::ShardingPolicy;
use crate::stats::{EngineStats, EngineStatsSnapshot, QueryRecord, UnitRecord};
use prj_access::{AccessKind, RelationStats};
use prj_api::ScoringSelector;
use prj_core::{
    merge_shared, Algorithm, CertifiedMerge, EuclideanLogScore, PrjError, Problem, ProblemBuilder,
    RankJoinResult, RunMetrics, ScoredCombination, ScoringSpec, StreamingRun, TrajectoryPoint,
};
use prj_geometry::Vector;
use prj_obs::{Recorder, Sample, SpanGuard, SpanId, TraceClass, TraceId};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Capacity of a stream's in-flight buffer: the producer runs at most this
/// many certified results ahead of the consumer (backpressure mirroring the
/// incremental pulling model).
const STREAM_BUFFER: usize = 8;

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The underlying operator rejected the query.
    Prj(PrjError),
    /// The worker executing the query disappeared (it panicked).
    WorkerLost,
    /// A referenced relation is unknown, dropped, or the mutation was
    /// rejected by the catalog.
    Catalog(CatalogError),
    /// The requested scoring name is not in the registry.
    UnknownScoring(String),
    /// The scoring factory rejected the parameters.
    InvalidScoringParams {
        /// The scoring family.
        name: String,
        /// The factory's rejection message.
        reason: String,
    },
    /// A remote worker needed for an execution unit is unreachable and no
    /// replica could take over.
    WorkerUnavailable {
        /// The driving shard whose unit could not be executed.
        shard: usize,
        /// What went wrong on the last attempt.
        detail: String,
    },
    /// The cluster is in a degraded state: the request could not be
    /// completed exactly, and a partial answer would be a lie.
    Degraded(String),
    /// A worker replica's catalog epochs disagree with the coordinator
    /// snapshot that planned the unit; re-snapshot and retry.
    StaleReplica(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Prj(e) => write!(f, "operator error: {e}"),
            EngineError::WorkerLost => write!(f, "engine worker disappeared"),
            EngineError::Catalog(e) => write!(f, "catalog error: {e}"),
            EngineError::UnknownScoring(name) => {
                write!(f, "no scoring family registered as {name:?}")
            }
            EngineError::InvalidScoringParams { name, reason } => {
                write!(f, "invalid parameters for scoring {name:?}: {reason}")
            }
            EngineError::WorkerUnavailable { shard, detail } => {
                write!(f, "no worker available for driving shard {shard}: {detail}")
            }
            EngineError::Degraded(detail) => write!(f, "cluster degraded: {detail}"),
            EngineError::StaleReplica(detail) => write!(f, "stale replica: {detail}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PrjError> for EngineError {
    fn from(e: PrjError) -> Self {
        EngineError::Prj(e)
    }
}

impl From<CatalogError> for EngineError {
    fn from(e: CatalogError) -> Self {
        EngineError::Catalog(e)
    }
}

/// One top-k request against registered relations.
///
/// The scoring function is a shared [`ScoringSpec`] trait object, so specs
/// are not generic over the scoring family and any runtime-registered
/// family can be queried through the same engine.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The relations to join, in join order.
    pub relations: Vec<RelationId>,
    /// The query point `q`.
    pub query: Vector,
    /// Number of requested results `K`.
    pub k: usize,
    /// The aggregation function.
    pub scoring: Arc<dyn ScoringSpec>,
    /// The wire-expressible `(name, params)` identity of `scoring`, when
    /// known — what a remote backend ships to workers so their registries
    /// resolve the *same* function. `None` for ad-hoc scorings injected via
    /// [`QuerySpec::with_scoring`]; such queries execute locally only.
    pub selector: Option<ScoringSelector>,
    /// Sorted-access kind (Definition 2.1).
    pub access_kind: AccessKind,
    /// Pin a specific algorithm, or let the planner choose (`None`).
    pub algorithm: Option<Algorithm>,
    /// Sample the operator's bound-convergence trajectory every this-many
    /// sorted accesses (0 = off, the zero-cost default). Set by
    /// `EXPLAIN ANALYZE`; never part of the cache key (analyze bypasses
    /// the caches entirely).
    pub convergence: usize,
    /// The trace this query joins, when an upstream caller already opened
    /// one; `None` lets the engine generate a fresh trace id (if its
    /// recorder is enabled). Never part of the cache key.
    pub trace: Option<QueryTrace>,
}

impl QuerySpec {
    /// A distance-access top-k query under the paper's default scoring
    /// (Eq. 2 with unit weights).
    pub fn top_k(relations: Vec<RelationId>, query: Vector, k: usize) -> Self {
        QuerySpec {
            relations,
            query,
            k,
            scoring: Arc::new(EuclideanLogScore::default()),
            // The default scoring is the registry's "euclidean-log" with
            // default weights, so it stays remotely executable.
            selector: Some(ScoringSelector::named("euclidean-log")),
            access_kind: AccessKind::Distance,
            algorithm: None,
            convergence: 0,
            trace: None,
        }
    }

    /// Enables bound-convergence capture: the operator samples its
    /// (kth-score, bound) race every `every` sorted accesses.
    pub fn with_convergence(mut self, every: usize) -> Self {
        self.convergence = every;
        self
    }

    /// Joins an already-open trace: the query's root span becomes a child
    /// of `trace.parent` (a coordinator's dispatch span, say) instead of a
    /// trace root.
    pub fn with_trace(mut self, trace: QueryTrace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Pins the operator instantiation instead of consulting the planner.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Selects the sorted-access kind.
    pub fn with_access_kind(mut self, kind: AccessKind) -> Self {
        self.access_kind = kind;
        self
    }

    /// Replaces the scoring function with an ad-hoc instance. The spec
    /// loses its wire selector: the instance may not exist in any remote
    /// registry, so such queries are executed locally.
    pub fn with_scoring(mut self, scoring: impl ScoringSpec + 'static) -> Self {
        self.scoring = Arc::new(scoring);
        self.selector = None;
        self
    }

    /// Replaces the scoring function with an already-shared instance (e.g.
    /// one resolved from the [`ScoringRegistry`]). Clears the wire selector
    /// — use [`QuerySpec::with_selector`] to restore one.
    pub fn with_shared_scoring(mut self, scoring: Arc<dyn ScoringSpec>) -> Self {
        self.scoring = scoring;
        self.selector = None;
        self
    }

    /// Declares the wire-expressible registry identity of the current
    /// scoring, re-enabling remote execution for it. The caller must
    /// guarantee the selector resolves to an *identical* function on every
    /// worker's registry.
    pub fn with_selector(mut self, selector: ScoringSelector) -> Self {
        self.selector = Some(selector);
        self
    }
}

/// The outcome of one engine query.
#[derive(Debug, Clone)]
pub struct EngineResult {
    execution: Arc<CachedExecution>,
    /// Whether the result was served from the cache.
    pub from_cache: bool,
    /// End-to-end latency observed by the engine.
    pub latency: Duration,
    /// How many execution units actually ran for this query (0 on a cache
    /// hit; on a partitioned miss, unit-cache hits are excluded). This is
    /// what lets a standing query assert that a single-shard append
    /// re-executed exactly one unit.
    pub fresh_units: usize,
}

impl EngineResult {
    /// The top-K combinations, best first.
    pub fn combinations(&self) -> &[ScoredCombination] {
        &self.execution.result.combinations
    }

    /// The full operator result (depths, metrics).
    pub fn result(&self) -> &RankJoinResult {
        &self.execution.result
    }

    /// The plan the result was produced with.
    pub fn plan(&self) -> &Plan {
        &self.execution.plan
    }
}

/// A handle to an in-flight query submitted to the pool.
#[derive(Debug)]
pub struct QueryTicket {
    receiver: Receiver<Result<EngineResult, EngineError>>,
}

impl QueryTicket {
    /// Blocks until the result is available.
    pub fn wait(self) -> Result<EngineResult, EngineError> {
        self.receiver.recv().unwrap_or(Err(EngineError::WorkerLost))
    }
}

enum StreamInner {
    /// Replaying a cached execution.
    Replay {
        execution: Arc<CachedExecution>,
        cursor: usize,
    },
    /// Receiving from a live incremental run on a worker thread. The
    /// producer sends `Err` if it panics, so a failed run is
    /// distinguishable from a completed one.
    Live(Receiver<Result<ScoredCombination, EngineError>>),
}

/// A streaming query: results are pulled one at a time, each produced with
/// only as many sorted accesses as its certification required.
pub struct ResultStream {
    inner: StreamInner,
    /// The plan the stream runs under.
    pub plan: Plan,
    /// Whether the stream replays a cached execution.
    pub from_cache: bool,
    error: Option<EngineError>,
}

impl ResultStream {
    /// The next certified result, best first; `None` once the top-K is
    /// exhausted. On a live stream this blocks while the worker performs the
    /// accesses the next result needs.
    ///
    /// `None` means either clean completion or a failed run — check
    /// [`ResultStream::error`] to tell them apart before treating the
    /// drained rows as the full top-K.
    pub fn next_result(&mut self) -> Option<ScoredCombination> {
        match &mut self.inner {
            StreamInner::Replay { execution, cursor } => {
                let combo = execution.result.combinations.get(*cursor).cloned();
                *cursor += combo.is_some() as usize;
                combo
            }
            StreamInner::Live(receiver) => match receiver.recv() {
                Ok(Ok(combo)) => Some(combo),
                Ok(Err(e)) => {
                    self.error = Some(e);
                    None
                }
                Err(_) => None,
            },
        }
    }

    /// The error that terminated the stream, if the producer failed instead
    /// of completing.
    pub fn error(&self) -> Option<&EngineError> {
        self.error.as_ref()
    }
}

/// Everything a [`RemoteUnitBackend`] needs to ship one execution unit to
/// a worker process: the coordinator snapshot's identity (relation ids +
/// epoch vectors), the query, and the *pinned* per-unit plan — the worker
/// replays exactly this plan, so distributed execution is bit-identical to
/// local execution by construction.
#[derive(Debug, Clone)]
pub struct RemoteUnitCall {
    /// The relations to join, in join order (registration ids; replicated
    /// catalogs assign the same ids as the coordinator).
    pub relations: Vec<RelationId>,
    /// Per-relation epoch vectors of the snapshot this unit was planned
    /// from; the worker must refuse to execute at any other epochs.
    pub epochs: Vec<Vec<u64>>,
    /// Index (into `relations`) of the driving relation.
    pub drive: usize,
    /// The driving-relation shard this unit covers.
    pub shard: usize,
    /// The query point.
    pub query: Vector,
    /// The global `K`.
    pub k: usize,
    /// The scoring's registry identity.
    pub selector: ScoringSelector,
    /// Sorted-access kind.
    pub access_kind: AccessKind,
    /// The planned operator instantiation.
    pub algorithm: Algorithm,
    /// The planned LP dominance-test period.
    pub dominance_period: Option<usize>,
    /// Bound-convergence sampling stride (0 = off); the worker replays it
    /// so `EXPLAIN ANALYZE` profiles cover remote units too.
    pub convergence: usize,
    /// The trace to execute under and the coordinator-side `unit` span the
    /// worker's spans should stitch beneath; `None` when tracing is off.
    pub trace: Option<(TraceId, SpanId)>,
}

/// What kind of catalog mutation a [`MutationObserver`] is told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Tuples were appended to the relation.
    Append,
    /// The relation was dropped.
    Drop,
}

/// One committed catalog mutation, as seen by a [`MutationObserver`].
#[derive(Debug, Clone)]
pub struct MutationEvent {
    /// Append or drop.
    pub kind: MutationKind,
    /// The catalog's report: relation id, new epoch, cardinality, and the
    /// shards the mutation touched — exactly what subscription
    /// invalidation keys on.
    pub outcome: MutationOutcome,
    /// The trace and `mutation` span the mutation was recorded under, when
    /// the engine's recorder is live. Downstream work triggered by this
    /// mutation (a subscription's `notify` span) parents here, so a feed
    /// update is attributable to the ingest that caused it.
    pub trace: Option<(TraceId, SpanId)>,
}

/// A hook observing every committed catalog mutation, registered with
/// [`Engine::add_mutation_observer`].
///
/// Observers fire *after* the mutation is visible (catalog slot published,
/// result- and unit-cache entries invalidated), on the mutating thread —
/// a re-query issued from inside the callback sees the new data. Keep the
/// callback cheap (hand off to a channel); it runs under no engine lock
/// but it does extend every mutation's latency.
pub trait MutationObserver: Send + Sync {
    /// Observes one committed mutation.
    fn mutation(&self, event: &MutationEvent);
}

/// A pluggable executor for shipping execution units to remote worker
/// processes. Installed with [`Engine::set_remote_backend`]; `prj-cluster`
/// provides the TCP implementation (pooled persistent connections over the
/// `prj/2` wire protocol, replica failover).
///
/// Contract: [`RemoteUnitBackend::execute`] either returns the *complete,
/// certified* unit result — bit-identical to what running the same plan
/// locally would produce — or a typed error
/// ([`EngineError::WorkerUnavailable`] / [`EngineError::StaleReplica`] /
/// [`EngineError::Degraded`]). Silently truncated results are forbidden;
/// the merge machinery has no way to detect them.
pub trait RemoteUnitBackend: Send + Sync {
    /// The topology generation, folded into every cache key so entries
    /// computed under an older worker layout become unreachable after a
    /// failover or rebalance.
    fn generation(&self) -> u64;

    /// `true` when units of this driving shard should be executed
    /// remotely; `false` falls back to local execution.
    fn routes(&self, shard: usize) -> bool;

    /// Executes one unit remotely, returning its rehydrated result.
    fn execute(&self, call: &RemoteUnitCall) -> Result<RankJoinResult, EngineError>;
}

/// Configuration builder for [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    threads: usize,
    cache_capacity: usize,
    unit_cache_capacity: usize,
    planner: PlannerConfig,
    sharding: ShardingPolicy,
    trace_capacity: usize,
    slow_query_threshold: Option<Duration>,
    delta_threshold: usize,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            cache_capacity: 1024,
            unit_cache_capacity: 4096,
            planner: PlannerConfig::default(),
            sharding: ShardingPolicy::default(),
            trace_capacity: 4096,
            slow_query_threshold: None,
            delta_threshold: 0,
        }
    }
}

impl EngineBuilder {
    /// Number of worker threads (default: available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Result-cache capacity in entries (default 1024; 0 disables caching).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Per-shard unit-cache capacity in entries (default 4096; 0 disables
    /// it). Only consulted for partitioned (sharded) batch executions; it
    /// is what lets a single-shard epoch bump re-execute one unit instead
    /// of the whole query.
    pub fn unit_cache_capacity(mut self, capacity: usize) -> Self {
        self.unit_cache_capacity = capacity;
        self
    }

    /// Planner thresholds.
    pub fn planner_config(mut self, config: PlannerConfig) -> Self {
        self.planner = config;
        self
    }

    /// Number of spatial shards every relation is partitioned into
    /// (default 1 = unsharded). Sharding is engine-internal: queries and
    /// results are identical for every shard count; only ingest isolation,
    /// parallelism and the stats breakdown change.
    ///
    /// # Panics
    /// Panics when `shards` is 0.
    pub fn shards(mut self, shards: usize) -> Self {
        self.sharding = ShardingPolicy::new(shards);
        self
    }

    /// Full control over the sharding policy (shard count + grid cell).
    pub fn sharding_policy(mut self, policy: ShardingPolicy) -> Self {
        self.sharding = policy;
        self
    }

    /// How many finished spans the engine's trace ring retains (default
    /// 4096). 0 disables tracing entirely: every span guard becomes a
    /// no-op with no allocation — the configuration the
    /// instrumentation-overhead bench lane measures against.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Queries slower than this dump their trace to stderr (default: off).
    pub fn slow_query_threshold(mut self, threshold: Option<Duration>) -> Self {
        self.slow_query_threshold = threshold;
        self
    }

    /// Delta ingest-lane threshold (default 0 = off). With N > 0, appends
    /// stop rebuilding touched shards and instead publish into per-shard
    /// delta buffers in O(delta); a background compactor thread folds a
    /// delta into its shard's indexes once it reaches N tuples (and
    /// flushes smaller deltas periodically). Query results are identical
    /// at every threshold — only the cost model of `AppendTuples` changes.
    pub fn delta_threshold(mut self, threshold: usize) -> Self {
        self.delta_threshold = threshold;
        self
    }

    /// Builds the engine (scoring registry pre-loaded with the built-ins).
    pub fn build(self) -> Engine {
        let catalog = Arc::new(Catalog::with_policy_and_delta(
            self.sharding,
            self.delta_threshold,
        ));
        let obs = Arc::new(EngineObs::new(
            self.trace_capacity,
            self.slow_query_threshold,
        ));
        let compactor = (self.delta_threshold > 0).then(|| {
            Arc::new(Compactor::spawn(
                Arc::clone(&catalog),
                self.delta_threshold,
                &obs,
            ))
        });
        Engine {
            catalog,
            executor: Executor::new(self.threads),
            cache: Arc::new(ResultCache::new(self.cache_capacity)),
            unit_cache: Arc::new(UnitCache::new(self.unit_cache_capacity)),
            stats: Arc::new(EngineStats::new()),
            planner: Planner::with_config(self.planner),
            registry: Arc::new(ScoringRegistry::with_builtins()),
            remote: RwLock::new(None),
            observers: RwLock::new(Vec::new()),
            obs,
            compactor,
        }
    }
}

/// One partitioned execution unit: shard `shard` of the driving relation
/// joined against whole-relation merged views of the others, with its own
/// per-shard plan.
struct ExecutionUnit {
    shard: usize,
    plan: Plan,
    problem: Problem<Arc<dyn ScoringSpec>>,
}

/// Summarises per-unit plans into the plan reported for the whole query.
fn merged_plan(units: &[ExecutionUnit]) -> Plan {
    if units.len() == 1 {
        return units[0].plan.clone();
    }
    let per_unit: Vec<String> = units
        .iter()
        .map(|u| format!("s{}:{}", u.shard, u.plan.algorithm.id()))
        .collect();
    Plan {
        algorithm: units[0].plan.algorithm,
        dominance_period: units[0].plan.dominance_period,
        rationale: format!(
            "partitioned over {} driving shards ({})",
            units.len(),
            per_unit.join(", ")
        ),
    }
}

/// The owned, `Send` bundle one query's unit executions share: where to
/// look up memoised units, where to ship remote ones, and the key
/// ingredients both need. Built from the same snapshot the units were
/// prepared from, so its epochs always describe exactly the data a unit
/// reads.
struct UnitExecContext {
    unit_cache: Arc<UnitCache>,
    /// Unit caching is only worthwhile for partitioned executions; a
    /// single-unit query is covered by the whole-query cache.
    use_unit_cache: bool,
    backend: Option<Arc<dyn RemoteUnitBackend>>,
    relations: Vec<RelationId>,
    epochs: Vec<Vec<u64>>,
    drive: usize,
    query: Arc<Vector>,
    k: usize,
    access_kind: AccessKind,
    selector: Option<ScoringSelector>,
    scoring_fingerprint: u64,
    generation: u64,
    /// Bound-convergence sampling stride, forwarded to remote units so
    /// their trajectories come back over the wire.
    convergence: usize,
    recorder: Arc<Recorder>,
    /// The query's trace plus the root span unit spans parent under.
    trace: Option<(TraceId, SpanId)>,
}

/// How one unit's result was obtained.
///
/// The result stays behind the `Arc` the unit cache hands out (or the one a
/// fresh run is wrapped in before insertion): a cache hit never deep-copies
/// the memoised combinations, and the merge reads the parts by reference
/// ([`prj_core::merge_shared`]).
struct UnitOutcome {
    shard: usize,
    result: Arc<RankJoinResult>,
    elapsed: Duration,
    /// `false` when the result came out of the unit cache (no accesses
    /// were performed for it this query).
    fresh: bool,
    /// `true` when the unit was shipped to a remote worker.
    remote: bool,
}

impl UnitExecContext {
    fn unit_key(&self, shard: usize, plan: &Plan) -> UnitKey {
        let drive_epoch = self.epochs[self.drive]
            .get(shard)
            .copied()
            .unwrap_or_default();
        let others = self
            .relations
            .iter()
            .zip(self.epochs.iter())
            .enumerate()
            .filter(|(idx, _)| *idx != self.drive)
            .map(|(_, (id, epochs))| (id.index(), epochs.clone()))
            .collect();
        UnitKey::new(
            (self.relations[self.drive].index(), shard, drive_epoch),
            others,
            &self.query,
            self.k,
            self.access_kind,
            plan,
            self.scoring_fingerprint,
            self.generation,
        )
    }

    /// Begins this query's `unit` span for `shard`, parented under the
    /// query's root span (`None` when the query carries no trace).
    fn unit_span(&self, shard: usize) -> Option<SpanGuard> {
        let (trace, parent) = self.trace?;
        let mut span = self.recorder.child(trace, parent, "unit");
        span.attr("shard", shard);
        Some(span)
    }

    /// Executes one unit: unit-cache lookup, then remote dispatch when the
    /// backend routes the shard, local execution otherwise.
    fn execute(&self, unit: ExecutionUnit) -> Result<UnitOutcome, EngineError> {
        let mut unit = unit;
        let mut span = self.unit_span(unit.shard);
        let key = self
            .use_unit_cache
            .then(|| self.unit_key(unit.shard, &unit.plan));
        if let Some(key) = &key {
            if let Some(hit) = self.unit_cache.get(key) {
                if let Some(mut span) = span {
                    span.attr("cache", "hit");
                    span.finish();
                }
                return Ok(UnitOutcome {
                    shard: unit.shard,
                    result: hit,
                    elapsed: Duration::ZERO,
                    fresh: false,
                    remote: false,
                });
            }
        }
        let started = Instant::now();
        let remote = self.backend.as_ref().filter(|b| b.routes(unit.shard));
        let was_remote = remote.is_some();
        if let Some(span) = span.as_mut() {
            span.attr("remote", was_remote);
        }
        let result = match remote {
            Some(backend) => {
                let selector = self.selector.clone().ok_or_else(|| {
                    EngineError::Degraded(
                        "the query's scoring has no wire selector; it cannot be \
                         executed on remote workers"
                            .to_string(),
                    )
                })?;
                backend.execute(&RemoteUnitCall {
                    relations: self.relations.clone(),
                    epochs: self.epochs.clone(),
                    drive: self.drive,
                    shard: unit.shard,
                    query: (*self.query).clone(),
                    k: self.k,
                    selector,
                    access_kind: self.access_kind,
                    algorithm: unit.plan.algorithm,
                    dominance_period: unit.plan.dominance_period,
                    convergence: self.convergence,
                    // The worker's spans stitch under this unit span; a
                    // non-recording guard (disabled ring) sends nothing.
                    trace: span
                        .as_ref()
                        .filter(|s| s.recording())
                        .and_then(|s| self.trace.map(|(trace, _)| (trace, s.id()))),
                })?
            }
            None => unit
                .plan
                .algorithm
                .run(&mut unit.problem)
                .map_err(EngineError::Prj)?,
        };
        let elapsed = started.elapsed();
        if let Some(mut span) = span {
            span.attr("sum_depths", result.sum_depths());
            span.finish();
        }
        let result = Arc::new(result);
        if let Some(key) = key {
            self.unit_cache.insert(key, Arc::clone(&result));
        }
        Ok(UnitOutcome {
            shard: unit.shard,
            result,
            elapsed,
            fresh: true,
            remote: was_remote,
        })
    }
}

/// Executes every unit — in parallel when there is more than one —
/// returning the per-unit outcomes in completion-independent unit order.
fn fan_out_units(
    units: Vec<ExecutionUnit>,
    ctx: &UnitExecContext,
) -> Vec<Result<UnitOutcome, EngineError>> {
    if units.len() == 1 {
        let unit = units.into_iter().next().expect("one unit");
        vec![ctx.execute(unit)]
    } else {
        // Units are pure CPU work over disjoint shard structures — or
        // blocking network calls to distinct workers; scoped threads keep
        // the fan-out off the engine's worker pool so a sharded query can
        // never deadlock a small pool against itself.
        std::thread::scope(|scope| {
            let handles: Vec<_> = units
                .into_iter()
                .map(|unit| scope.spawn(move || ctx.execute(unit)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("unit thread panicked"))
                .collect()
        })
    }
}

/// Runs every unit — in parallel when there is more than one — and merges
/// the certified per-unit results into the exact global top-`k`. Returns
/// the merged result plus one [`UnitRecord`] per unit that *freshly* ran
/// (sparse: empty driving slices and unit-cache hits contribute none).
fn run_units(
    units: Vec<ExecutionUnit>,
    k: usize,
    ctx: &UnitExecContext,
) -> Result<(RankJoinResult, Vec<UnitRecord>), EngineError> {
    let outcomes = fan_out_units(units, ctx);
    let mut parts: Vec<Arc<RankJoinResult>> = Vec::with_capacity(outcomes.len());
    let mut unit_records = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        let outcome = outcome?;
        if outcome.fresh {
            unit_records.push(UnitRecord {
                shard: outcome.shard,
                sum_depths: outcome.result.sum_depths(),
                latency: outcome.elapsed,
            });
        }
        parts.push(outcome.result);
    }
    Ok((merge_unit_parts(k, parts, ctx), unit_records))
}

/// Merges certified per-unit results into the exact global top-`k`
/// (recording a `merge` span when several parts recombine).
fn merge_unit_parts(
    k: usize,
    mut parts: Vec<Arc<RankJoinResult>>,
    ctx: &UnitExecContext,
) -> RankJoinResult {
    if parts.len() == 1 {
        // A freshly run, uncached unit holds the only reference and is
        // moved out without copying; a unit-cache hit stays shared with
        // the cache and must be cloned.
        Arc::try_unwrap(parts.pop().expect("one part")).unwrap_or_else(|arc| (*arc).clone())
    } else {
        let n = parts.len();
        let span = ctx
            .trace
            .map(|(trace, parent)| ctx.recorder.child(trace, parent, "merge"));
        // Merge by reference: only the combinations that actually enter
        // the global top-k are cloned out of the (possibly cache-shared)
        // per-unit results.
        let merged = merge_shared(k, parts.iter().map(|p| p.as_ref()));
        if let Some(mut span) = span {
            span.attr("parts", n);
            span.finish();
        }
        merged
    }
}

/// Everything a live streaming producer needs at completion: where to cache
/// the drained execution and how to account/trace it.
struct StreamFinish {
    cache: Arc<ResultCache>,
    stats: Arc<EngineStats>,
    obs: Arc<EngineObs>,
    key: CacheKey,
    plan: Plan,
    relations: Vec<usize>,
    trace: Option<TraceId>,
    root: Option<SpanGuard>,
}

impl StreamFinish {
    /// Records the fully drained run and caches its execution.
    fn complete(self, result: RankJoinResult, units: Vec<UnitRecord>) {
        // The operator tracks its active stepping time, so the recorded
        // latency measures engine work, not how slowly the consumer
        // drained the stream.
        let latency = result.metrics.total_time;
        let record = QueryRecord {
            latency,
            sum_depths: result.stats.sum_depths(),
            bound_updates: result.metrics.bound_updates,
            from_cache: false,
            units,
            relation_depths: relation_depths(&self.relations, &result),
        };
        self.obs.record_query(&record);
        self.stats.record(record);
        if let Some(mut root) = self.root {
            root.attr("cache", "miss");
            root.attr("sum_depths", result.sum_depths());
            root.finish();
        }
        self.obs.query_finished(self.trace, latency);
        self.cache.insert(
            self.key,
            Arc::new(CachedExecution {
                result,
                plan: self.plan,
            }),
        );
    }
}

/// The `(relation index, depth)` pairs of one executed result — what the
/// `prj_relation_depth_total` metric series is fed with.
fn relation_depths(relations: &[usize], result: &RankJoinResult) -> Vec<(usize, u64)> {
    relations
        .iter()
        .zip(result.stats.depths())
        .map(|(rel, depth)| (*rel, *depth as u64))
        .collect()
}

/// Bound-convergence sampling stride EXPLAIN ANALYZE applies when the
/// query didn't pin one of its own: fine enough to show the bound closing
/// on the kth score, coarse enough to stay far under the trajectory cap on
/// realistic depths.
pub const ANALYZE_CONVERGENCE_EVERY: usize = 16;

/// One relation's planner inputs, as EXPLAIN reports them: the statistics
/// the driving choice consumed and the discounted depth estimate derived
/// from them (`cardinality / (1 + max(skew, 0))`).
#[derive(Debug, Clone)]
pub struct RelationPlanData {
    /// Relation name.
    pub name: String,
    /// Tuple count at planning time.
    pub cardinality: u64,
    /// Score skewness the planner discounted the expected depth by.
    pub skew: f64,
    /// The discounted-depth estimate; the planner drives the relation
    /// maximising this.
    pub discount: f64,
}

/// One execution unit's plan, as EXPLAIN reports it.
#[derive(Debug, Clone)]
pub struct UnitPlanData {
    /// Driving-relation shard this unit enumerates.
    pub shard: usize,
    /// The per-unit plan (algorithm, dominance period, rationale).
    pub plan: Plan,
}

/// One executed unit's profile (EXPLAIN ANALYZE only).
#[derive(Debug, Clone)]
pub struct UnitProfileData {
    /// Driving-relation shard this unit enumerated.
    pub shard: usize,
    /// What the unit read: `"fresh"` (compacted base only) or
    /// `"delta-merged"` (its driving shard still carried unfolded deltas).
    /// ANALYZE bypasses the unit cache, so `"hit"` never appears here —
    /// the profile always measures real work.
    pub cache: &'static str,
    /// `true` when the unit ran on a remote worker.
    pub remote: bool,
    /// Sorted accesses this unit performed (its `sumDepths` share).
    pub depths: u64,
    /// Wall-clock unit latency in µs.
    pub micros: u64,
    /// The sampled bound-convergence trajectory of the unit's run.
    pub trajectory: Vec<TrajectoryPoint>,
}

/// The executed half of an EXPLAIN ANALYZE report: the merged result (rows
/// bit-identical to what a plain query would return) plus per-unit
/// profiles whose depths sum exactly to `total_sum_depths`.
#[derive(Debug)]
pub struct AnalyzeData {
    /// The merged certified top-k result.
    pub result: RankJoinResult,
    /// End-to-end latency of the analyzed execution.
    pub latency: Duration,
    /// Total sorted accesses across all units (`Σ units[i].depths`).
    pub total_sum_depths: u64,
    /// Per-unit execution profiles, in unit order.
    pub units: Vec<UnitProfileData>,
}

/// An EXPLAIN / EXPLAIN ANALYZE report at the engine level (the session
/// layer converts it to the wire shape).
#[derive(Debug)]
pub struct ExplainData {
    /// The merged whole-query plan.
    pub plan: Plan,
    /// Index (into the query's relation list) of the driving relation.
    pub drive: usize,
    /// The k the query runs at.
    pub k: usize,
    /// Planner inputs per relation, in the query's relation order.
    pub relations: Vec<RelationPlanData>,
    /// Per-unit plans, in unit order.
    pub units: Vec<UnitPlanData>,
    /// Present under ANALYZE: the profiled execution.
    pub analyzed: Option<AnalyzeData>,
}

/// A concurrent query-serving engine over the ProxRJ operator.
pub struct Engine {
    catalog: Arc<Catalog>,
    executor: Executor,
    cache: Arc<ResultCache>,
    unit_cache: Arc<UnitCache>,
    stats: Arc<EngineStats>,
    planner: Planner,
    registry: Arc<ScoringRegistry>,
    /// The remote execution backend, when this engine coordinates a
    /// cluster; `None` executes everything locally.
    remote: RwLock<Option<Arc<dyn RemoteUnitBackend>>>,
    /// Mutation observers, fired after every committed catalog mutation
    /// (the push path standing queries hang off).
    observers: RwLock<Vec<Arc<dyn MutationObserver>>>,
    /// The observability bundle: span recorder + metric handles.
    obs: Arc<EngineObs>,
    /// The background delta compactor (None when the delta lane is off).
    compactor: Option<Arc<Compactor>>,
}

impl Drop for Engine {
    fn drop(&mut self) {
        if let Some(compactor) = &self.compactor {
            compactor.shutdown();
        }
    }
}

impl Engine {
    /// An engine with default settings.
    pub fn new() -> Self {
        EngineBuilder::default().build()
    }

    /// A configuration builder.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Registers a relation in the catalog (builds its shared indexes once).
    pub fn register(&self, name: impl AsRef<str>, tuples: Vec<prj_access::Tuple>) -> RelationId {
        self.catalog.register(name, tuples)
    }

    /// Appends pre-tagged tuples to a relation; bumps its epoch and purges
    /// the now-unreachable cache entries. Whole-query entries reading the
    /// relation all die; per-shard unit entries survive unless the append
    /// landed on their driving shard (or they read the relation whole).
    pub fn append(
        &self,
        id: RelationId,
        tuples: Vec<prj_access::Tuple>,
    ) -> Result<MutationOutcome, EngineError> {
        let outcome = self.catalog.append(id, tuples)?;
        self.cache.invalidate_relation(id.index());
        self.unit_cache
            .invalidate_shards(id.index(), &outcome.touched_shards);
        self.notify_compactor();
        Ok(self.committed(MutationKind::Append, outcome))
    }

    /// Appends raw `(location, score)` rows (tuple ids assigned under the
    /// catalog lock); bumps the epoch and purges stale cache entries.
    pub fn append_rows(
        &self,
        id: RelationId,
        rows: Vec<(Vector, f64)>,
    ) -> Result<MutationOutcome, EngineError> {
        let outcome = self.catalog.append_rows(id, rows)?;
        self.cache.invalidate_relation(id.index());
        self.unit_cache
            .invalidate_shards(id.index(), &outcome.touched_shards);
        self.notify_compactor();
        Ok(self.committed(MutationKind::Append, outcome))
    }

    /// Wakes the background compactor after a committed append (no-op when
    /// the delta lane is off).
    fn notify_compactor(&self) {
        if let Some(compactor) = &self.compactor {
            compactor.notify();
        }
    }

    /// The background delta compactor (`None` when the engine was built
    /// with a zero [`EngineBuilder::delta_threshold`]). Exposes the
    /// pause/step/resume hooks the mutation-torture tests interleave
    /// compactions with.
    pub fn compactor(&self) -> Option<&Arc<Compactor>> {
        self.compactor.as_ref()
    }

    /// Drops a relation; bumps its epoch and purges stale cache entries.
    pub fn drop_relation(&self, id: RelationId) -> Result<MutationOutcome, EngineError> {
        let outcome = self.catalog.drop_relation(id)?;
        self.cache.invalidate_relation(id.index());
        self.unit_cache.invalidate_relation(id.index());
        Ok(self.committed(MutationKind::Drop, outcome))
    }

    /// Registers a mutation observer; every later committed mutation is
    /// reported to it. Observers cannot be removed individually — they live
    /// as long as the engine (drop the subscription state behind an `Arc`
    /// and make the callback a no-op to retire one).
    pub fn add_mutation_observer(&self, observer: Arc<dyn MutationObserver>) {
        self.observers
            .write()
            .expect("observer lock")
            .push(observer);
    }

    /// Post-commit tail of every mutation: records the `mutation` span
    /// (when tracing) and fires the observers with the outcome plus the
    /// span identity their downstream spans should parent under.
    fn committed(&self, kind: MutationKind, outcome: MutationOutcome) -> MutationOutcome {
        let recorder = self.obs.recorder();
        let trace = if recorder.enabled() {
            let trace = TraceId::generate();
            let mut span = recorder.span(trace, "mutation");
            span.attr(
                "kind",
                match kind {
                    MutationKind::Append => "append",
                    MutationKind::Drop => "drop",
                },
            );
            span.attr("relation", outcome.id.index());
            span.attr("epoch", outcome.epoch);
            span.attr("shards", outcome.touched_shards.len());
            let id = span.id();
            span.finish();
            Some((trace, id))
        } else {
            None
        };
        let observers = self.observers.read().expect("observer lock").clone();
        if !observers.is_empty() {
            let event = MutationEvent {
                kind,
                outcome: outcome.clone(),
                trace,
            };
            for observer in &observers {
                observer.mutation(&event);
            }
        }
        outcome
    }

    /// Installs the remote execution backend: from now on, execution units
    /// whose driving shard the backend routes are shipped to workers
    /// instead of running locally, and every cache key carries the
    /// backend's topology generation.
    pub fn set_remote_backend(&self, backend: Arc<dyn RemoteUnitBackend>) {
        *self.remote.write().expect("remote backend lock") = Some(backend);
    }

    /// Removes the remote backend; execution falls back to local.
    pub fn clear_remote_backend(&self) {
        *self.remote.write().expect("remote backend lock") = None;
    }

    fn remote_backend(&self) -> Option<Arc<dyn RemoteUnitBackend>> {
        self.remote.read().expect("remote backend lock").clone()
    }

    /// The current cluster topology generation (0 without a backend).
    pub fn topology_generation(&self) -> u64 {
        self.remote_backend().map_or(0, |b| b.generation())
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The scoring registry; register new families here at any time.
    pub fn scoring_registry(&self) -> &Arc<ScoringRegistry> {
        &self.registry
    }

    /// Number of executor worker threads.
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// Number of spatial shards per relation (1 = unsharded).
    pub fn shards(&self) -> usize {
        self.catalog.policy().shards()
    }

    /// Engine-level statistics.
    pub fn stats(&self) -> EngineStatsSnapshot {
        self.stats.snapshot()
    }

    /// Result-cache counters.
    pub fn cache_metrics(&self) -> CacheMetrics {
        self.cache.metrics()
    }

    /// Per-shard unit-cache counters.
    pub fn unit_cache_metrics(&self) -> CacheMetrics {
        self.unit_cache.metrics()
    }

    /// The observability bundle (span recorder + metrics registry).
    pub fn obs(&self) -> &Arc<EngineObs> {
        &self.obs
    }

    /// The engine's span recorder.
    pub fn recorder(&self) -> &Arc<Recorder> {
        self.obs.recorder()
    }

    /// A flat snapshot of every metric series this engine maintains.
    pub fn metrics_samples(&self) -> Vec<Sample> {
        self.obs.registry().snapshot()
    }

    /// The engine's metrics in Prometheus text exposition format.
    pub fn metrics_render(&self) -> String {
        prj_obs::render_prometheus(&self.metrics_samples())
    }

    /// Resolves the trace this query runs under and opens its root `query`
    /// span: the spec's own trace context when the caller provided one
    /// (cluster dispatch), a freshly generated trace otherwise — but only
    /// while the recorder is live, so a disabled ring costs nothing.
    fn begin_query(&self, spec: &QuerySpec) -> (Option<TraceId>, Option<SpanGuard>) {
        let recorder = self.obs.recorder();
        if !recorder.enabled() {
            return (None, None);
        }
        let qt = spec.trace.unwrap_or_else(|| QueryTrace {
            trace: TraceId::generate(),
            parent: None,
        });
        let mut span = match qt.parent {
            Some(parent) => recorder.child(qt.trace, parent, "query"),
            None => recorder.span(qt.trace, "query"),
        };
        span.attr("k", spec.k);
        span.attr("relations", spec.relations.len());
        (Some(qt.trace), Some(span))
    }

    /// Snapshots the referenced relations and derives the cache key *from
    /// that snapshot*, so the epochs in the key always describe exactly the
    /// data the run would read (no key/snapshot race around mutations).
    fn snapshot_and_key(
        &self,
        spec: &QuerySpec,
    ) -> Result<(Vec<Arc<CatalogRelation>>, CacheKey), EngineError> {
        // Reject the zero-relation query before anything indexes into the
        // snapshot: the typed error `ProblemBuilder` used to produce, not a
        // panic.
        if spec.relations.is_empty() {
            return Err(EngineError::Prj(PrjError::NoRelations));
        }
        let snapshot = self.catalog.snapshot(&spec.relations)?;
        Self::validate_dimensions(spec, &snapshot)?;
        let relations = spec
            .relations
            .iter()
            .zip(snapshot.iter())
            .map(|(id, rel)| (id.index(), rel.epochs()))
            .collect();
        let key = CacheKey::new(
            relations,
            &spec.query,
            spec.k,
            spec.access_kind,
            spec.algorithm,
            spec.scoring.cache_fingerprint(),
            self.topology_generation(),
        );
        Ok((snapshot, key))
    }

    /// Validates the query's dimensionality up front: catalog views skip
    /// `ProblemBuilder`'s per-tuple checks (they would be O(n) per query),
    /// so without this a mismatched query would panic a worker instead of
    /// returning a typed error.
    fn validate_dimensions(
        spec: &QuerySpec,
        snapshot: &[Arc<CatalogRelation>],
    ) -> Result<(), EngineError> {
        for relation in snapshot {
            let stats = relation.stats();
            if stats.cardinality > 0 && stats.dimensions != spec.query.dim() {
                return Err(EngineError::Prj(PrjError::DimensionMismatch {
                    expected: stats.dimensions,
                    found: spec.query.dim(),
                }));
            }
        }
        Ok(())
    }

    /// Plans and builds the partitioned execution units for one query.
    ///
    /// The combination space factorises over the *driving* relation's
    /// shards — chosen by the planner's estimated-`sumDepths` cost model
    /// ([`Planner::choose_driving`]), not blindly "first" — so unit `j`
    /// joins shard `j` of the driving relation with whole-relation merged
    /// views of the others, every combination is produced by exactly one
    /// unit, and the per-unit top-K runs recombine exactly
    /// ([`prj_core::merge`]). Units whose driving shard is empty cannot
    /// produce a combination and are skipped. Each unit is planned from its
    /// own statistics — its driving shard's [`RelationStats`] plus the
    /// other relations' combined stats — so a skewed shard can run
    /// potential-adaptive while its siblings stay round-robin.
    ///
    /// Returns the driving relation index alongside the units.
    fn prepare_units(
        &self,
        spec: &QuerySpec,
        snapshot: &[Arc<CatalogRelation>],
    ) -> Result<(usize, Vec<ExecutionUnit>), EngineError> {
        let reducible = spec.scoring.euclidean_weights().is_some();
        // The query vector is cloned ONCE per query and shared behind an
        // `Arc` by every unit's problem and every relation view — not
        // re-cloned per unit (see `Problem::query_shared`).
        let query = Arc::new(spec.query.clone());
        // Whole-relation statistics, computed once and reused by both the
        // driving choice and every per-unit plan (the planner only ever
        // swaps the driving slot for the shard's own stats).
        let mut stats: Vec<RelationStats> = snapshot.iter().map(|r| r.stats()).collect();
        let drive = if snapshot.len() > 1 {
            self.planner.choose_driving(&stats)
        } else {
            0
        };
        let shards = snapshot[drive].num_shards();
        let nonempty: Vec<usize> = (0..shards)
            .filter(|&j| snapshot[drive].shard(j).stats().cardinality > 0)
            .collect();
        // An entirely empty driving relation still needs one unit so the
        // query produces a well-formed (empty) result with real metrics.
        let selected = if shards == 1 || nonempty.is_empty() {
            vec![0]
        } else {
            nonempty
        };
        // Non-Euclidean fallback: the per-query sort under the scoring's
        // own δ is done ONCE per non-driving relation and shared across all
        // units behind an Arc — each unit only gets its own O(1) cursor —
        // instead of every unit re-cloning and re-sorting the relation.
        let delta_sorted = if selected.len() > 1 {
            Self::delta_sorted_views(spec, snapshot, drive, reducible)
        } else {
            vec![None; snapshot.len()]
        };
        let units = selected
            .into_iter()
            .map(|j| {
                let plan = self.plan_unit(spec, snapshot, &mut stats, reducible, drive, j);
                Self::build_unit(
                    spec,
                    snapshot,
                    &query,
                    &delta_sorted,
                    reducible,
                    drive,
                    j,
                    plan,
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok((drive, units))
    }

    /// The shared per-query δ-sorted copies of the non-driving relations
    /// (non-Euclidean distance access only; `None` elsewhere).
    fn delta_sorted_views(
        spec: &QuerySpec,
        snapshot: &[Arc<CatalogRelation>],
        drive: usize,
        reducible: bool,
    ) -> Vec<Option<Arc<Vec<prj_access::Tuple>>>> {
        snapshot
            .iter()
            .enumerate()
            .map(|(idx, relation)| {
                let needed = idx != drive && spec.access_kind == AccessKind::Distance && !reducible;
                needed.then(|| {
                    let mut tuples = relation.all_tuples();
                    // The exact order `VecRelation::distance_sorted_by`
                    // would produce: δ ascending, ties by tuple id.
                    tuples.sort_by(|a, b| {
                        spec.scoring
                            .distance(&a.vector, &spec.query)
                            .total_cmp(&spec.scoring.distance(&b.vector, &spec.query))
                            .then(a.id.cmp(&b.id))
                    });
                    Arc::new(tuples)
                })
            })
            .collect()
    }

    /// The per-unit plan: pinned by the query, or chosen from the unit's
    /// own statistics (the driving slot's shard stats, the others whole).
    ///
    /// `stats` is the whole-relation statistics vector computed once in
    /// [`Self::prepare_units`]; the driving slot is swapped in place for
    /// the shard's own stats and restored, so planning a unit allocates
    /// nothing.
    fn plan_unit(
        &self,
        spec: &QuerySpec,
        snapshot: &[Arc<CatalogRelation>],
        stats: &mut [RelationStats],
        reducible: bool,
        drive: usize,
        shard: usize,
    ) -> Plan {
        match spec.algorithm {
            Some(algorithm) => Plan {
                algorithm,
                dominance_period: None,
                rationale: "algorithm pinned by the query".to_string(),
            },
            None => {
                let whole = stats[drive];
                if snapshot[drive].num_shards() > 1 {
                    stats[drive] = snapshot[drive].shard(shard).stats();
                }
                let plan = self.planner.plan(reducible, stats);
                stats[drive] = whole;
                plan
            }
        }
    }

    /// Builds one execution unit under an already-decided plan. Relations
    /// keep their client-given join order — only the *view* of the driving
    /// relation is narrowed to its shard — so member tuples of results come
    /// out in the same order at every driving choice.
    #[allow(clippy::too_many_arguments)]
    fn build_unit(
        spec: &QuerySpec,
        snapshot: &[Arc<CatalogRelation>],
        query: &Arc<Vector>,
        delta_sorted: &[Option<Arc<Vec<prj_access::Tuple>>>],
        reducible: bool,
        drive: usize,
        shard: usize,
        plan: Plan,
    ) -> Result<ExecutionUnit, EngineError> {
        let mut builder = ProblemBuilder::new(Arc::clone(query), Arc::clone(&spec.scoring))
            .k(spec.k)
            .access_kind(spec.access_kind)
            .dominance_period(plan.dominance_period)
            .convergence_every(spec.convergence);
        for (idx, relation) in snapshot.iter().enumerate() {
            let view = if idx == drive {
                // The driving relation contributes only its shard.
                match spec.access_kind {
                    AccessKind::Distance if reducible => {
                        relation.shard_distance_view(shard, Arc::clone(query))
                    }
                    AccessKind::Distance => {
                        relation.shard_distance_view_by(shard, &spec.scoring, &spec.query)
                    }
                    AccessKind::Score => relation.shard_score_view(shard),
                }
            } else {
                // Non-driving relations are read whole, through the
                // shard-merged globally sorted views.
                match spec.access_kind {
                    AccessKind::Distance if reducible => relation.distance_view(Arc::clone(query)),
                    // Non-Euclidean proximity: the shared R-trees' Euclidean
                    // frontiers would disagree with the scoring's own
                    // distance, so fall back to a per-query sort under δ —
                    // computed once in `prepare_units` when several units
                    // share it.
                    AccessKind::Distance => match &delta_sorted[idx] {
                        Some(sorted) => Box::new(prj_access::SharedOrderedRelation::new(
                            Arc::from(relation.name()),
                            Arc::clone(sorted),
                            AccessKind::Distance,
                            relation.stats().max_score,
                        )),
                        None => relation.distance_view_by(&spec.scoring, &spec.query),
                    },
                    AccessKind::Score => relation.score_view(),
                }
            };
            builder = builder.relation(view);
        }
        let problem = builder.build().map_err(EngineError::Prj)?;
        Ok(ExecutionUnit {
            shard,
            plan,
            problem,
        })
    }

    /// The shared execution context of one query's units, built from the
    /// same snapshot the units were prepared from.
    fn unit_context(
        &self,
        spec: &QuerySpec,
        snapshot: &[Arc<CatalogRelation>],
        drive: usize,
        trace: Option<(TraceId, SpanId)>,
    ) -> UnitExecContext {
        UnitExecContext {
            unit_cache: Arc::clone(&self.unit_cache),
            use_unit_cache: snapshot[drive].num_shards() > 1,
            backend: self.remote_backend(),
            relations: spec.relations.clone(),
            epochs: snapshot.iter().map(|r| r.epochs()).collect(),
            drive,
            query: Arc::new(spec.query.clone()),
            k: spec.k,
            access_kind: spec.access_kind,
            selector: spec.selector.clone(),
            scoring_fingerprint: spec.scoring.cache_fingerprint(),
            generation: self.topology_generation(),
            convergence: spec.convergence,
            recorder: Arc::clone(self.obs.recorder()),
            trace,
        }
    }

    /// Submits a query to the pool and returns a ticket to wait on.
    ///
    /// Cache hits and planning errors resolve the ticket immediately; misses
    /// run on a worker thread.
    pub fn submit(&self, spec: QuerySpec) -> QueryTicket {
        let started = Instant::now();
        let (sender, receiver) = sync_channel(1);
        let (snapshot, key) = match self.snapshot_and_key(&spec) {
            Ok(snapshot_and_key) => snapshot_and_key,
            Err(e) => {
                let _ = sender.send(Err(e));
                return QueryTicket { receiver };
            }
        };
        let (trace, mut root) = self.begin_query(&spec);

        if let Some(execution) = self.cache.get(&key) {
            let latency = started.elapsed();
            let record = QueryRecord {
                latency,
                from_cache: true,
                ..QueryRecord::default()
            };
            self.obs.record_query(&record);
            self.stats.record(record);
            if let Some(mut root) = root {
                root.attr("cache", "hit");
                root.finish();
            }
            let _ = sender.send(Ok(EngineResult {
                execution,
                from_cache: true,
                latency,
                fresh_units: 0,
            }));
            return QueryTicket { receiver };
        }

        let prepared = {
            let plan_span = trace
                .zip(root.as_ref())
                .map(|(trace, root)| self.obs.recorder().child(trace, root.id(), "plan"));
            let prepared = self.prepare_units(&spec, &snapshot);
            drop(plan_span);
            prepared
        };
        match prepared {
            Err(e) => {
                let _ = sender.send(Err(e));
            }
            Ok((drive, units)) => {
                let plan = merged_plan(&units);
                let k = spec.k;
                let cache = Arc::clone(&self.cache);
                let stats = Arc::clone(&self.stats);
                let obs = Arc::clone(&self.obs);
                let unit_trace = trace.zip(root.as_ref().map(|r| r.id()));
                let relations: Vec<usize> = spec.relations.iter().map(|r| r.index()).collect();
                let ctx = self.unit_context(&spec, &snapshot, drive, unit_trace);
                self.executor.spawn(move || {
                    // Re-check the cache at execution time: a duplicate query
                    // queued behind the first execution of this key should be
                    // served from its result, not re-run (thundering herd).
                    if let Some(execution) = cache.get(&key) {
                        let latency = started.elapsed();
                        let record = QueryRecord {
                            latency,
                            from_cache: true,
                            ..QueryRecord::default()
                        };
                        obs.record_query(&record);
                        stats.record(record);
                        if let Some(mut root) = root {
                            root.attr("cache", "hit");
                            root.finish();
                        }
                        let _ = sender.send(Ok(EngineResult {
                            execution,
                            from_cache: true,
                            latency,
                            fresh_units: 0,
                        }));
                        return;
                    }
                    let outcome = run_units(units, k, &ctx);
                    let response = match outcome {
                        Ok((result, unit_records)) => {
                            let latency = started.elapsed();
                            let fresh_units = unit_records.len();
                            let record = QueryRecord {
                                latency,
                                // Count only the accesses *this* query freshly
                                // performed: unit-cache hits did none, and the
                                // per-shard lanes must keep adding up to the
                                // engine-wide total.
                                sum_depths: unit_records.iter().map(|u| u.sum_depths).sum(),
                                bound_updates: result.metrics.bound_updates,
                                from_cache: false,
                                units: unit_records,
                                relation_depths: relation_depths(&relations, &result),
                            };
                            obs.record_query(&record);
                            stats.record(record);
                            if let Some(root) = root.as_mut() {
                                root.attr("cache", "miss");
                                root.attr("sum_depths", result.sum_depths());
                            }
                            drop(root.take());
                            obs.query_finished(trace, latency);
                            let execution = Arc::new(CachedExecution { result, plan });
                            cache.insert(key, Arc::clone(&execution));
                            Ok(EngineResult {
                                execution,
                                from_cache: false,
                                latency,
                                fresh_units,
                            })
                        }
                        Err(e) => {
                            drop(root.take());
                            obs.trace_event(trace, TraceClass::Error, started.elapsed());
                            Err(e)
                        }
                    };
                    let _ = sender.send(response);
                });
            }
        }
        QueryTicket { receiver }
    }

    /// Runs one query to completion (submit + wait).
    pub fn query(&self, spec: QuerySpec) -> Result<EngineResult, EngineError> {
        self.submit(spec).wait()
    }

    /// Submits a batch and waits for every result, preserving order.
    pub fn query_batch(&self, specs: Vec<QuerySpec>) -> Vec<Result<EngineResult, EngineError>> {
        let tickets: Vec<QueryTicket> = specs.into_iter().map(|s| self.submit(s)).collect();
        tickets.into_iter().map(|t| t.wait()).collect()
    }

    /// EXPLAIN / EXPLAIN ANALYZE: reports how the engine would execute (or
    /// did execute) `spec`, without going through the result cache.
    ///
    /// Plan mode (`analyze == false`) runs exactly the planner — driving
    /// choice, per-unit plans, the relation statistics they consumed — and
    /// executes nothing.
    ///
    /// ANALYZE executes the plan for real, but measures *real work*: both
    /// the result cache and the per-shard unit cache are bypassed (no hits
    /// served, nothing inserted), so every unit profile reports the
    /// accesses that execution actually performed and the per-unit depths
    /// sum exactly to the `sumDepths` the engine's statistics advance by.
    /// Bound-convergence capture is forced on (at
    /// [`ANALYZE_CONVERGENCE_EVERY`] unless the spec pinned a stride), and
    /// the run is accounted like any executed query: metrics, engine
    /// stats, spans, and the trace drain all see it.
    ///
    /// The merged rows under ANALYZE are bit-identical to what the same
    /// spec would return through [`Engine::query`]: the units, the plan,
    /// and the merge are shared code — only the caching policy differs.
    pub fn explain(&self, mut spec: QuerySpec, analyze: bool) -> Result<ExplainData, EngineError> {
        if analyze && spec.convergence == 0 {
            spec.convergence = ANALYZE_CONVERGENCE_EVERY;
        }
        let started = Instant::now();
        let (snapshot, _key) = self.snapshot_and_key(&spec)?;
        let (trace, mut root) = self.begin_query(&spec);
        if let Some(root) = root.as_mut() {
            root.attr("explain", if analyze { "analyze" } else { "plan" });
        }
        let relations: Vec<RelationPlanData> = snapshot
            .iter()
            .map(|relation| {
                let stats = relation.stats();
                RelationPlanData {
                    name: relation.name().to_string(),
                    cardinality: stats.cardinality as u64,
                    skew: stats.score_skewness,
                    discount: stats.cardinality as f64 / (1.0 + stats.score_skewness.max(0.0)),
                }
            })
            .collect();
        let prepared = {
            let plan_span = trace
                .zip(root.as_ref())
                .map(|(trace, root)| self.obs.recorder().child(trace, root.id(), "plan"));
            let prepared = self.prepare_units(&spec, &snapshot);
            drop(plan_span);
            prepared
        };
        let (drive, units) = prepared?;
        let plan = merged_plan(&units);
        let unit_plans: Vec<UnitPlanData> = units
            .iter()
            .map(|u| UnitPlanData {
                shard: u.shard,
                plan: u.plan.clone(),
            })
            .collect();
        let analyzed = if analyze {
            // Driving shards still carrying unfolded deltas read through
            // delta-merged views — the profile's cache status records it.
            let delta_shards: Vec<bool> = (0..snapshot[drive].num_shards())
                .map(|j| snapshot[drive].shard(j).delta_len() > 0)
                .collect();
            let unit_trace = trace.zip(root.as_ref().map(|r| r.id()));
            let mut ctx = self.unit_context(&spec, &snapshot, drive, unit_trace);
            ctx.use_unit_cache = false;
            let outcomes = fan_out_units(units, &ctx);
            let mut parts: Vec<Arc<RankJoinResult>> = Vec::with_capacity(outcomes.len());
            let mut profiles = Vec::with_capacity(outcomes.len());
            let mut unit_records = Vec::with_capacity(outcomes.len());
            for outcome in outcomes {
                let outcome = outcome?;
                profiles.push(UnitProfileData {
                    shard: outcome.shard,
                    cache: if delta_shards.get(outcome.shard).copied().unwrap_or(false) {
                        "delta-merged"
                    } else {
                        "fresh"
                    },
                    remote: outcome.remote,
                    depths: outcome.result.sum_depths() as u64,
                    micros: outcome.elapsed.as_micros() as u64,
                    trajectory: outcome.result.trajectory().to_vec(),
                });
                unit_records.push(UnitRecord {
                    shard: outcome.shard,
                    sum_depths: outcome.result.sum_depths(),
                    latency: outcome.elapsed,
                });
                parts.push(outcome.result);
            }
            let result = merge_unit_parts(spec.k, parts, &ctx);
            let latency = started.elapsed();
            let total_sum_depths: u64 = profiles.iter().map(|u| u.depths).sum();
            let relation_indices: Vec<usize> = spec.relations.iter().map(|r| r.index()).collect();
            let record = QueryRecord {
                latency,
                sum_depths: unit_records.iter().map(|u| u.sum_depths).sum(),
                bound_updates: result.metrics.bound_updates,
                from_cache: false,
                units: unit_records,
                relation_depths: relation_depths(&relation_indices, &result),
            };
            self.obs.record_query(&record);
            self.stats.record(record);
            if let Some(root) = root.as_mut() {
                root.attr("cache", "bypass");
                root.attr("sum_depths", total_sum_depths);
            }
            Some(AnalyzeData {
                result,
                latency,
                total_sum_depths,
                units: profiles,
            })
        } else {
            None
        };
        drop(root);
        if analyze {
            self.obs.query_finished(trace, started.elapsed());
        }
        Ok(ExplainData {
            plan,
            drive,
            k: spec.k,
            relations,
            units: unit_plans,
            analyzed,
        })
    }

    /// Opens a streaming query: results are certified and delivered one at a
    /// time (the paper's incremental pulling model), with backpressure.
    ///
    /// A fully drained stream populates the result cache just like a batch
    /// query; a cache hit replays the memoised combinations. Live streams run
    /// on a dedicated thread rather than a pool worker: their producer is
    /// consumer-paced (it blocks once it runs a few results
    /// ahead), and a slow or idle consumer must not starve the pool that
    /// serves batch queries.
    pub fn stream(&self, spec: QuerySpec) -> Result<ResultStream, EngineError> {
        let started = Instant::now();
        let (snapshot, key) = self.snapshot_and_key(&spec)?;
        let (trace, root) = self.begin_query(&spec);
        if let Some(execution) = self.cache.get(&key) {
            let record = QueryRecord {
                latency: started.elapsed(),
                from_cache: true,
                ..QueryRecord::default()
            };
            self.obs.record_query(&record);
            self.stats.record(record);
            if let Some(mut root) = root {
                root.attr("cache", "hit");
                root.finish();
            }
            let plan = execution.plan.clone();
            return Ok(ResultStream {
                inner: StreamInner::Replay {
                    execution,
                    cursor: 0,
                },
                plan,
                from_cache: true,
                error: None,
            });
        }

        let (drive, units) = {
            let plan_span = trace
                .zip(root.as_ref())
                .map(|(trace, root)| self.obs.recorder().child(trace, root.id(), "plan"));
            let prepared = self.prepare_units(&spec, &snapshot);
            drop(plan_span);
            prepared?
        };
        let plan = merged_plan(&units);
        let k = spec.k;
        let relations: Vec<usize> = spec.relations.iter().map(|r| r.index()).collect();

        // Distributed streaming: when any unit routes to a remote worker,
        // the units are executed to completion (in parallel, with replica
        // failover and the unit cache) and the exact merged top-K is
        // replayed incrementally. The emitted rows are bit-identical to the
        // live merged stream — both are the bound-aware merge of the same
        // certified per-unit sequences — the delivery merely stops being
        // access-incremental across the network.
        let backend = self.remote_backend();
        let any_remote = backend
            .as_ref()
            .is_some_and(|b| units.iter().any(|u| b.routes(u.shard)));
        if any_remote {
            let unit_trace = trace.zip(root.as_ref().map(|r| r.id()));
            let ctx = self.unit_context(&spec, &snapshot, drive, unit_trace);
            let (result, unit_records) = run_units(units, k, &ctx)?;
            let latency = started.elapsed();
            let record = QueryRecord {
                latency,
                sum_depths: unit_records.iter().map(|u| u.sum_depths).sum(),
                bound_updates: result.metrics.bound_updates,
                from_cache: false,
                units: unit_records,
                relation_depths: relation_depths(&relations, &result),
            };
            self.obs.record_query(&record);
            self.stats.record(record);
            if let Some(mut root) = root {
                root.attr("cache", "miss");
                root.attr("sum_depths", result.sum_depths());
                root.finish();
            }
            self.obs.query_finished(trace, latency);
            let execution = Arc::new(CachedExecution {
                result,
                plan: plan.clone(),
            });
            self.cache.insert(key, Arc::clone(&execution));
            return Ok(ResultStream {
                inner: StreamInner::Replay {
                    execution,
                    cursor: 0,
                },
                plan,
                from_cache: false,
                error: None,
            });
        }

        // Start every unit's incremental run up front, so planning and
        // bound-setup failures surface as typed errors before a thread
        // spawns.
        let mut runs: Vec<(usize, StreamingRun<Arc<dyn ScoringSpec>>)> = Vec::new();
        for unit in units {
            let run = unit
                .plan
                .algorithm
                .start_streaming(unit.problem)
                .map_err(EngineError::Prj)?;
            runs.push((unit.shard, run));
        }
        let (sender, receiver) = sync_channel(STREAM_BUFFER);
        let finish = StreamFinish {
            cache: Arc::clone(&self.cache),
            stats: Arc::clone(&self.stats),
            obs: Arc::clone(&self.obs),
            key,
            plan: plan.clone(),
            relations,
            trace,
            root,
        };
        std::thread::Builder::new()
            .name("prj-engine-stream".to_string())
            .spawn(move || {
                let panic_sender = sender.clone();
                let worker = std::panic::AssertUnwindSafe(move || {
                    if runs.len() == 1 {
                        Self::stream_single(runs, sender, finish);
                    } else {
                        Self::stream_merged(runs, k, sender, finish);
                    }
                    // Dropping the sender closes the stream.
                });
                // A panicking run must be reported, not mistaken for clean
                // completion: the consumer would otherwise serve a
                // truncated stream as the full top-K.
                if std::panic::catch_unwind(worker).is_err() {
                    let _ = panic_sender.send(Err(EngineError::WorkerLost));
                }
            })
            .expect("spawn stream thread");
        Ok(ResultStream {
            inner: StreamInner::Live(receiver),
            plan,
            from_cache: false,
            error: None,
        })
    }

    /// The unsharded streaming producer: one incremental run, drained into
    /// the channel, cached on completion.
    fn stream_single(
        runs: Vec<(usize, StreamingRun<Arc<dyn ScoringSpec>>)>,
        sender: std::sync::mpsc::SyncSender<Result<ScoredCombination, EngineError>>,
        finish: StreamFinish,
    ) {
        let (shard, mut run) = runs.into_iter().next().expect("one run");
        while let Some(combo) = run.next_certified() {
            if sender.send(Ok(combo)).is_err() {
                // Consumer dropped the stream: abandon the run without
                // caching the partial result.
                return;
            }
        }
        let result = run.into_result();
        let units = vec![UnitRecord {
            shard,
            sum_depths: result.stats.sum_depths(),
            latency: result.metrics.total_time,
        }];
        finish.complete(result, units);
    }

    /// The sharded streaming producer: per-unit incremental runs merged
    /// lazily through [`CertifiedMerge`] — each emitted result is globally
    /// certified while every unit has only done the work its own next
    /// result required. On completion the emitted top-K (exact by the
    /// partition argument; see [`prj_core::merge`]) is cached together with
    /// the aggregated access stats and a valid merged bound.
    fn stream_merged(
        runs: Vec<(usize, StreamingRun<Arc<dyn ScoringSpec>>)>,
        k: usize,
        sender: std::sync::mpsc::SyncSender<Result<ScoredCombination, EngineError>>,
        finish: StreamFinish,
    ) {
        let shards: Vec<usize> = runs.iter().map(|(s, _)| *s).collect();
        let mut sources: Vec<StreamingRun<Arc<dyn ScoringSpec>>> =
            runs.into_iter().map(|(_, r)| r).collect();
        let mut emitted: Vec<ScoredCombination> = Vec::new();
        let head_scores: Vec<Option<f64>> = {
            let mut merge = CertifiedMerge::new(sources.len(), k, |j| sources[j].next_certified());
            while let Some(combo) = merge.next_merged() {
                emitted.push(combo.clone());
                if sender.send(Ok(combo)).is_err() {
                    // Consumer dropped the stream: abandon the runs without
                    // caching the partial result.
                    return;
                }
            }
            merge
                .heads()
                .iter()
                .map(|h| h.as_ref().map(|c| c.score))
                .collect()
        };
        // Anything unreturned is either a pulled-but-unemitted head or
        // still unseen inside some unit, so the tightest valid bound is the
        // max over head scores and residual unit bounds.
        let mut final_bound = f64::NEG_INFINITY;
        let mut merged_stats = prj_access::AccessStats::new(sources[0].stats().num_relations());
        let mut metrics = RunMetrics::default();
        let mut unit_records = Vec::with_capacity(sources.len());
        for (j, source) in sources.iter().enumerate() {
            final_bound = final_bound.max(source.current_bound());
            if let Some(Some(score)) = head_scores.get(j) {
                final_bound = final_bound.max(*score);
            }
            merged_stats.absorb(source.stats());
            let m = source.metrics();
            metrics.total_time += m.total_time;
            metrics.bound_time += m.bound_time;
            metrics.bound_updates += m.bound_updates;
            metrics.combinations_formed += m.combinations_formed;
            unit_records.push(UnitRecord {
                shard: shards[j],
                sum_depths: source.stats().sum_depths(),
                latency: m.total_time,
            });
        }
        metrics.final_bound = final_bound;
        let result = RankJoinResult {
            combinations: emitted,
            stats: merged_stats,
            metrics,
        };
        finish.complete(result, unit_records);
    }

    /// Executes exactly one partitioned unit — shard `shard` of the
    /// relation at join position `drive` joined against whole views of the
    /// others — under a *pinned* plan. This is the worker-side entry point
    /// of distributed execution: the cluster coordinator plans the unit
    /// against its snapshot and ships `(drive, shard, algorithm, period)`
    /// plus the snapshot's epoch vectors; the worker replays it here
    /// against its replicated catalog.
    ///
    /// When `expected_epochs` is given, the worker's snapshot must match it
    /// exactly — otherwise the replica has missed (or over-run) a mutation
    /// and the unit answers [`EngineError::StaleReplica`] instead of
    /// computing an answer over different data.
    pub fn execute_unit(
        &self,
        spec: &QuerySpec,
        drive: usize,
        shard: usize,
        algorithm: Algorithm,
        dominance_period: Option<usize>,
        expected_epochs: Option<&[Vec<u64>]>,
    ) -> Result<(RankJoinResult, Duration), EngineError> {
        if spec.relations.is_empty() {
            return Err(EngineError::Prj(PrjError::NoRelations));
        }
        let snapshot = self.catalog.snapshot(&spec.relations)?;
        if drive >= snapshot.len() {
            return Err(EngineError::Degraded(format!(
                "drive index {drive} out of range for {} relations",
                snapshot.len()
            )));
        }
        if shard >= snapshot[drive].num_shards() {
            return Err(EngineError::StaleReplica(format!(
                "shard {shard} out of range: this engine partitions into {} shards",
                snapshot[drive].num_shards()
            )));
        }
        if let Some(expected) = expected_epochs {
            for (idx, relation) in snapshot.iter().enumerate() {
                let have = relation.epochs();
                if expected.get(idx) != Some(&have) {
                    return Err(EngineError::StaleReplica(format!(
                        "relation {} is at epochs {:?} here, the coordinator snapshot \
                         expected {:?}",
                        spec.relations[idx].index(),
                        have,
                        expected.get(idx),
                    )));
                }
            }
        }
        Self::validate_dimensions(spec, &snapshot)?;
        let reducible = spec.scoring.euclidean_weights().is_some();
        let query = Arc::new(spec.query.clone());
        let delta_sorted = vec![None; snapshot.len()];
        let plan = Plan {
            algorithm,
            dominance_period,
            rationale: "pinned by the cluster coordinator".to_string(),
        };
        let mut unit = Self::build_unit(
            spec,
            &snapshot,
            &query,
            &delta_sorted,
            reducible,
            drive,
            shard,
            plan,
        )?;
        let started = Instant::now();
        let result = unit
            .plan
            .algorithm
            .run(&mut unit.problem)
            .map_err(EngineError::Prj)?;
        Ok((result, started.elapsed()))
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prj_access::{Tuple, TupleId};
    use prj_core::CosineSimilarityScore;

    fn table1() -> Vec<Vec<Tuple>> {
        let mk = |rel: usize, rows: &[([f64; 2], f64)]| -> Vec<Tuple> {
            rows.iter()
                .enumerate()
                .map(|(i, (x, s))| Tuple::new(TupleId::new(rel, i), Vector::from(*x), *s))
                .collect()
        };
        vec![
            mk(0, &[([0.0, -0.5], 0.5), ([0.0, 1.0], 1.0)]),
            mk(1, &[([1.0, 1.0], 1.0), ([-2.0, 2.0], 0.8)]),
            mk(2, &[([-1.0, 1.0], 1.0), ([-2.0, -2.0], 0.4)]),
        ]
    }

    fn table1_engine() -> (Engine, Vec<RelationId>) {
        let engine = EngineBuilder::default().threads(2).build();
        let ids = table1()
            .into_iter()
            .enumerate()
            .map(|(i, tuples)| engine.register(format!("R{}", i + 1), tuples))
            .collect();
        (engine, ids)
    }

    #[test]
    fn serves_the_paper_example() {
        let (engine, ids) = table1_engine();
        let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 1)
            .with_scoring(EuclideanLogScore::new(1.0, 1.0, 1.0));
        let result = engine.query(spec).expect("query");
        assert_eq!(result.combinations().len(), 1);
        // Example 3.1: the top combination scores -7.
        assert!((result.combinations()[0].score - (-7.0)).abs() < 0.05);
        assert!(!result.from_cache);
    }

    #[test]
    fn second_identical_query_hits_the_cache() {
        let (engine, ids) = table1_engine();
        let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 2);
        let cold = engine.query(spec.clone()).expect("cold");
        let warm = engine.query(spec).expect("warm");
        assert!(!cold.from_cache);
        assert!(warm.from_cache);
        assert_eq!(cold.combinations(), warm.combinations());
        let stats = engine.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.executed, 1);
        assert_eq!(engine.cache_metrics().hits, 1);
    }

    #[test]
    fn different_parameters_do_not_share_cache_entries() {
        let (engine, ids) = table1_engine();
        let base = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 2);
        engine.query(base.clone()).expect("first");
        let different_k = QuerySpec {
            k: 3,
            ..base.clone()
        };
        assert!(!engine.query(different_k).expect("k=3").from_cache);
        let different_q = QuerySpec {
            query: Vector::from([0.1, 0.0]),
            ..base.clone()
        };
        assert!(!engine.query(different_q).expect("moved q").from_cache);
        let different_w = base
            .clone()
            .with_scoring(EuclideanLogScore::new(2.0, 1.0, 1.0));
        assert!(!engine.query(different_w).expect("weights").from_cache);
        let pinned = base.with_algorithm(Algorithm::Cbrr);
        assert!(!engine.query(pinned).expect("pinned").from_cache);
    }

    #[test]
    fn mutation_invalidates_cached_results() {
        let (engine, ids) = table1_engine();
        let spec = QuerySpec::top_k(ids.clone(), Vector::from([0.0, 0.0]), 1);
        let cold = engine.query(spec.clone()).expect("cold");
        assert!(engine.query(spec.clone()).expect("warm").from_cache);

        // Append a perfect tuple right on the query point to R1: the old
        // memoised top-1 is now wrong and must not be served.
        engine
            .append_rows(ids[0], vec![(Vector::from([0.0, 0.0]), 1.0)])
            .expect("append");
        let fresh = engine.query(spec.clone()).expect("post-mutation");
        assert!(!fresh.from_cache, "mutation must invalidate the cache");
        assert!(
            fresh.combinations()[0].score > cold.combinations()[0].score,
            "the appended tuple improves the best combination"
        );
        assert_eq!(fresh.combinations()[0].tuples[0].id, TupleId::new(0, 2));
        // And the fresh result is itself cacheable under the new epoch.
        assert!(engine.query(spec).expect("re-warm").from_cache);
    }

    #[test]
    fn dropped_relations_fail_with_a_typed_error() {
        let (engine, ids) = table1_engine();
        engine.drop_relation(ids[1]).expect("drop");
        let spec = QuerySpec::top_k(ids.clone(), Vector::from([0.0, 0.0]), 1);
        match engine.query(spec) {
            Err(EngineError::Catalog(CatalogError::Dropped(index))) => {
                assert_eq!(index, ids[1].index())
            }
            other => panic!("expected a dropped-relation error, got {other:?}"),
        }
        // Double drop is also typed.
        assert!(matches!(
            engine.drop_relation(ids[1]),
            Err(EngineError::Catalog(CatalogError::Dropped(_)))
        ));
    }

    #[test]
    fn streaming_matches_batch_and_populates_cache() {
        let (engine, ids) = table1_engine();
        let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 8);
        let batch = engine.query(spec.clone()).expect("batch");
        engine.cache.clear();
        let mut stream = engine.stream(spec.clone()).expect("stream");
        let mut streamed = Vec::new();
        while let Some(combo) = stream.next_result() {
            streamed.push(combo);
        }
        assert_eq!(streamed.as_slice(), batch.combinations());
        // The drained stream cached its execution; a replayed stream agrees.
        let mut replay = engine.stream(spec).expect("replay");
        assert!(replay.from_cache);
        let mut replayed = Vec::new();
        while let Some(combo) = replay.next_result() {
            replayed.push(combo);
        }
        assert_eq!(replayed, streamed);
    }

    #[test]
    fn pinned_algorithm_is_respected() {
        let (engine, ids) = table1_engine();
        let spec =
            QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 1).with_algorithm(Algorithm::Cbrr);
        let result = engine.query(spec).expect("query");
        assert_eq!(result.plan().algorithm, Algorithm::Cbrr);
        assert!(result.plan().rationale.contains("pinned"));
    }

    #[test]
    fn cosine_scoring_is_served_with_corner_bound() {
        let engine = EngineBuilder::default().threads(1).build();
        let mk = |rel: usize, rows: &[([f64; 2], f64)]| -> Vec<Tuple> {
            rows.iter()
                .enumerate()
                .map(|(i, (x, s))| Tuple::new(TupleId::new(rel, i), Vector::from(*x), *s))
                .collect()
        };
        let a = engine.register("a", mk(0, &[([0.5, 0.1], 0.9), ([0.0, 1.0], 0.8)]));
        let b = engine.register("b", mk(1, &[([0.8, 0.2], 0.7), ([-1.0, 0.1], 0.6)]));
        let spec = QuerySpec::top_k(vec![a, b], Vector::from([1.0, 0.0]), 1)
            .with_scoring(CosineSimilarityScore::default());
        let result = engine.query(spec).expect("cosine query");
        assert!(matches!(
            result.plan().algorithm,
            Algorithm::Cbrr | Algorithm::Cbpa
        ));
        assert_eq!(result.combinations().len(), 1);
    }

    #[test]
    fn registry_resolved_scoring_is_queryable() {
        let (engine, ids) = table1_engine();
        let scoring = engine
            .scoring_registry()
            .resolve("euclidean-log", &[1.0, 1.0, 1.0])
            .expect("builtin");
        let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 1).with_shared_scoring(scoring);
        let result = engine.query(spec).expect("query");
        assert!((result.combinations()[0].score - (-7.0)).abs() < 0.05);
    }

    #[test]
    fn sharded_engine_is_indistinguishable_through_results() {
        let (engine, _) = table1_engine();
        let baseline = {
            let ids = engine.catalog().all_ids();
            engine
                .query(QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 8))
                .expect("baseline")
        };
        for shards in [2, 4] {
            let sharded = EngineBuilder::default().threads(2).shards(shards).build();
            assert_eq!(sharded.shards(), shards);
            let ids: Vec<RelationId> = table1()
                .into_iter()
                .enumerate()
                .map(|(i, tuples)| sharded.register(format!("R{}", i + 1), tuples))
                .collect();
            let result = sharded
                .query(QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 8))
                .expect("sharded");
            assert_eq!(
                result.combinations(),
                baseline.combinations(),
                "shards={shards}"
            );
            // The per-shard lanes account for exactly the accesses made.
            let stats = sharded.stats();
            assert_eq!(
                stats.per_shard.iter().map(|l| l.sum_depths).sum::<u64>(),
                stats.total_sum_depths
            );
        }
    }

    #[test]
    fn sharded_plan_reports_the_partitioning() {
        let engine = EngineBuilder::default().threads(1).shards(4).build();
        // Spread tuples widely so several driving shards are populated.
        let tuples: Vec<Tuple> = (0..24)
            .map(|i| {
                Tuple::new(
                    TupleId::new(0, i),
                    Vector::from([(i % 6) as f64 * 2.0 - 5.0, (i / 6) as f64 * 2.0 - 3.0]),
                    0.2 + (i % 7) as f64 / 10.0,
                )
            })
            .collect();
        let populated = {
            let policy = engine.catalog().policy();
            tuples
                .iter()
                .map(|t| policy.shard_of(&t.vector))
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        let id = engine.register("r", tuples);
        let result = engine
            .query(QuerySpec::top_k(vec![id], Vector::from([0.0, 0.0]), 3))
            .expect("query");
        if populated > 1 {
            assert!(
                result.plan().rationale.contains("partitioned over"),
                "rationale: {}",
                result.plan().rationale
            );
        }
    }

    #[test]
    fn units_share_one_query_allocation() {
        // White-box: preparing a partitioned execution must clone the query
        // vector once per query, not once per unit — every unit's problem
        // hangs on to the same `Arc<Vector>`.
        let engine = EngineBuilder::default().threads(1).shards(4).build();
        let tuples: Vec<Tuple> = (0..24)
            .map(|i| {
                Tuple::new(
                    TupleId::new(0, i),
                    Vector::from([(i % 6) as f64 * 2.0 - 5.0, (i / 6) as f64 * 2.0 - 3.0]),
                    0.2 + (i % 7) as f64 / 10.0,
                )
            })
            .collect();
        let id = engine.register("r", tuples);
        let spec = QuerySpec::top_k(vec![id], Vector::from([0.0, 0.0]), 3);
        let snapshot = engine.catalog.snapshot(&spec.relations).expect("snapshot");
        let (_, units) = engine.prepare_units(&spec, &snapshot).expect("prepare");
        assert!(
            units.len() > 1,
            "expected several populated driving shards, got {}",
            units.len()
        );
        let first = units[0].problem.query_shared();
        for unit in &units[1..] {
            assert!(
                Arc::ptr_eq(first, unit.problem.query_shared()),
                "each unit must share the query allocation, not re-clone it"
            );
        }
    }

    #[test]
    fn invalid_query_reports_an_operator_error() {
        let (engine, ids) = table1_engine();
        let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 0);
        match engine.query(spec) {
            Err(EngineError::Prj(PrjError::InvalidK)) => {}
            other => panic!("expected InvalidK, got {other:?}"),
        }
    }

    #[test]
    fn zero_relation_query_is_a_typed_error_not_a_panic() {
        let (engine, _) = table1_engine();
        let spec = QuerySpec::top_k(Vec::new(), Vector::from([0.0, 0.0]), 3);
        match engine.query(spec.clone()) {
            Err(EngineError::Prj(PrjError::NoRelations)) => {}
            other => panic!("expected NoRelations, got {other:?}"),
        }
        match engine.stream(spec) {
            Err(EngineError::Prj(PrjError::NoRelations)) => {}
            other => panic!(
                "expected NoRelations from stream, got {:?}",
                other.as_ref().map(|_| "a stream")
            ),
        }
    }

    #[test]
    fn idle_shards_gain_no_unit_records() {
        // All tuples in one grid cell: only one driving shard is populated,
        // so exactly one lane may accumulate units.
        let engine = EngineBuilder::default().threads(1).shards(4).build();
        let tuples: Vec<Tuple> = (0..6)
            .map(|i| {
                Tuple::new(
                    TupleId::new(0, i),
                    Vector::from([0.1 + i as f64 * 0.05, 0.2]),
                    0.3 + i as f64 / 10.0,
                )
            })
            .collect();
        let id = engine.register("r", tuples);
        for k in 1..4 {
            engine
                .query(QuerySpec::top_k(vec![id], Vector::from([0.0, 0.0]), k))
                .expect("query");
        }
        let stats = engine.stats();
        let active: Vec<_> = stats.per_shard.iter().filter(|l| l.units > 0).collect();
        assert_eq!(active.len(), 1, "one populated shard, one active lane");
        assert_eq!(active[0].units, 3);
        assert_eq!(
            stats.per_shard.iter().map(|l| l.sum_depths).sum::<u64>(),
            stats.total_sum_depths
        );
    }
}
