//! The engine façade: the piece that turns the ProxRJ library into a
//! multi-query serving system.
//!
//! A query's life: [`Engine::submit`] computes its cache key and returns a
//! memoised result immediately on a hit; on a miss it snapshots the catalog
//! relations (Arc clones), asks the [`Planner`] for an algorithm, builds a
//! [`prj_core::Problem`] out of O(1) shared-index views, and hands the run to
//! the [`Executor`]'s thread pool. The caller gets a [`QueryTicket`] to wait
//! on; [`Engine::stream`] instead returns a [`ResultStream`] whose
//! [`next_result`](ResultStream::next_result) pulls certified results one at
//! a time out of an incremental [`prj_core::StreamingRun`], mirroring the
//! paper's pulling model end to end.

use crate::cache::{CacheKey, CacheMetrics, CachedExecution, ResultCache};
use crate::catalog::{Catalog, CatalogRelation, RelationId};
use crate::executor::Executor;
use crate::planner::{Plan, Planner, PlannerConfig};
use crate::stats::{EngineStats, EngineStatsSnapshot, QueryRecord};
use prj_access::AccessKind;
use prj_core::{
    Algorithm, CosineSimilarityScore, EuclideanLogScore, PrjError, ProblemBuilder, RankJoinResult,
    ScoredCombination, ScoringFunction,
};
use prj_geometry::Vector;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Capacity of a stream's in-flight buffer: the producer runs at most this
/// many certified results ahead of the consumer (backpressure mirroring the
/// incremental pulling model).
const STREAM_BUFFER: usize = 8;

/// Scoring functions usable as cache-key components.
///
/// The fingerprint must change whenever the function would score some
/// combination differently; collisions across *different* scoring families
/// are avoided by hashing the name alongside the parameters.
pub trait CacheFingerprint {
    /// A 64-bit digest of the scoring parameters.
    fn cache_fingerprint(&self) -> u64;
}

impl CacheFingerprint for EuclideanLogScore {
    fn cache_fingerprint(&self) -> u64 {
        let w = self.weights();
        let mut h = DefaultHasher::new();
        "euclidean-log".hash(&mut h);
        w.w_s.to_bits().hash(&mut h);
        w.w_q.to_bits().hash(&mut h);
        w.w_mu.to_bits().hash(&mut h);
        h.finish()
    }
}

impl CacheFingerprint for CosineSimilarityScore {
    fn cache_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        "cosine-similarity".hash(&mut h);
        self.w_s.to_bits().hash(&mut h);
        self.w_q.to_bits().hash(&mut h);
        self.w_mu.to_bits().hash(&mut h);
        h.finish()
    }
}

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The underlying operator rejected the query.
    Prj(PrjError),
    /// The worker executing the query disappeared (it panicked).
    WorkerLost,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Prj(e) => write!(f, "operator error: {e}"),
            EngineError::WorkerLost => write!(f, "engine worker disappeared"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PrjError> for EngineError {
    fn from(e: PrjError) -> Self {
        EngineError::Prj(e)
    }
}

/// One top-k request against registered relations.
#[derive(Debug, Clone)]
pub struct QuerySpec<S = EuclideanLogScore> {
    /// The relations to join, in join order.
    pub relations: Vec<RelationId>,
    /// The query point `q`.
    pub query: Vector,
    /// Number of requested results `K`.
    pub k: usize,
    /// The aggregation function.
    pub scoring: S,
    /// Sorted-access kind (Definition 2.1).
    pub access_kind: AccessKind,
    /// Pin a specific algorithm, or let the planner choose (`None`).
    pub algorithm: Option<Algorithm>,
}

impl QuerySpec<EuclideanLogScore> {
    /// A distance-access top-k query under the paper's default scoring
    /// (Eq. 2 with unit weights).
    pub fn top_k(relations: Vec<RelationId>, query: Vector, k: usize) -> Self {
        QuerySpec {
            relations,
            query,
            k,
            scoring: EuclideanLogScore::default(),
            access_kind: AccessKind::Distance,
            algorithm: None,
        }
    }
}

impl<S> QuerySpec<S> {
    /// Pins the operator instantiation instead of consulting the planner.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Selects the sorted-access kind.
    pub fn with_access_kind(mut self, kind: AccessKind) -> Self {
        self.access_kind = kind;
        self
    }

    /// Replaces the scoring function.
    pub fn with_scoring<T>(self, scoring: T) -> QuerySpec<T> {
        QuerySpec {
            relations: self.relations,
            query: self.query,
            k: self.k,
            scoring,
            access_kind: self.access_kind,
            algorithm: self.algorithm,
        }
    }
}

/// The outcome of one engine query.
#[derive(Debug, Clone)]
pub struct EngineResult {
    execution: Arc<CachedExecution>,
    /// Whether the result was served from the cache.
    pub from_cache: bool,
    /// End-to-end latency observed by the engine.
    pub latency: Duration,
}

impl EngineResult {
    /// The top-K combinations, best first.
    pub fn combinations(&self) -> &[ScoredCombination] {
        &self.execution.result.combinations
    }

    /// The full operator result (depths, metrics).
    pub fn result(&self) -> &RankJoinResult {
        &self.execution.result
    }

    /// The plan the result was produced with.
    pub fn plan(&self) -> &Plan {
        &self.execution.plan
    }
}

/// A handle to an in-flight query submitted to the pool.
#[derive(Debug)]
pub struct QueryTicket {
    receiver: Receiver<Result<EngineResult, EngineError>>,
}

impl QueryTicket {
    /// Blocks until the result is available.
    pub fn wait(self) -> Result<EngineResult, EngineError> {
        self.receiver.recv().unwrap_or(Err(EngineError::WorkerLost))
    }
}

enum StreamInner {
    /// Replaying a cached execution.
    Replay {
        execution: Arc<CachedExecution>,
        cursor: usize,
    },
    /// Receiving from a live incremental run on a worker thread.
    Live(Receiver<ScoredCombination>),
}

/// A streaming query: results are pulled one at a time, each produced with
/// only as many sorted accesses as its certification required.
pub struct ResultStream {
    inner: StreamInner,
    /// The plan the stream runs under.
    pub plan: Plan,
    /// Whether the stream replays a cached execution.
    pub from_cache: bool,
}

impl ResultStream {
    /// The next certified result, best first; `None` once the top-K is
    /// exhausted. On a live stream this blocks while the worker performs the
    /// accesses the next result needs.
    pub fn next_result(&mut self) -> Option<ScoredCombination> {
        match &mut self.inner {
            StreamInner::Replay { execution, cursor } => {
                let combo = execution.result.combinations.get(*cursor).cloned();
                *cursor += combo.is_some() as usize;
                combo
            }
            StreamInner::Live(receiver) => receiver.recv().ok(),
        }
    }
}

/// Configuration builder for [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    threads: usize,
    cache_capacity: usize,
    planner: PlannerConfig,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            cache_capacity: 1024,
            planner: PlannerConfig::default(),
        }
    }
}

impl EngineBuilder {
    /// Number of worker threads (default: available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Result-cache capacity in entries (default 1024; 0 disables caching).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Planner thresholds.
    pub fn planner_config(mut self, config: PlannerConfig) -> Self {
        self.planner = config;
        self
    }

    /// Builds the engine.
    pub fn build<S>(self) -> Engine<S>
    where
        S: ScoringFunction + Clone + CacheFingerprint + 'static,
    {
        Engine {
            catalog: Arc::new(Catalog::new()),
            executor: Executor::new(self.threads),
            cache: Arc::new(ResultCache::new(self.cache_capacity)),
            stats: Arc::new(EngineStats::new()),
            planner: Planner::with_config(self.planner),
            _scoring: std::marker::PhantomData,
        }
    }
}

/// A concurrent query-serving engine over the ProxRJ operator.
pub struct Engine<S = EuclideanLogScore>
where
    S: ScoringFunction + Clone + CacheFingerprint + 'static,
{
    catalog: Arc<Catalog>,
    executor: Executor,
    cache: Arc<ResultCache>,
    stats: Arc<EngineStats>,
    planner: Planner,
    _scoring: std::marker::PhantomData<fn() -> S>,
}

impl<S> Engine<S>
where
    S: ScoringFunction + Clone + CacheFingerprint + 'static,
{
    /// An engine with default settings.
    pub fn new() -> Self {
        EngineBuilder::default().build()
    }

    /// A configuration builder.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Registers a relation in the catalog (builds its shared indexes once).
    pub fn register(&self, name: impl AsRef<str>, tuples: Vec<prj_access::Tuple>) -> RelationId {
        self.catalog.register(name, tuples)
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Number of executor worker threads.
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// Engine-level statistics.
    pub fn stats(&self) -> EngineStatsSnapshot {
        self.stats.snapshot()
    }

    /// Result-cache counters.
    pub fn cache_metrics(&self) -> CacheMetrics {
        self.cache.metrics()
    }

    fn cache_key(&self, spec: &QuerySpec<S>) -> CacheKey {
        CacheKey::new(
            spec.relations.iter().map(|r| r.index()).collect(),
            &spec.query,
            spec.k,
            spec.access_kind,
            spec.algorithm,
            spec.scoring.cache_fingerprint(),
        )
    }

    /// Plans the query and builds a problem out of O(1) shared-index views.
    fn prepare(&self, spec: &QuerySpec<S>) -> Result<(Plan, prj_core::Problem<S>), EngineError> {
        let snapshot: Vec<Arc<CatalogRelation>> = self.catalog.snapshot(&spec.relations);
        let reducible = spec.scoring.euclidean_weights().is_some();
        let plan = match spec.algorithm {
            Some(algorithm) => Plan {
                algorithm,
                dominance_period: None,
                rationale: "algorithm pinned by the query".to_string(),
            },
            None => {
                let stats: Vec<_> = snapshot.iter().map(|r| r.stats()).collect();
                self.planner.plan(reducible, &stats)
            }
        };
        let mut builder = ProblemBuilder::new(spec.query.clone(), spec.scoring.clone())
            .k(spec.k)
            .access_kind(spec.access_kind)
            .dominance_period(plan.dominance_period);
        for relation in &snapshot {
            let view = match spec.access_kind {
                AccessKind::Distance if reducible => relation.distance_view(spec.query.clone()),
                // Non-Euclidean proximity: the shared R-tree's Euclidean
                // frontier would disagree with the scoring's own distance, so
                // fall back to a per-query sort under δ.
                AccessKind::Distance => relation.distance_view_by(&spec.scoring, &spec.query),
                AccessKind::Score => relation.score_view(),
            };
            builder = builder.relation(view);
        }
        let problem = builder.build().map_err(EngineError::Prj)?;
        Ok((plan, problem))
    }

    /// Submits a query to the pool and returns a ticket to wait on.
    ///
    /// Cache hits and planning errors resolve the ticket immediately; misses
    /// run on a worker thread.
    pub fn submit(&self, spec: QuerySpec<S>) -> QueryTicket {
        let started = Instant::now();
        let (sender, receiver) = sync_channel(1);
        let key = self.cache_key(&spec);

        if let Some(execution) = self.cache.get(&key) {
            let latency = started.elapsed();
            self.stats.record(QueryRecord {
                latency,
                sum_depths: 0,
                bound_updates: 0,
                from_cache: true,
            });
            let _ = sender.send(Ok(EngineResult {
                execution,
                from_cache: true,
                latency,
            }));
            return QueryTicket { receiver };
        }

        let prepared = self.prepare(&spec);
        match prepared {
            Err(e) => {
                let _ = sender.send(Err(e));
            }
            Ok((plan, mut problem)) => {
                let cache = Arc::clone(&self.cache);
                let stats = Arc::clone(&self.stats);
                self.executor.spawn(move || {
                    // Re-check the cache at execution time: a duplicate query
                    // queued behind the first execution of this key should be
                    // served from its result, not re-run (thundering herd).
                    if let Some(execution) = cache.get(&key) {
                        let latency = started.elapsed();
                        stats.record(QueryRecord {
                            latency,
                            sum_depths: 0,
                            bound_updates: 0,
                            from_cache: true,
                        });
                        let _ = sender.send(Ok(EngineResult {
                            execution,
                            from_cache: true,
                            latency,
                        }));
                        return;
                    }
                    let outcome = plan.algorithm.run(&mut problem).map_err(EngineError::Prj);
                    let response = outcome.map(|result| {
                        let latency = started.elapsed();
                        stats.record(QueryRecord {
                            latency,
                            sum_depths: result.stats.sum_depths(),
                            bound_updates: result.metrics.bound_updates,
                            from_cache: false,
                        });
                        let execution = Arc::new(CachedExecution { result, plan });
                        cache.insert(key, Arc::clone(&execution));
                        EngineResult {
                            execution,
                            from_cache: false,
                            latency,
                        }
                    });
                    let _ = sender.send(response);
                });
            }
        }
        QueryTicket { receiver }
    }

    /// Runs one query to completion (submit + wait).
    pub fn query(&self, spec: QuerySpec<S>) -> Result<EngineResult, EngineError> {
        self.submit(spec).wait()
    }

    /// Submits a batch and waits for every result, preserving order.
    pub fn query_batch(&self, specs: Vec<QuerySpec<S>>) -> Vec<Result<EngineResult, EngineError>> {
        let tickets: Vec<QueryTicket> = specs.into_iter().map(|s| self.submit(s)).collect();
        tickets.into_iter().map(|t| t.wait()).collect()
    }

    /// Opens a streaming query: results are certified and delivered one at a
    /// time (the paper's incremental pulling model), with backpressure.
    ///
    /// A fully drained stream populates the result cache just like a batch
    /// query; a cache hit replays the memoised combinations. Live streams run
    /// on a dedicated thread rather than a pool worker: their producer is
    /// consumer-paced (it blocks once it runs a few results
    /// ahead), and a slow or idle consumer must not starve the pool that
    /// serves batch queries.
    pub fn stream(&self, spec: QuerySpec<S>) -> Result<ResultStream, EngineError> {
        let started = Instant::now();
        let key = self.cache_key(&spec);
        if let Some(execution) = self.cache.get(&key) {
            self.stats.record(QueryRecord {
                latency: started.elapsed(),
                sum_depths: 0,
                bound_updates: 0,
                from_cache: true,
            });
            let plan = execution.plan.clone();
            return Ok(ResultStream {
                inner: StreamInner::Replay {
                    execution,
                    cursor: 0,
                },
                plan,
                from_cache: true,
            });
        }

        let (plan, problem) = self.prepare(&spec)?;
        let mut run = plan
            .algorithm
            .start_streaming(problem)
            .map_err(EngineError::Prj)?;
        let (sender, receiver) = sync_channel(STREAM_BUFFER);
        let cache = Arc::clone(&self.cache);
        let stats = Arc::clone(&self.stats);
        let worker_plan = plan.clone();
        std::thread::Builder::new()
            .name("prj-engine-stream".to_string())
            .spawn(move || {
                while let Some(combo) = run.next_certified() {
                    if sender.send(combo).is_err() {
                        // Consumer dropped the stream: abandon the run
                        // without caching the partial result.
                        return;
                    }
                }
                let result = run.into_result();
                stats.record(QueryRecord {
                    // The operator tracks its active stepping time, so the
                    // recorded latency measures engine work, not how slowly
                    // the consumer drained the stream.
                    latency: result.metrics.total_time,
                    sum_depths: result.stats.sum_depths(),
                    bound_updates: result.metrics.bound_updates,
                    from_cache: false,
                });
                cache.insert(
                    key,
                    Arc::new(CachedExecution {
                        result,
                        plan: worker_plan,
                    }),
                );
                // Dropping the sender closes the stream.
            })
            .expect("spawn stream thread");
        Ok(ResultStream {
            inner: StreamInner::Live(receiver),
            plan,
            from_cache: false,
        })
    }
}

impl<S> Default for Engine<S>
where
    S: ScoringFunction + Clone + CacheFingerprint + 'static,
{
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prj_access::{Tuple, TupleId};

    fn table1() -> Vec<Vec<Tuple>> {
        let mk = |rel: usize, rows: &[([f64; 2], f64)]| -> Vec<Tuple> {
            rows.iter()
                .enumerate()
                .map(|(i, (x, s))| Tuple::new(TupleId::new(rel, i), Vector::from(*x), *s))
                .collect()
        };
        vec![
            mk(0, &[([0.0, -0.5], 0.5), ([0.0, 1.0], 1.0)]),
            mk(1, &[([1.0, 1.0], 1.0), ([-2.0, 2.0], 0.8)]),
            mk(2, &[([-1.0, 1.0], 1.0), ([-2.0, -2.0], 0.4)]),
        ]
    }

    fn table1_engine() -> (Engine, Vec<RelationId>) {
        let engine: Engine = EngineBuilder::default().threads(2).build();
        let ids = table1()
            .into_iter()
            .enumerate()
            .map(|(i, tuples)| engine.register(format!("R{}", i + 1), tuples))
            .collect();
        (engine, ids)
    }

    #[test]
    fn serves_the_paper_example() {
        let (engine, ids) = table1_engine();
        let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 1)
            .with_scoring(EuclideanLogScore::new(1.0, 1.0, 1.0));
        let result = engine.query(spec).expect("query");
        assert_eq!(result.combinations().len(), 1);
        // Example 3.1: the top combination scores -7.
        assert!((result.combinations()[0].score - (-7.0)).abs() < 0.05);
        assert!(!result.from_cache);
    }

    #[test]
    fn second_identical_query_hits_the_cache() {
        let (engine, ids) = table1_engine();
        let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 2);
        let cold = engine.query(spec.clone()).expect("cold");
        let warm = engine.query(spec).expect("warm");
        assert!(!cold.from_cache);
        assert!(warm.from_cache);
        assert_eq!(cold.combinations(), warm.combinations());
        let stats = engine.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.executed, 1);
        assert_eq!(engine.cache_metrics().hits, 1);
    }

    #[test]
    fn different_parameters_do_not_share_cache_entries() {
        let (engine, ids) = table1_engine();
        let base = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 2);
        engine.query(base.clone()).expect("first");
        let different_k = QuerySpec {
            k: 3,
            ..base.clone()
        };
        assert!(!engine.query(different_k).expect("k=3").from_cache);
        let different_q = QuerySpec {
            query: Vector::from([0.1, 0.0]),
            ..base.clone()
        };
        assert!(!engine.query(different_q).expect("moved q").from_cache);
        let different_w = base
            .clone()
            .with_scoring(EuclideanLogScore::new(2.0, 1.0, 1.0));
        assert!(!engine.query(different_w).expect("weights").from_cache);
        let pinned = base.with_algorithm(Algorithm::Cbrr);
        assert!(!engine.query(pinned).expect("pinned").from_cache);
    }

    #[test]
    fn streaming_matches_batch_and_populates_cache() {
        let (engine, ids) = table1_engine();
        let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 8);
        let batch = engine.query(spec.clone()).expect("batch");
        engine.cache.clear();
        let mut stream = engine.stream(spec.clone()).expect("stream");
        let mut streamed = Vec::new();
        while let Some(combo) = stream.next_result() {
            streamed.push(combo);
        }
        assert_eq!(streamed.as_slice(), batch.combinations());
        // The drained stream cached its execution; a replayed stream agrees.
        let mut replay = engine.stream(spec).expect("replay");
        assert!(replay.from_cache);
        let mut replayed = Vec::new();
        while let Some(combo) = replay.next_result() {
            replayed.push(combo);
        }
        assert_eq!(replayed, streamed);
    }

    #[test]
    fn pinned_algorithm_is_respected() {
        let (engine, ids) = table1_engine();
        let spec =
            QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 1).with_algorithm(Algorithm::Cbrr);
        let result = engine.query(spec).expect("query");
        assert_eq!(result.plan().algorithm, Algorithm::Cbrr);
        assert!(result.plan().rationale.contains("pinned"));
    }

    #[test]
    fn cosine_scoring_is_served_with_corner_bound() {
        let engine: Engine<CosineSimilarityScore> = EngineBuilder::default().threads(1).build();
        let mk = |rel: usize, rows: &[([f64; 2], f64)]| -> Vec<Tuple> {
            rows.iter()
                .enumerate()
                .map(|(i, (x, s))| Tuple::new(TupleId::new(rel, i), Vector::from(*x), *s))
                .collect()
        };
        let a = engine.register("a", mk(0, &[([0.5, 0.1], 0.9), ([0.0, 1.0], 0.8)]));
        let b = engine.register("b", mk(1, &[([0.8, 0.2], 0.7), ([-1.0, 0.1], 0.6)]));
        let spec = QuerySpec {
            relations: vec![a, b],
            query: Vector::from([1.0, 0.0]),
            k: 1,
            scoring: CosineSimilarityScore::default(),
            access_kind: AccessKind::Distance,
            algorithm: None,
        };
        let result = engine.query(spec).expect("cosine query");
        assert!(matches!(
            result.plan().algorithm,
            Algorithm::Cbrr | Algorithm::Cbpa
        ));
        assert_eq!(result.combinations().len(), 1);
    }

    #[test]
    fn invalid_query_reports_an_operator_error() {
        let (engine, ids) = table1_engine();
        let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 0);
        match engine.query(spec) {
            Err(EngineError::Prj(PrjError::InvalidK)) => {}
            other => panic!("expected InvalidK, got {other:?}"),
        }
    }
}
