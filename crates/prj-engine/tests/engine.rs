//! Integration tests for the serving engine: concurrent execution must be
//! indistinguishable from direct `Algorithm::run` calls, and the cache must
//! short-circuit re-execution.

use prj_core::{Algorithm, EuclideanLogScore, ProblemBuilder, RelationBackend};
use prj_data::{generate_synthetic, SyntheticConfig};
use prj_engine::{Engine, EngineBuilder, QuerySpec, RelationId};
use prj_geometry::Vector;

fn synthetic_engine(threads: usize) -> (Engine, Vec<RelationId>, Vec<Vec<prj_core::Tuple>>) {
    let relations = generate_synthetic(&SyntheticConfig {
        n_relations: 3,
        density: 40.0,
        ..Default::default()
    });
    let engine: Engine = EngineBuilder::default().threads(threads).build();
    let ids = relations
        .iter()
        .enumerate()
        .map(|(i, tuples)| engine.register(format!("R{}", i + 1), tuples.clone()))
        .collect();
    (engine, ids, relations)
}

/// Runs the same query directly through the library, using the R-tree
/// backend so the sorted-access order matches the engine's shared R-tree
/// views tuple for tuple.
fn direct_run(
    relations: &[Vec<prj_core::Tuple>],
    query: &Vector,
    k: usize,
    algorithm: Algorithm,
) -> prj_core::RankJoinResult {
    let mut problem = ProblemBuilder::new(query.clone(), EuclideanLogScore::default())
        .k(k)
        .backend(RelationBackend::RTree)
        .relations_from_tuples(relations.to_vec())
        .build()
        .expect("valid problem");
    algorithm.run(&mut problem).expect("reducible scoring")
}

fn query_grid(n: usize) -> Vec<(Vector, usize)> {
    (0..n)
        .map(|i| {
            let x = (i % 8) as f64 / 16.0 - 0.25;
            let y = (i / 8) as f64 / 16.0 - 0.25;
            (Vector::from([x, y]), 1 + i % 5)
        })
        .collect()
}

#[test]
fn concurrent_queries_match_direct_runs_exactly() {
    let (engine, ids, relations) = synthetic_engine(4);
    let queries = query_grid(32);

    // Submit everything up front so the queries genuinely overlap on the
    // pool, then compare each to a fresh single-threaded library run.
    let tickets: Vec<_> = queries
        .iter()
        .map(|(q, k)| {
            engine.submit(
                QuerySpec::top_k(ids.clone(), q.clone(), *k).with_algorithm(Algorithm::Tbpa),
            )
        })
        .collect();
    for (ticket, (q, k)) in tickets.into_iter().zip(queries.iter()) {
        let served = ticket.wait().expect("engine result");
        let direct = direct_run(&relations, q, *k, Algorithm::Tbpa);
        assert_eq!(
            served.combinations(),
            direct.combinations.as_slice(),
            "engine result must be byte-identical to Algorithm::run"
        );
        assert_eq!(served.result().stats, direct.stats, "same sorted accesses");
    }
}

#[test]
fn planned_queries_match_direct_runs_under_the_planned_algorithm() {
    let (engine, ids, relations) = synthetic_engine(4);
    for (q, k) in query_grid(12) {
        let served = engine
            .query(QuerySpec::top_k(ids.clone(), q.clone(), k))
            .expect("engine result");
        let planned = served.plan().algorithm;
        let direct = direct_run(&relations, &q, k, planned);
        assert_eq!(served.combinations(), direct.combinations.as_slice());
    }
}

#[test]
fn cache_hits_skip_re_execution() {
    let (engine, ids, _) = synthetic_engine(4);
    let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 5);

    let cold = engine.query(spec.clone()).expect("cold query");
    assert!(!cold.from_cache);

    // 16 concurrent identical queries: every one must be served from the
    // cache without running the operator again.
    let tickets: Vec<_> = (0..16).map(|_| engine.submit(spec.clone())).collect();
    for ticket in tickets {
        let warm = ticket.wait().expect("warm query");
        assert!(warm.from_cache);
        assert_eq!(warm.combinations(), cold.combinations());
        // A cached result performs no sorted accesses of its own: the depths
        // reported are the memoised cold run's.
        assert_eq!(warm.result().stats, cold.result().stats);
    }

    let stats = engine.stats();
    assert_eq!(stats.queries, 17);
    assert_eq!(stats.executed, 1, "only the cold query may execute");
    assert_eq!(stats.cache_hits, 16);
    let cache = engine.cache_metrics();
    assert_eq!(cache.hits, 16);
    assert_eq!(cache.entries, 1);
}

#[test]
fn streaming_and_batch_agree_under_concurrency() {
    let (engine, ids, relations) = synthetic_engine(4);
    let query = Vector::from([0.1, -0.1]);
    let k = 6;
    let spec = QuerySpec::top_k(ids, query.clone(), k).with_algorithm(Algorithm::Tbrr);

    let mut streams: Vec<_> = (0..4)
        .map(|_| engine.stream(spec.clone()).expect("stream"))
        .collect();
    let direct = direct_run(&relations, &query, k, Algorithm::Tbrr);
    for stream in &mut streams {
        let mut got = Vec::new();
        while let Some(combo) = stream.next_result() {
            got.push(combo);
        }
        assert_eq!(got.as_slice(), direct.combinations.as_slice());
    }
}

#[test]
fn mixed_workload_is_consistent() {
    // A cold round followed by two concurrent warm rounds: once the cold
    // round has completed, repeats must be pure cache hits.
    let (engine, ids, _) = synthetic_engine(8);
    let queries = query_grid(24);
    let cold: Vec<_> = queries
        .iter()
        .map(|(q, k)| engine.submit(QuerySpec::top_k(ids.clone(), q.clone(), *k)))
        .collect();
    for ticket in cold {
        assert!(!ticket
            .wait()
            .expect("cold result")
            .combinations()
            .is_empty());
    }
    let warm: Vec<_> = (0..2)
        .flat_map(|_| {
            queries
                .iter()
                .map(|(q, k)| engine.submit(QuerySpec::top_k(ids.clone(), q.clone(), *k)))
                .collect::<Vec<_>>()
        })
        .collect();
    for ticket in warm {
        let result = ticket.wait().expect("warm result");
        assert!(result.from_cache);
    }
    let stats = engine.stats();
    assert_eq!(stats.queries, 72);
    assert_eq!(
        stats.executed, 24,
        "each distinct spec executes exactly once"
    );
    assert_eq!(stats.cache_hits, 48);
}
