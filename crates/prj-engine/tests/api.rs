//! End-to-end tests of the `prj-api` boundary, including the acceptance
//! criterion of the API redesign: a scoring function defined *outside*
//! `prj-core`/`prj-engine` — right here in the test — can be registered at
//! runtime via [`prj_core::ScoringSpec`] and served through
//! [`Request::TopK`] with correct cache keying, and a mutation request
//! observably invalidates previously cached results for that relation.

use prj_api::{ErrorKind, QueryRequest, Request, Response, ScoringSelector, TupleData};
use prj_core::{fingerprint, ScoringFunction, ScoringSpec, Weights};
use prj_engine::{EngineBuilder, Session};
use prj_geometry::{Manhattan, Metric, Vector};
use std::sync::Arc;

/// A scoring family the engine has never heard of at compile time:
/// score term minus Manhattan (L1) distances to the query and centroid.
/// L1 is not Euclidean, so the engine must serve it through the
/// corner-bound algorithms with per-query δ-sorted views.
#[derive(Debug, Clone, Copy)]
struct ManhattanScore {
    w_s: f64,
    w_q: f64,
    w_mu: f64,
}

impl ScoringFunction for ManhattanScore {
    fn proximity_weighted_score(&self, sigma: f64, dq: f64, dmu: f64) -> f64 {
        self.w_s * sigma - self.w_q * dq - self.w_mu * dmu
    }

    fn distance(&self, a: &Vector, b: &Vector) -> f64 {
        Manhattan.distance(a, b)
    }

    fn name(&self) -> &'static str {
        "manhattan"
    }
}

impl ScoringSpec for ManhattanScore {
    fn cache_fingerprint(&self) -> u64 {
        fingerprint(
            ScoringFunction::name(self),
            &[self.w_s, self.w_q, self.w_mu],
        )
    }
}

fn session_with_manhattan() -> Session {
    let engine = Arc::new(EngineBuilder::default().threads(2).build());
    engine.scoring_registry().register("manhattan", |params| {
        let w = match params {
            [] => Weights::default(),
            [w_s, w_q, w_mu] => Weights {
                w_s: *w_s,
                w_q: *w_q,
                w_mu: *w_mu,
            },
            _ => return Err("expected no parameters or [w_s, w_q, w_mu]".to_string()),
        };
        Ok(Arc::new(ManhattanScore {
            w_s: w.w_s,
            w_q: w.w_q,
            w_mu: w.w_mu,
        }) as _)
    });
    let session = Session::new(engine);
    for (name, rows) in [
        ("shops", vec![([0.5, 0.0], 0.9), ([3.0, 3.0], 1.0)]),
        ("cafes", vec![([0.0, 0.5], 0.8), ([-3.0, 3.0], 1.0)]),
    ] {
        let response = session.handle(Request::RegisterRelation {
            name: name.to_string(),
            tuples: rows
                .into_iter()
                .map(|(x, s)| TupleData::new(x.to_vec(), s))
                .collect(),
        });
        assert!(
            matches!(response, Response::Registered { .. }),
            "register failed: {response:?}"
        );
    }
    session
}

fn manhattan_query(params: &[f64]) -> QueryRequest {
    QueryRequest::new(vec!["shops".into(), "cafes".into()], [0.0, 0.0])
        .k(1)
        .scoring(ScoringSelector::with_params("manhattan", params.to_vec()))
}

fn rows_of(response: Response) -> (Vec<prj_api::ResultRow>, bool) {
    match response {
        Response::Results {
            rows, from_cache, ..
        } => (rows, from_cache),
        other => panic!("expected results, got {other:?}"),
    }
}

/// Exhaustive oracle under the test-local scoring, over the current
/// relation contents.
fn best_score(shops: &[([f64; 2], f64)], cafes: &[([f64; 2], f64)], w: [f64; 3]) -> f64 {
    let scoring = ManhattanScore {
        w_s: w[0],
        w_q: w[1],
        w_mu: w[2],
    };
    let q = Vector::from([0.0, 0.0]);
    let mut best = f64::NEG_INFINITY;
    for (xa, sa) in shops {
        for (xb, sb) in cafes {
            let a = Vector::from(*xa);
            let b = Vector::from(*xb);
            let score = scoring.score_members(&[(&a, *sa), (&b, *sb)], &q);
            best = best.max(score);
        }
    }
    best
}

#[test]
fn out_of_crate_scoring_is_registered_and_served() {
    let session = session_with_manhattan();
    let shops = [([0.5, 0.0], 0.9), ([3.0, 3.0], 1.0)];
    let cafes = [([0.0, 0.5], 0.8), ([-3.0, 3.0], 1.0)];

    let (rows, from_cache) = rows_of(session.handle(Request::TopK(manhattan_query(&[]))));
    assert!(!from_cache);
    assert_eq!(rows.len(), 1);
    let expected = best_score(&shops, &cafes, [1.0, 1.0, 1.0]);
    assert!(
        (rows[0].score - expected).abs() < 1e-9,
        "engine {} vs oracle {expected}",
        rows[0].score
    );
    assert_eq!(rows[0].tuples, vec![(0, 0), (1, 0)]);
}

#[test]
fn custom_scoring_cache_keying_is_correct() {
    let session = session_with_manhattan();

    // Same name + same parameters: second query is a cache hit.
    let (cold, from_cache) = rows_of(session.handle(Request::TopK(manhattan_query(&[]))));
    assert!(!from_cache);
    let (warm, from_cache) = rows_of(session.handle(Request::TopK(manhattan_query(&[]))));
    assert!(from_cache, "identical custom-scoring query must hit");
    assert_eq!(warm, cold);

    // Same family, different parameters: must miss (parameters are in the
    // fingerprint).
    let (_, from_cache) = rows_of(session.handle(Request::TopK(manhattan_query(&[2.0, 1.0, 1.0]))));
    assert!(!from_cache, "different parameters must not share an entry");

    // Different family with identical parameters: must also miss (the
    // family name is in the fingerprint).
    let (_, from_cache) = rows_of(session.handle(Request::TopK(
        manhattan_query(&[]).scoring(ScoringSelector::named("cosine-similarity")),
    )));
    assert!(!from_cache, "different families must not share an entry");
}

#[test]
fn mutation_invalidates_custom_scoring_results() {
    let session = session_with_manhattan();
    let (cold, _) = rows_of(session.handle(Request::TopK(manhattan_query(&[]))));
    assert!(rows_of(session.handle(Request::TopK(manhattan_query(&[])))).1);

    // Append a perfect shop on the query point: epoch bump, cache miss, and
    // the new tuple must win.
    match session.handle(Request::AppendTuples {
        relation: "shops".into(),
        tuples: vec![TupleData::new([0.0, 0.0], 1.0)],
    }) {
        Response::Appended { epoch: 1, .. } => {}
        other => panic!("append failed: {other:?}"),
    }
    let (fresh, from_cache) = rows_of(session.handle(Request::TopK(manhattan_query(&[]))));
    assert!(
        !from_cache,
        "post-mutation query must not see the old entry"
    );
    assert!(fresh[0].score > cold[0].score);
    assert_eq!(fresh[0].tuples[0], (0, 2), "the appended tuple wins");

    let shops = [([0.5, 0.0], 0.9), ([3.0, 3.0], 1.0), ([0.0, 0.0], 1.0)];
    let cafes = [([0.0, 0.5], 0.8), ([-3.0, 3.0], 1.0)];
    let expected = best_score(&shops, &cafes, [1.0, 1.0, 1.0]);
    assert!((fresh[0].score - expected).abs() < 1e-9);

    // Dropping a queried relation invalidates and then fails loudly: the
    // name stops resolving, and a stale id reports the drop explicitly.
    session.handle(Request::DropRelation {
        relation: "cafes".into(),
    });
    match session.handle(Request::TopK(manhattan_query(&[]))) {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::UnknownRelation),
        other => panic!("expected an unknown-relation error, got {other:?}"),
    }
    match session.handle(Request::TopK(
        QueryRequest::new(
            vec![prj_api::RelationRef::Id(0), prj_api::RelationRef::Id(1)],
            [0.0, 0.0],
        )
        .k(1)
        .scoring(ScoringSelector::named("manhattan")),
    )) {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::RelationDropped),
        other => panic!("expected a dropped-relation error, got {other:?}"),
    }
}

#[test]
fn unregistered_family_stays_unknown_until_registered() {
    let engine = Arc::new(EngineBuilder::default().threads(1).build());
    let session = Session::new(Arc::clone(&engine));
    session.handle(Request::RegisterRelation {
        name: "r".to_string(),
        tuples: vec![TupleData::new([0.0], 0.5)],
    });
    let query = || {
        Request::TopK(
            QueryRequest::new(vec!["r".into()], [0.0])
                .k(1)
                .scoring(ScoringSelector::named("manhattan")),
        )
    };
    match session.handle(query()) {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::UnknownScoring),
        other => panic!("expected unknown-scoring, got {other:?}"),
    }
    // Runtime registration flips the same request to success.
    engine.scoring_registry().register("manhattan", |_| {
        Ok(Arc::new(ManhattanScore {
            w_s: 1.0,
            w_q: 1.0,
            w_mu: 1.0,
        }) as _)
    });
    assert!(matches!(session.handle(query()), Response::Results { .. }));
}
