//! Property tests for cache correctness under mutation: `AppendTuples` /
//! `DropRelation` bump the relation's (per-shard) epochs, and a
//! post-mutation query never returns the pre-mutation cached result.
//!
//! Every property runs at several shard counts: with sharding the cache key
//! folds in the full epoch *vector*, and a single-tuple append bumps
//! exactly one entry of it — the scalar epoch reported on the API surface
//! is the vector's sum, so the `+1 per append` contract is unchanged.

use prj_api::{QueryRequest, Request, Response, TupleData};
use prj_core::{EuclideanLogScore, ScoringFunction};
use prj_engine::{EngineBuilder, Session};
use prj_geometry::Vector;
use proptest::prelude::*;
use std::sync::Arc;

fn register(session: &Session, name: &str, rows: &[([f64; 2], f64)]) {
    let response = session.handle(Request::RegisterRelation {
        name: name.to_string(),
        tuples: rows
            .iter()
            .map(|(x, s)| TupleData::new(x.to_vec(), *s))
            .collect(),
    });
    assert!(matches!(response, Response::Registered { .. }));
}

fn top1(session: &Session, q: [f64; 2]) -> (prj_api::ResultRow, bool) {
    match session.handle(Request::TopK(
        QueryRequest::new(vec!["a".into(), "b".into()], q.to_vec()).k(1),
    )) {
        Response::Results {
            mut rows,
            from_cache,
            ..
        } => (rows.remove(0), from_cache),
        other => panic!("query failed: {other:?}"),
    }
}

/// Exhaustive oracle over the current contents under Eq. 2 unit weights.
fn oracle_top1(a: &[([f64; 2], f64)], b: &[([f64; 2], f64)], q: [f64; 2]) -> f64 {
    let scoring = EuclideanLogScore::default();
    let query = Vector::from(q);
    let mut best = f64::NEG_INFINITY;
    for (xa, sa) in a {
        for (xb, sb) in b {
            let va = Vector::from(*xa);
            let vb = Vector::from(*xb);
            best = best.max(scoring.score_members(&[(&va, *sa), (&vb, *sb)], &query));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random initial contents, then a random sequence of appends, each
    /// followed by the same query: every append bumps the epoch by exactly
    /// one, the post-append query is never served from the cache, and its
    /// result always matches an exhaustive oracle over the *current*
    /// contents (i.e. it can never be the memoised pre-mutation answer).
    #[test]
    fn appends_bump_epochs_and_never_serve_stale_results(
        a in prop::collection::vec((prop::array::uniform2(-3.0..3.0f64), 0.1..1.0f64), 1..5),
        b in prop::collection::vec((prop::array::uniform2(-3.0..3.0f64), 0.1..1.0f64), 1..5),
        appends in prop::collection::vec(
            ((prop::array::uniform2(-3.0..3.0f64), 0.1..1.0f64), 0usize..2),
            1..5,
        ),
        q in prop::array::uniform2(-1.0..1.0f64),
    ) {
        for shards in [1usize, 3] {
        let engine = Arc::new(EngineBuilder::default().threads(2).shards(shards).build());
        let session = Session::new(Arc::clone(&engine));
        let mut contents = [a.clone(), b.clone()];
        register(&session, "a", &a);
        register(&session, "b", &b);

        // Warm the cache.
        let (cold, from_cache) = top1(&session, q);
        prop_assert!(!from_cache);
        prop_assert!((cold.score - oracle_top1(&contents[0], &contents[1], q)).abs() < 1e-9);
        let (_, from_cache) = top1(&session, q);
        prop_assert!(from_cache, "repeat without mutation must hit");

        let mut expected_epochs = [0u64; 2];
        for &((x, s), target) in &appends {
            let name = if target == 0 { "a" } else { "b" };
            let response = session.handle(Request::AppendTuples {
                relation: name.into(),
                tuples: vec![TupleData::new(x.to_vec(), s)],
            });
            expected_epochs[target] += 1;
            match response {
                Response::Appended { id, epoch, cardinality } => {
                    prop_assert_eq!(id, target);
                    prop_assert_eq!(epoch, expected_epochs[target], "epoch (vector sum) bumps by one");
                    contents[target].push((x, s));
                    prop_assert_eq!(cardinality, contents[target].len());
                    // The epoch vector sums to the scalar epoch, has one
                    // entry per shard, and a single-tuple append bumped
                    // exactly one entry.
                    let rel_id = engine.catalog().lookup(name).expect("lookup");
                    let rel = engine.catalog().relation(rel_id).expect("relation");
                    let epochs = rel.epochs();
                    prop_assert_eq!(epochs.len(), shards);
                    prop_assert_eq!(epochs.iter().sum::<u64>(), epoch);
                }
                other => { prop_assert!(false, "append failed: {:?}", other); }
            }

            let (row, from_cache) = top1(&session, q);
            prop_assert!(!from_cache, "post-mutation query must not be served from cache");
            let fresh = oracle_top1(&contents[0], &contents[1], q);
            prop_assert!(
                (row.score - fresh).abs() < 1e-9,
                "post-mutation result {} must match the current contents ({})",
                row.score, fresh
            );
            // And the fresh answer becomes cacheable under the new epochs.
            let (_, from_cache) = top1(&session, q);
            prop_assert!(from_cache, "repeat after mutation must hit the new entry");
        }
        }
    }

    /// Dropping a relation bumps its epoch and purges its cache entries:
    /// queries over a re-registered same-name relation can never see the
    /// dropped relation's memoised results.
    #[test]
    fn drops_purge_and_reregistration_does_not_resurrect_results(
        a in prop::collection::vec((prop::array::uniform2(-3.0..3.0f64), 0.1..1.0f64), 1..4),
        b in prop::collection::vec((prop::array::uniform2(-3.0..3.0f64), 0.1..1.0f64), 1..4),
        b2 in prop::collection::vec((prop::array::uniform2(-3.0..3.0f64), 0.1..1.0f64), 1..4),
        q in prop::array::uniform2(-1.0..1.0f64),
    ) {
        for shards in [1usize, 4] {
        let engine = Arc::new(EngineBuilder::default().threads(2).shards(shards).build());
        let session = Session::new(Arc::clone(&engine));
        register(&session, "a", &a);
        register(&session, "b", &b);
        let _ = top1(&session, q);
        prop_assert!(top1(&session, q).1, "warm before the drop");

        match session.handle(Request::DropRelation { relation: "b".into() }) {
            Response::Dropped { id: 1, epoch: 1 } => {}
            other => { prop_assert!(false, "drop failed: {:?}", other); }
        }
        prop_assert!(engine.cache_metrics().invalidations >= 1, "drop purges entries");

        // Re-register the name with different contents: the fresh query
        // must reflect b2, not the memoised result over b.
        register(&session, "b", &b2);
        let (row, from_cache) = top1(&session, q);
        prop_assert!(!from_cache);
        let fresh = oracle_top1(&a, &b2, q);
        prop_assert!((row.score - fresh).abs() < 1e-9);
        }
    }
}
