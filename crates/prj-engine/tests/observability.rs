//! Engine-level observability: per-query span traces and the metric series
//! behind the Prometheus exposition.

use prj_engine::{EngineBuilder, QuerySpec, RelationId};
use prj_geometry::Vector;

fn table1_engine(shards: usize) -> (prj_engine::Engine, Vec<RelationId>) {
    let engine = EngineBuilder::default().threads(2).shards(shards).build();
    let mk = |rel: usize, rows: &[([f64; 2], f64)]| -> Vec<prj_access::Tuple> {
        rows.iter()
            .enumerate()
            .map(|(i, (x, s))| {
                prj_access::Tuple::new(prj_access::TupleId::new(rel, i), Vector::from(*x), *s)
            })
            .collect()
    };
    let tables = vec![
        mk(0, &[([0.0, -0.5], 0.5), ([0.0, 1.0], 1.0)]),
        mk(1, &[([1.0, 1.0], 1.0), ([-2.0, 2.0], 0.8)]),
        mk(2, &[([-1.0, 1.0], 1.0), ([-2.0, -2.0], 0.4)]),
    ];
    let ids = tables
        .into_iter()
        .enumerate()
        .map(|(i, tuples)| engine.register(format!("R{}", i + 1), tuples))
        .collect();
    (engine, ids)
}

#[test]
fn a_query_produces_a_rooted_span_tree() {
    let (engine, ids) = table1_engine(1);
    let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 2);
    engine.query(spec).expect("query");
    let spans = engine.recorder().finished();
    let root = spans
        .iter()
        .find(|s| s.name == "query")
        .expect("root query span");
    assert_eq!(root.parent, None);
    assert!(root
        .attrs
        .contains(&("cache".to_string(), "miss".to_string())));
    assert!(root.attrs.iter().any(|(k, _)| k == "sum_depths"));
    let plan = spans.iter().find(|s| s.name == "plan").expect("plan span");
    assert_eq!(plan.parent, Some(root.id), "plan nests under the query");
    let unit = spans.iter().find(|s| s.name == "unit").expect("unit span");
    assert_eq!(unit.parent, Some(root.id), "unit nests under the query");
    assert!(unit
        .attrs
        .contains(&("remote".to_string(), "false".to_string())));
    // All spans of the query share its trace.
    assert!(spans.iter().all(|s| s.trace == root.trace));
}

#[test]
fn cache_hits_are_traced_as_hits() {
    let (engine, ids) = table1_engine(1);
    let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 2);
    engine.query(spec.clone()).expect("cold");
    engine.query(spec).expect("warm");
    let hits: Vec<_> = engine
        .recorder()
        .finished()
        .into_iter()
        .filter(|s| {
            s.name == "query" && s.attrs.contains(&("cache".to_string(), "hit".to_string()))
        })
        .collect();
    assert_eq!(hits.len(), 1, "the warm query is traced as a cache hit");
}

#[test]
fn sharded_queries_trace_units_and_a_merge() {
    let (engine, ids) = table1_engine(4);
    let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 8);
    engine.query(spec).expect("query");
    let spans = engine.recorder().finished();
    let root = spans.iter().find(|s| s.name == "query").expect("root");
    let units: Vec<_> = spans.iter().filter(|s| s.name == "unit").collect();
    assert!(!units.is_empty());
    assert!(units.iter().all(|u| u.parent == Some(root.id)));
    if units.len() > 1 {
        let merge = spans.iter().find(|s| s.name == "merge").expect("merge");
        assert_eq!(merge.parent, Some(root.id));
    }
}

#[test]
fn trace_capacity_zero_disables_tracing_but_not_metrics() {
    let (engine, ids) = {
        let engine = EngineBuilder::default()
            .threads(1)
            .trace_capacity(0)
            .build();
        let tuples: Vec<prj_access::Tuple> = (0..4)
            .map(|i| {
                prj_access::Tuple::new(
                    prj_access::TupleId::new(0, i),
                    Vector::from([i as f64, 0.0]),
                    0.5,
                )
            })
            .collect();
        let id = engine.register("r", tuples);
        (engine, vec![id])
    };
    engine
        .query(QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 1))
        .expect("query");
    assert!(engine.recorder().finished().is_empty(), "no spans recorded");
    let samples = engine.metrics_samples();
    let queries = samples
        .iter()
        .find(|s| s.name == "prj_queries_total")
        .expect("series");
    assert_eq!(queries.value, 1.0, "metrics still flow with tracing off");
}

#[test]
fn metrics_cover_latency_cache_and_relation_depths() {
    let (engine, ids) = table1_engine(1);
    let spec = QuerySpec::top_k(ids.clone(), Vector::from([0.0, 0.0]), 2);
    engine.query(spec.clone()).expect("cold");
    engine.query(spec).expect("warm");
    let samples = engine.metrics_samples();
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name && !s.labels.iter().any(|(k, _)| k == "le"))
            .map(|s| s.value)
            .unwrap_or_else(|| panic!("missing series {name}"))
    };
    assert_eq!(value("prj_queries_total"), 2.0);
    assert_eq!(value("prj_cache_hits_total"), 1.0);
    assert_eq!(value("prj_cache_misses_total"), 1.0);
    assert_eq!(value("prj_query_latency_seconds_count"), 2.0);
    assert!(value("prj_sum_depths_total") > 0.0);
    // One depth series per joined relation, each with accesses.
    for id in &ids {
        let label = format!("r{}", id.index());
        let series = samples
            .iter()
            .find(|s| {
                s.name == "prj_relation_depth_total"
                    && s.labels == vec![("relation".to_string(), label.clone())]
            })
            .unwrap_or_else(|| panic!("missing relation series {label}"));
        assert!(series.value > 0.0);
    }
    // And the whole snapshot renders as valid exposition text.
    let text = engine.metrics_render();
    assert!(text.contains("# TYPE prj_query_latency_seconds histogram"));
    assert!(text.contains("prj_relation_depth_total{relation=\"r0\"}"));
}

#[test]
fn streamed_queries_record_spans_and_metrics_too() {
    let (engine, ids) = table1_engine(1);
    let spec = QuerySpec::top_k(ids, Vector::from([0.0, 0.0]), 4);
    let mut stream = engine.stream(spec).expect("stream");
    while stream.next_result().is_some() {}
    // The producer finishes the root span asynchronously after the last
    // result; wait for it briefly.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let spans = engine.recorder().finished();
        if let Some(root) = spans.iter().find(|s| s.name == "query") {
            assert!(root
                .attrs
                .contains(&("cache".to_string(), "miss".to_string())));
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "stream root span never finished"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let samples = engine.metrics_samples();
    let queries = samples
        .iter()
        .find(|s| s.name == "prj_queries_total")
        .expect("series");
    assert_eq!(queries.value, 1.0);
}
