//! Satellite coverage for the per-shard unit cache: a single-shard epoch
//! bump must re-execute only the touched unit — the whole-query entry dies
//! (its epoch-vector key changed), but the sibling shards' memoised units
//! are reused and only the mutated slice recomputes.

use prj_access::{Tuple, TupleId};
use prj_core::{naive_rank_join, EuclideanLogScore, ProblemBuilder, ScoredCombination};
use prj_engine::{EngineBuilder, QuerySpec};
use prj_geometry::Vector;

const SHARDS: usize = 4;

/// A wide spread of tuples so several driving shards are populated.
fn spread(rel: usize, n: usize) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            let x = ((i * 37) % 100) as f64 / 10.0 - 5.0;
            let y = ((i * 53) % 100) as f64 / 10.0 - 5.0;
            Tuple::new(
                TupleId::new(rel, i),
                Vector::from([x, y]),
                (i % 9) as f64 / 10.0 + 0.1,
            )
        })
        .collect()
}

fn fingerprint(combos: &[ScoredCombination]) -> Vec<(Vec<TupleId>, u64)> {
    combos
        .iter()
        .map(|c| (c.ids(), c.score.to_bits()))
        .collect()
}

fn naive(relations: &[Vec<Tuple>], query: &Vector, k: usize) -> Vec<(Vec<TupleId>, u64)> {
    let mut builder = ProblemBuilder::new(query.clone(), EuclideanLogScore::default()).k(k);
    for tuples in relations {
        builder = builder.relation_from_tuples(tuples.clone());
    }
    fingerprint(&naive_rank_join(&mut builder.build().expect("naive")).combinations)
}

#[test]
fn single_shard_append_reexecutes_only_the_touched_unit() {
    let engine = EngineBuilder::default().threads(2).shards(SHARDS).build();
    // r0 is much larger than r1, so the cost model keeps r0 driving before
    // and after the append.
    let r0 = spread(0, 48);
    let r1 = spread(1, 4);
    let id0 = engine.register("r0", r0.clone());
    let id1 = engine.register("r1", r1.clone());
    let query = Vector::from([0.4, -0.3]);
    let k = 6;
    let spec = || QuerySpec::top_k(vec![id0, id1], query.clone(), k);

    let populated: usize = {
        let policy = engine.catalog().policy();
        r0.iter()
            .map(|t| policy.shard_of(&t.vector))
            .collect::<std::collections::HashSet<_>>()
            .len()
    };
    assert!(populated > 1, "test needs several populated driving shards");

    // Cold query: every populated driving unit misses the unit cache and
    // is inserted.
    let cold = engine.query(spec()).expect("cold query");
    assert_eq!(
        fingerprint(cold.combinations()),
        naive(&[r0.clone(), r1.clone()], &query, k)
    );
    let after_cold = engine.unit_cache_metrics();
    assert_eq!(after_cold.entries, populated);
    assert_eq!(after_cold.misses, populated as u64);
    assert_eq!(after_cold.hits, 0);

    // An identical query is a whole-query cache hit: the unit cache is not
    // even consulted.
    assert!(engine.query(spec()).expect("warm").from_cache);
    assert_eq!(engine.unit_cache_metrics().hits, 0);

    // Append one tuple to a single driving shard (a location already
    // populated, so the shard set is unchanged).
    let outcome = engine
        .append_rows(id0, vec![(r0[0].vector.clone(), 0.85)])
        .expect("append");
    assert_eq!(outcome.touched_shards.len(), 1, "one shard touched");
    let touched = outcome.touched_shards[0];
    // The eager purge removed exactly the touched unit.
    assert_eq!(engine.unit_cache_metrics().entries, populated - 1);

    // Re-query: the whole-query entry is unreachable (epoch vector moved),
    // but every *untouched* unit replays from the unit cache — only the
    // mutated shard's unit re-executes.
    let lanes_before: Vec<u64> = engine.stats().per_shard.iter().map(|l| l.units).collect();
    let fresh = engine.query(spec()).expect("post-append query");
    assert!(
        !fresh.from_cache,
        "the append invalidated the whole-query entry"
    );
    let updated_r0 = {
        let mut updated = r0.clone();
        updated.push(Tuple::new(
            TupleId::new(0, updated.len()),
            r0[0].vector.clone(),
            0.85,
        ));
        updated
    };
    assert_eq!(
        fingerprint(fresh.combinations()),
        naive(&[updated_r0, r1.clone()], &query, k),
        "partially-cached recombination must still equal the oracle"
    );
    let metrics = engine.unit_cache_metrics();
    assert_eq!(metrics.hits, populated as u64 - 1, "sibling units replayed");
    assert_eq!(
        metrics.misses,
        populated as u64 + 1,
        "only the touched unit missed"
    );
    // And the stats lanes confirm: exactly one unit actually ran.
    let lanes_after: Vec<u64> = engine.stats().per_shard.iter().map(|l| l.units).collect();
    let mut reran = Vec::new();
    for (shard, (before, after)) in lanes_before.iter().zip(lanes_after.iter()).enumerate() {
        if after > before {
            reran.push(shard);
        }
    }
    assert_eq!(reran, vec![touched], "only the touched shard re-executed");
    // Per-shard lanes still account exactly for the engine-wide total.
    let stats = engine.stats();
    assert_eq!(
        stats.per_shard.iter().map(|l| l.sum_depths).sum::<u64>(),
        stats.total_sum_depths
    );
}

#[test]
fn non_driving_mutation_invalidates_every_unit() {
    let engine = EngineBuilder::default().threads(2).shards(SHARDS).build();
    let r0 = spread(0, 48);
    let r1 = spread(1, 4);
    let id0 = engine.register("r0", r0);
    let id1 = engine.register("r1", r1);
    let spec = QuerySpec::top_k(vec![id0, id1], Vector::from([0.0, 0.0]), 4);
    engine.query(spec.clone()).expect("cold");
    let entries = engine.unit_cache_metrics().entries;
    assert!(entries > 1);
    // r1 is read *whole* by every unit: any append to it, wherever it
    // lands, makes all memoised units unreachable.
    engine
        .append_rows(id1, vec![(Vector::from([4.9, 4.9]), 0.5)])
        .expect("append");
    assert_eq!(engine.unit_cache_metrics().entries, 0);
    let fresh = engine.query(spec).expect("post-append");
    assert!(!fresh.from_cache);
    assert_eq!(
        engine.unit_cache_metrics().hits,
        0,
        "nothing stale was reused"
    );
}

#[test]
fn dropping_a_relation_purges_its_units() {
    let engine = EngineBuilder::default().threads(1).shards(SHARDS).build();
    let id0 = engine.register("r0", spread(0, 32));
    engine
        .query(QuerySpec::top_k(vec![id0], Vector::from([0.0, 0.0]), 3))
        .expect("query");
    assert!(engine.unit_cache_metrics().entries > 0);
    engine.drop_relation(id0).expect("drop");
    assert_eq!(engine.unit_cache_metrics().entries, 0);
}

/// A drop's outcome must report *every* shard as touched: unit-cache
/// invalidation and standing-query wakeups both key off that set, so an
/// under-report would leave stale memoised units (or un-notified
/// subscribers) behind. Asserted on the returned outcome and on the
/// observer-visible event, which must agree.
#[test]
fn drop_outcome_reports_every_shard_touched() {
    use prj_engine::{MutationEvent, MutationKind, MutationObserver};
    use std::sync::{Arc, Mutex};

    struct Capture(Mutex<Vec<MutationEvent>>);
    impl MutationObserver for Capture {
        fn mutation(&self, event: &MutationEvent) {
            self.0.lock().expect("capture lock").push(event.clone());
        }
    }

    let engine = EngineBuilder::default().threads(1).shards(SHARDS).build();
    let id0 = engine.register("r0", spread(0, 32));
    let capture = Arc::new(Capture(Mutex::new(Vec::new())));
    engine.add_mutation_observer(Arc::clone(&capture) as Arc<dyn MutationObserver>);

    let outcome = engine.drop_relation(id0).expect("drop");
    let sorted = |mut shards: Vec<usize>| {
        shards.sort_unstable();
        shards
    };
    let all: Vec<usize> = (0..SHARDS).collect();
    assert_eq!(
        sorted(outcome.touched_shards.clone()),
        all,
        "drop must touch all {SHARDS} shards"
    );

    let events = capture.0.lock().expect("capture lock");
    assert_eq!(events.len(), 1, "exactly one committed mutation observed");
    assert!(matches!(events[0].kind, MutationKind::Drop));
    assert_eq!(events[0].outcome.id, id0);
    assert_eq!(sorted(events[0].outcome.touched_shards.clone()), all);
}
