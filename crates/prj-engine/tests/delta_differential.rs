//! Mutation-torture differential tests for the delta ingest lane.
//!
//! With a non-zero `delta_threshold`, appends publish into per-shard
//! [`prj_access::DeltaBuffer`]s and a background compactor folds them into
//! the base R-trees later. The correctness contract is the same as for
//! sharding: **the ingest lane is unobservable through results**. After
//! *every* mutation — and at every point relative to a compaction (before,
//! racing one, after) — the engine must return bit-identical result sets
//! (same member tuple ids, same score bits, same order) to a fresh naive
//! oracle over the mirrored tuple set, and every reported result must
//! satisfy the paper's stopping-condition invariant
//! ([`certifies_top_k`](prj_core::RankJoinResult::certifies_top_k)).
//!
//! Two legs drive compaction timing:
//!
//! * the **black-box** leg leaves the background compactor running, so
//!   folds race queries and appends wherever the scheduler puts them;
//! * the **white-box** leg pauses the compactor and steps it explicitly
//!   between (and, in the racing test, concurrently with) queries, pinning
//!   the mid-compaction interleavings a scheduler rarely produces.

use prj_access::{AccessKind, Tuple, TupleId};
use prj_core::{naive_rank_join, EuclideanLogScore, ProblemBuilder, ScoredCombination};
use prj_engine::{Engine, EngineBuilder, QuerySpec, RelationId};
use prj_geometry::Vector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Shard counts every configuration is checked under (1 = the baseline).
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// The shape of a generated dataset (mirrors `differential.rs`).
#[derive(Debug, Clone, Copy)]
enum Shape {
    Uniform,
    Clustered,
    ScoreSkewed,
}

const SHAPES: [Shape; 3] = [Shape::Uniform, Shape::Clustered, Shape::ScoreSkewed];

fn generate(seed: u64, shape: Shape, n_relations: usize, size: usize) -> Vec<Vec<Tuple>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centres: Vec<[f64; 2]> = (0..3)
        .map(|_| [rng.random_range(-2.5..2.5), rng.random_range(-2.5..2.5)])
        .collect();
    (0..n_relations)
        .map(|rel| {
            (0..size)
                .map(|i| {
                    let (x, y) = match shape {
                        Shape::Uniform | Shape::ScoreSkewed => {
                            (rng.random_range(-3.0..3.0), rng.random_range(-3.0..3.0))
                        }
                        Shape::Clustered => {
                            let c = centres[(i + rel) % centres.len()];
                            (
                                c[0] + rng.random_range(-0.3..0.3),
                                c[1] + rng.random_range(-0.3..0.3),
                            )
                        }
                    };
                    let u: f64 = rng.random_range(0.0..1.0);
                    let score = match shape {
                        Shape::ScoreSkewed => u * u * u * u + 1e-3,
                        _ => u + 1e-3,
                    };
                    Tuple::new(TupleId::new(rel, i), Vector::from([x, y]), score)
                })
                .collect()
        })
        .collect()
}

fn fingerprint(combos: &[ScoredCombination]) -> Vec<(Vec<TupleId>, u64)> {
    combos
        .iter()
        .map(|c| (c.ids(), c.score.to_bits()))
        .collect()
}

fn oracle(relations: &[Vec<Tuple>], query: &Vector, k: usize) -> Vec<(Vec<TupleId>, u64)> {
    let mut builder = ProblemBuilder::new(query.clone(), EuclideanLogScore::default()).k(k);
    for tuples in relations {
        builder = builder.relation_from_tuples(tuples.clone());
    }
    fingerprint(&naive_rank_join(&mut builder.build().expect("naive problem")).combinations)
}

/// A delta-enabled engine with caching disabled, so every check actually
/// executes the operator over the current base+delta views instead of
/// replaying a memoised result (compaction preserves epochs by design, so
/// caches would otherwise hide the post-fold read path).
fn delta_engine(
    shards: usize,
    threshold: usize,
    relations: &[Vec<Tuple>],
) -> (Arc<Engine>, Vec<RelationId>) {
    let engine = EngineBuilder::default()
        .threads(2)
        .shards(shards)
        .delta_threshold(threshold)
        .cache_capacity(0)
        .unit_cache_capacity(0)
        .build();
    let ids = relations
        .iter()
        .enumerate()
        .map(|(i, tuples)| engine.register(format!("R{i}"), tuples.clone()))
        .collect();
    (Arc::new(engine), ids)
}

/// One differential check: engine (current base+delta state) vs a fresh
/// naive oracle over the mirror, bit for bit, with a certified stop.
fn check(
    engine: &Engine,
    ids: &[RelationId],
    mirror: &[Vec<Tuple>],
    query: &Vector,
    k: usize,
    access: AccessKind,
    tag: &str,
) {
    let expected = oracle(mirror, query, k);
    let spec = QuerySpec::top_k(ids.to_vec(), query.clone(), k).with_access_kind(access);
    let result = engine.query(spec).expect("engine query");
    assert_eq!(
        fingerprint(result.combinations()),
        expected,
        "{tag} access={access:?}: diverged from the naive oracle \
         (delta backlog {} tuples)",
        engine.catalog().delta_tuples_total(),
    );
    assert!(
        result.result().certifies_top_k(k, 1e-9),
        "{tag} access={access:?}: kth={:?} final_bound={} sumDepths={} is not a certified stop",
        result.combinations().last().map(|c| c.score),
        result.result().metrics.final_bound,
        result.result().sum_depths(),
    );
}

/// One randomized append/compact/query interleaving at a fixed
/// configuration: ~12 mutation steps, each followed by a full differential
/// check, with compactions forced at random points (white-box) or left to
/// the background thread (black-box).
fn run_torture(
    seed: u64,
    shape: Shape,
    threshold: usize,
    shards: usize,
    access: AccessKind,
    white_box: bool,
) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut mirror = generate(seed, shape, 2, 10);
    let (engine, ids) = delta_engine(shards, threshold, &mirror);
    let compactor = engine.compactor().expect("delta engine has a compactor");
    if white_box {
        compactor.pause();
    }
    let mut next_index: Vec<usize> = mirror.iter().map(|r| r.len()).collect();
    let query = Vector::from([rng.random_range(-1.5..1.5), rng.random_range(-1.5..1.5)]);
    let k = rng.random_range(1..6);
    let tag = format!("seed={seed} shape={shape:?} S={shards} T={threshold} wb={white_box}");
    check(
        &engine,
        &ids,
        &mirror,
        &query,
        k,
        access,
        &format!("{tag} initial"),
    );

    for step in 0..12 {
        let rel = rng.random_range(0..mirror.len());
        let extra: Vec<Tuple> = (0..rng.random_range(1..4))
            .map(|_| {
                let i = next_index[rel];
                next_index[rel] += 1;
                Tuple::new(
                    TupleId::new(rel, i),
                    Vector::from([rng.random_range(-3.0..3.0), rng.random_range(-3.0..3.0)]),
                    rng.random_range(0.05..1.0),
                )
            })
            .collect();
        engine.append(ids[rel], extra.clone()).expect("append");
        mirror[rel].extend(extra);
        if white_box && rng.random_range(0.0..1.0f64) < 0.4 {
            compactor.step();
        }
        check(
            &engine,
            &ids,
            &mirror,
            &query,
            k,
            access,
            &format!("{tag} step={step}"),
        );
    }

    // Drain every delta and re-check against the fully folded bases: the
    // fold itself must be invisible (and leave no tuple behind).
    compactor.step();
    assert_eq!(
        engine.catalog().delta_tuples_total(),
        0,
        "{tag}: step() must flush every delta"
    );
    check(
        &engine,
        &ids,
        &mirror,
        &query,
        k,
        access,
        &format!("{tag} drained"),
    );
    if white_box {
        compactor.resume();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The flagship interleaving sweep: random seeds, shapes, thresholds and
    /// compaction modes, each run across every shard count and both access
    /// kinds, bit-identical to a fresh oracle after every mutation.
    #[test]
    fn interleaved_mutations_stay_oracle_exact(
        seed in 0u64..1_000_000,
        shape_ix in 0usize..3,
        threshold in 1usize..6,
        wb in 0usize..2,
    ) {
        let white_box = wb == 1;
        let shape = SHAPES[shape_ix];
        for shards in SHARD_COUNTS {
            for access in [AccessKind::Distance, AccessKind::Score] {
                run_torture(seed, shape, threshold, shards, access, white_box);
            }
        }
    }
}

/// Queries racing an in-flight fold: with the compactor paused, build up a
/// real backlog, then run a query thread concurrently with explicit
/// `step()` folds. Every racing query must return the same bits as the
/// (mutation-free) oracle no matter which side of the swap it lands on.
#[test]
fn queries_race_in_flight_compactions_exactly() {
    for shards in [2, 7] {
        let mut mirror = generate(97 + shards as u64, Shape::Clustered, 2, 16);
        let (engine, ids) = delta_engine(shards, 3, &mirror);
        let compactor = engine.compactor().expect("compactor");
        compactor.pause();
        let mut next_index: Vec<usize> = mirror.iter().map(|r| r.len()).collect();
        let mut rng = StdRng::seed_from_u64(1234 + shards as u64);

        for round in 0..3 {
            for rel in 0..mirror.len() {
                let extra: Vec<Tuple> = (0..5)
                    .map(|_| {
                        let i = next_index[rel];
                        next_index[rel] += 1;
                        Tuple::new(
                            TupleId::new(rel, i),
                            Vector::from([
                                rng.random_range(-3.0..3.0),
                                rng.random_range(-3.0..3.0),
                            ]),
                            rng.random_range(0.05..1.0),
                        )
                    })
                    .collect();
                engine.append(ids[rel], extra.clone()).expect("append");
                mirror[rel].extend(extra);
            }
            assert!(
                engine.catalog().delta_tuples_total() > 0,
                "S={shards} round={round}: appends must land in deltas"
            );
            let query = Vector::from([0.3 * round as f64 - 0.2, 0.4 - 0.3 * round as f64]);
            let k = 4;
            for access in [AccessKind::Distance, AccessKind::Score] {
                check(
                    &engine,
                    &ids,
                    &mirror,
                    &query,
                    k,
                    access,
                    &format!("S={shards} round={round} pre-fold"),
                );
            }

            // Race: a query thread hammers the engine while this thread
            // folds. The data is frozen for the duration, so every result
            // must equal `expected` regardless of fold timing.
            let expected = oracle(&mirror, &query, k);
            std::thread::scope(|s| {
                let racer = {
                    let engine = Arc::clone(&engine);
                    let ids = ids.clone();
                    let query = query.clone();
                    let expected = expected.clone();
                    s.spawn(move || {
                        for i in 0..24 {
                            let access = if i % 2 == 0 {
                                AccessKind::Distance
                            } else {
                                AccessKind::Score
                            };
                            let spec = QuerySpec::top_k(ids.clone(), query.clone(), k)
                                .with_access_kind(access);
                            let result = engine.query(spec).expect("racing query");
                            assert_eq!(
                                fingerprint(result.combinations()),
                                expected,
                                "S={shards} round={round}: racing query diverged mid-fold"
                            );
                            assert!(result.result().certifies_top_k(k, 1e-9));
                        }
                    })
                };
                compactor.step();
                racer.join().expect("racing query thread");
            });
            assert_eq!(engine.catalog().delta_tuples_total(), 0);
            for access in [AccessKind::Distance, AccessKind::Score] {
                check(
                    &engine,
                    &ids,
                    &mirror,
                    &query,
                    k,
                    access,
                    &format!("S={shards} round={round} post-fold"),
                );
            }
        }
        compactor.resume();
    }
}

// Delta structure properties, checked through the engine's public surface:
// epochs move exactly as the rebuild path's would (append = +1 on touched
// shards), compaction never moves them, and the per-shard `compactions`
// counter is monotonic.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn epochs_are_monotonic_and_compaction_preserves_them(
        seed in 0u64..1_000_000,
        shards in 1usize..6,
        steps in prop::collection::vec((0usize..2, 1usize..4), 1..12),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mirror = generate(seed, Shape::Uniform, 2, 6);
        let (engine, ids) = delta_engine(shards, 2, &mirror);
        let compactor = engine.compactor().expect("compactor");
        compactor.pause();
        let catalog = engine.catalog();
        let mut next_index: Vec<usize> = mirror.iter().map(|r| r.len()).collect();

        for (rel, n) in steps {
            let before: Vec<Vec<u64>> = ids
                .iter()
                .map(|id| catalog.relation(*id).unwrap().epochs())
                .collect();
            let extra: Vec<Tuple> = (0..n)
                .map(|_| {
                    let i = next_index[rel];
                    next_index[rel] += 1;
                    Tuple::new(
                        TupleId::new(rel, i),
                        Vector::from([rng.random_range(-3.0..3.0), rng.random_range(-3.0..3.0)]),
                        rng.random_range(0.05..1.0),
                    )
                })
                .collect();
            engine.append(ids[rel], extra).expect("append");
            let after: Vec<Vec<u64>> = ids
                .iter()
                .map(|id| catalog.relation(*id).unwrap().epochs())
                .collect();
            // Appends bump exactly the touched shards of the touched
            // relation, by exactly one — identical to the rebuild path.
            for (r, (b, a)) in before.iter().zip(&after).enumerate() {
                if r != rel {
                    prop_assert_eq!(b, a, "untouched relation's epochs moved");
                    continue;
                }
                let mut bumped = 0usize;
                for (eb, ea) in b.iter().zip(a) {
                    prop_assert!(*ea == *eb || *ea == *eb + 1, "epoch jumped");
                    bumped += usize::from(*ea == *eb + 1);
                }
                prop_assert!(bumped >= 1, "append must bump at least one shard epoch");
            }

            // Compaction: epochs frozen, compactions counter monotonic.
            let comp_before: Vec<Vec<u64>> = ids
                .iter()
                .map(|id| {
                    let rel = catalog.relation(*id).unwrap();
                    (0..rel.num_shards()).map(|j| rel.shard(j).compactions()).collect()
                })
                .collect();
            compactor.step();
            for (r, id) in ids.iter().enumerate() {
                let rel = catalog.relation(*id).unwrap();
                prop_assert_eq!(
                    &rel.epochs(),
                    &after[r],
                    "compaction must preserve the epoch vector"
                );
                prop_assert_eq!(rel.delta_len(), 0, "step() flushes every delta");
                for (j, before_count) in comp_before[r].iter().enumerate() {
                    prop_assert!(rel.shard(j).compactions() >= *before_count);
                }
            }
        }
    }
}
