//! Integration test: boot the `prj-serve` front-end on a loopback port and
//! drive it with the `prj-api` TCP client — registration, a TopK
//! round-trip, streaming, mutation-driven invalidation and error paths, all
//! over a real socket.

use prj_api::{ApiClient, ErrorKind, QueryRequest, Request, Response, ScoringSelector, TupleData};
use prj_engine::{EngineBuilder, Server, Session};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn boot_table1() -> (Server, Arc<Session>) {
    let engine = Arc::new(EngineBuilder::default().threads(2).build());
    let session = Arc::new(Session::new(engine));
    type Table1Row<'a> = (&'a str, &'a [([f64; 2], f64)]);
    let table1: [Table1Row; 3] = [
        ("R1", &[([0.0, -0.5], 0.5), ([0.0, 1.0], 1.0)]),
        ("R2", &[([1.0, 1.0], 1.0), ([-2.0, 2.0], 0.8)]),
        ("R3", &[([-1.0, 1.0], 1.0), ([-2.0, -2.0], 0.4)]),
    ];
    for (name, rows) in table1 {
        session.handle(Request::RegisterRelation {
            name: name.to_string(),
            tuples: rows
                .iter()
                .map(|(x, s)| TupleData::new(x.to_vec(), *s))
                .collect(),
        });
    }
    let server = Server::bind("127.0.0.1:0", Arc::clone(&session)).expect("bind loopback");
    (server, session)
}

fn table1_query() -> QueryRequest {
    QueryRequest::new(vec!["R1".into(), "R2".into(), "R3".into()], [0.0, 0.0]).k(1)
}

#[test]
fn topk_round_trip_over_loopback() {
    let (server, _session) = boot_table1();
    let mut client = ApiClient::connect(server.local_addr()).expect("connect");

    let (rows, from_cache) = client.top_k(table1_query()).expect("cold topk");
    assert!(!from_cache);
    assert_eq!(rows.len(), 1);
    // Example 3.1 over the wire: score −7, members τ1²×τ2¹×τ3¹.
    assert!((rows[0].score - (-7.0)).abs() < 0.05);
    assert_eq!(rows[0].tuples, vec![(0, 1), (1, 0), (2, 0)]);

    let (warm, from_cache) = client.top_k(table1_query()).expect("warm topk");
    assert!(from_cache, "second identical round-trip hits the cache");
    assert_eq!(warm, rows);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.queries, 2);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.relations, 3);
    server.shutdown();
}

#[test]
fn streaming_and_mutations_over_loopback() {
    let (server, _session) = boot_table1();
    let mut client = ApiClient::connect(server.local_addr()).expect("connect");

    // Stream the full cross product: 8 rows in non-increasing score order.
    let rows = client.stream_collect(table1_query().k(8)).expect("stream");
    assert_eq!(rows.len(), 8);
    for pair in rows.windows(2) {
        assert!(pair[0].score >= pair[1].score - 1e-12);
    }

    // Mutate over the wire; the post-mutation query reflects the append.
    match client
        .call(&Request::AppendTuples {
            relation: "R1".into(),
            tuples: vec![TupleData::new([0.0, 0.0], 1.0)],
        })
        .expect("append")
    {
        Response::Appended {
            id: 0,
            epoch: 1,
            cardinality: 3,
        } => {}
        other => panic!("unexpected append response: {other:?}"),
    }
    let (rows, from_cache) = client.top_k(table1_query()).expect("post-append");
    assert!(!from_cache);
    assert_eq!(rows[0].tuples[0], (0, 2), "the appended tuple wins");

    // Error paths stay typed across the wire.
    let err = client
        .top_k(QueryRequest::new(vec!["bars".into()], [0.0, 0.0]))
        .expect_err("unknown relation");
    assert_eq!(err.kind, ErrorKind::UnknownRelation);
    let err = client
        .top_k(table1_query().scoring(ScoringSelector::named("mystery")))
        .expect_err("unknown scoring");
    assert_eq!(err.kind, ErrorKind::UnknownScoring);
    server.shutdown();
}

#[test]
fn raw_socket_speaks_the_versioned_line_protocol() {
    let (server, _session) = boot_table1();
    // No client library at all: hand-written wire lines over a raw socket,
    // as an `nc` user would type them.
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut exchange = |line: &str| -> String {
        writer.write_all(line.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("newline");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        response.trim_end().to_string()
    };

    let response = exchange("prj/1 topk rels=R1,R2,R3 q=0.0,0.0 k=1");
    assert!(
        response.starts_with("prj/1 ok results cached=false"),
        "got: {response}"
    );
    assert!(response.contains("rows=-7.0"), "got: {response}");

    // A malformed line gets a diagnostic, not a dropped connection.
    let response = exchange("prj/1 topk q=0.0");
    assert!(
        response.starts_with("prj/1 err kind=malformed"),
        "got: {response}"
    );

    // A wrong protocol version is refused loudly.
    let response = exchange("prj/9 stats");
    assert!(
        response.starts_with("prj/1 err kind=version"),
        "got: {response}"
    );

    // The connection is still usable afterwards.
    let response = exchange("prj/1 stats");
    assert!(response.starts_with("prj/1 ok stats"), "got: {response}");
    server.shutdown();
}

/// Satellite coverage for `prj/2` negotiation: mixed-version peers
/// round-trip every pre-existing request kind unchanged, each answered in
/// its own dialect, and cluster verbs degrade to *typed* errors — never a
/// dropped connection.
#[test]
fn mixed_version_peers_round_trip_all_legacy_requests() {
    let (server, _session) = boot_table1();
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    fn send(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
        writer.write_all(line.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("newline");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        response.trim_end().to_string()
    }
    // The original grammar is identical under either prefix, and the
    // server answers in the version the request arrived in.
    for version in [1, 2] {
        let prefix = format!("prj/{version} ok");
        let response = send(
            &mut writer,
            &mut reader,
            &format!("prj/{version} register name=v{version} tuples=1.0,2.0:0.5"),
        );
        assert!(
            response.starts_with(&format!("{prefix} registered")),
            "got: {response}"
        );
        let response = send(
            &mut writer,
            &mut reader,
            &format!("prj/{version} topk rels=R1,R2,R3 q=0.0,0.0 k=1"),
        );
        assert!(
            response.starts_with(&format!("{prefix} results")),
            "got: {response}"
        );
        let response = send(
            &mut writer,
            &mut reader,
            &format!("prj/{version} append rel=v{version} tuples=3.0,4.0:0.25"),
        );
        assert!(
            response.starts_with(&format!("{prefix} appended")),
            "got: {response}"
        );
        let response = send(
            &mut writer,
            &mut reader,
            &format!("prj/{version} drop rel=v{version}"),
        );
        assert!(
            response.starts_with(&format!("{prefix} dropped")),
            "got: {response}"
        );
        let response = send(&mut writer, &mut reader, &format!("prj/{version} stats"));
        assert!(
            response.starts_with(&format!("{prefix} stats")),
            "got: {response}"
        );
        // Streams answer item/end lines in the same dialect.
        writer
            .write_all(format!("prj/{version} stream rels=R1 q=0.0,0.0 k=2\n").as_bytes())
            .expect("write stream");
        let mut line = String::new();
        reader.read_line(&mut line).expect("item");
        assert!(line.starts_with(&format!("{prefix} item")), "got: {line}");
        line.clear();
        reader.read_line(&mut line).expect("item 2");
        line.clear();
        reader.read_line(&mut line).expect("end");
        assert!(line.starts_with(&format!("{prefix} end")), "got: {line}");
    }

    // Negotiation: the server answers hello with the common version.
    let response = send(&mut writer, &mut reader, "prj/2 hello max=2");
    assert_eq!(response, "prj/2 ok hello ver=2");
    let response = send(&mut writer, &mut reader, "prj/2 hello max=9");
    assert_eq!(
        response, "prj/2 ok hello ver=2",
        "ceiling is this build's version"
    );

    // A cluster verb on a prj/1 line is a typed version error…
    let response = send(&mut writer, &mut reader, "prj/1 wstats");
    assert!(
        response.starts_with("prj/1 err kind=version"),
        "got: {response}"
    );
    // …and on prj/2 against a non-worker, a typed unsupported error.
    let response = send(&mut writer, &mut reader, "prj/2 wstats");
    assert!(
        response.starts_with("prj/2 err kind=unsupported"),
        "got: {response}"
    );
    let response = send(
        &mut writer,
        &mut reader,
        "prj/2 unit rels=#0 epochs=0 drive=0 shard=0 q=0.0,0.0 k=1 \
         scoring=euclidean-log access=distance algo=tbrr",
    );
    assert!(
        response.starts_with("prj/2 err kind=unsupported"),
        "got: {response}"
    );

    // The connection survives all of the above.
    let response = send(&mut writer, &mut reader, "prj/1 stats");
    assert!(response.starts_with("prj/1 ok stats"), "got: {response}");
    server.shutdown();
}

/// The negotiating client pins the agreed version and keeps working
/// against this (prj/2) server.
#[test]
fn api_client_negotiates_v2_against_the_server() {
    let (server, _session) = boot_table1();
    let mut client = ApiClient::connect(server.local_addr()).expect("connect");
    assert_eq!(client.negotiate().expect("negotiate"), 2);
    assert_eq!(client.version(), Some(2));
    let (rows, _) = client
        .top_k(table1_query())
        .expect("topk after negotiation");
    assert_eq!(rows.len(), 1);
    server.shutdown();
}

#[test]
fn concurrent_clients_are_served() {
    let (server, _session) = boot_table1();
    let addr = server.local_addr();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = ApiClient::connect(addr).expect("connect");
                let q = [0.1 * i as f64, 0.0];
                let query =
                    QueryRequest::new(vec!["R1".into(), "R2".into(), "R3".into()], q.to_vec()).k(2);
                let (rows, _) = client.top_k(query.clone()).expect("cold");
                let (warm, from_cache) = client.top_k(query).expect("warm");
                assert!(from_cache);
                assert_eq!(rows, warm);
                rows[0].score
            })
        })
        .collect();
    for handle in handles {
        assert!(handle.join().expect("client thread").is_finite());
    }
    server.shutdown();
}
