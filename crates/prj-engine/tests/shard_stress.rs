//! Concurrency stress: interleaved mutations and queries over a sharded
//! engine must never serve a pre-mutation cached result.
//!
//! The cache key folds in each relation's per-shard **epoch vector**, so
//! staleness is structurally impossible — these tests hammer that claim
//! from multiple threads:
//!
//! * an appender keeps publishing strictly *improving* tuples while a query
//!   thread asserts the served top-1 score is (a) always an exact oracle
//!   value of some published prefix and (b) monotonically non-decreasing —
//!   a stale cached answer would violate monotonicity;
//! * drop/re-register churn must never leak a dropped relation's memoised
//!   results into queries over its successor;
//! * a single-shard append must bump exactly one entry of the epoch vector
//!   and still invalidate every cached result that read the relation.

use prj_api::{QueryRequest, Request, Response, TupleData};
use prj_core::{EuclideanLogScore, ScoringFunction};
use prj_engine::{EngineBuilder, Session, ShardingPolicy};
use prj_geometry::Vector;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const SHARDS: usize = 4;

fn register(session: &Session, name: &str, rows: &[([f64; 2], f64)]) {
    let response = session.handle(Request::RegisterRelation {
        name: name.to_string(),
        tuples: rows
            .iter()
            .map(|(x, s)| TupleData::new(x.to_vec(), *s))
            .collect(),
    });
    assert!(
        matches!(response, Response::Registered { .. }),
        "{response:?}"
    );
}

fn top1_score(session: &Session, rels: &[&str], q: [f64; 2]) -> f64 {
    match session.handle(Request::TopK(
        QueryRequest::new(rels.iter().map(|r| (*r).into()).collect(), q.to_vec()).k(1),
    )) {
        Response::Results { rows, .. } => rows[0].score,
        other => panic!("query failed: {other:?}"),
    }
}

/// Oracle top-1 score over explicit contents (Eq. 2 unit weights).
fn oracle(a: &[([f64; 2], f64)], b: &[([f64; 2], f64)], q: [f64; 2]) -> f64 {
    let scoring = EuclideanLogScore::default();
    let query = Vector::from(q);
    let mut best = f64::NEG_INFINITY;
    for (xa, sa) in a {
        for (xb, sb) in b {
            let va = Vector::from(*xa);
            let vb = Vector::from(*xb);
            best = best.max(scoring.score_members(&[(&va, *sa), (&vb, *sb)], &query));
        }
    }
    best
}

/// Appends that only ever *improve* the best combination, raced against a
/// querying thread: every observed top-1 must be an exact oracle value of
/// some published prefix, and the sequence of observations must be
/// non-decreasing. A stale cached result would replay an older (strictly
/// lower) score after a newer one was observed.
#[test]
fn racing_appends_never_serve_stale_results() {
    let engine = Arc::new(EngineBuilder::default().threads(2).shards(SHARDS).build());
    let session = Arc::new(Session::new(Arc::clone(&engine)));
    let q = [0.0, 0.0];
    let base_a = vec![([2.0, 2.0], 0.3), ([-2.0, 1.0], 0.4)];
    let base_b = vec![([1.5, -1.5], 0.5), ([-1.0, -2.0], 0.6)];
    register(&session, "a", &base_a);
    register(&session, "b", &base_b);

    // Precompute the improving append sequence and the oracle score after
    // each prefix: each new tuple sits closer to the query with a higher
    // score, so the oracle sequence strictly increases.
    const APPENDS: usize = 24;
    let mut contents_a = base_a.clone();
    let mut appended = Vec::new();
    let mut oracle_after: Vec<u64> = vec![oracle(&contents_a, &base_b, q).to_bits()];
    for i in 0..APPENDS {
        // Spread directions so the appends land on different grid cells
        // (and hence shards); an exponential score ramp (+20 in ln σ per
        // step) dwarfs every distance term, so each append strictly
        // improves the oracle no matter where it lands.
        let angle = i as f64 * 2.4;
        let tuple = (
            [0.4 * angle.cos(), 0.4 * angle.sin()],
            (20.0 * (i as f64 + 1.0)).exp(),
        );
        contents_a.push(tuple);
        appended.push(tuple);
        oracle_after.push(oracle(&contents_a, &base_b, q).to_bits());
    }
    for w in oracle_after.windows(2) {
        assert!(
            f64::from_bits(w[1]) > f64::from_bits(w[0]),
            "test setup: every append must improve the oracle"
        );
    }

    let done = Arc::new(AtomicBool::new(false));
    let observations = std::thread::scope(|scope| {
        let appender = {
            let session = Arc::clone(&session);
            let done = Arc::clone(&done);
            let appended = appended.clone();
            scope.spawn(move || {
                for (x, s) in appended {
                    let response = session.handle(Request::AppendTuples {
                        relation: "a".into(),
                        tuples: vec![TupleData::new(x.to_vec(), s)],
                    });
                    assert!(
                        matches!(response, Response::Appended { .. }),
                        "{response:?}"
                    );
                }
                done.store(true, Ordering::SeqCst);
            })
        };
        let querier = {
            let session = Arc::clone(&session);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut seen = Vec::new();
                while !done.load(Ordering::SeqCst) {
                    seen.push(top1_score(&session, &["a", "b"], q).to_bits());
                }
                seen
            })
        };
        appender.join().expect("appender");
        querier.join().expect("querier")
    });

    // Every observation is an exact prefix-oracle value…
    for bits in &observations {
        assert!(
            oracle_after.contains(bits),
            "observed score {} is no prefix oracle value",
            f64::from_bits(*bits)
        );
    }
    // …and the prefix index never goes backwards (stale replay would).
    let indices: Vec<usize> = observations
        .iter()
        .map(|bits| oracle_after.iter().position(|o| o == bits).unwrap())
        .collect();
    for w in indices.windows(2) {
        assert!(
            w[1] >= w[0],
            "served results went backwards in time: {indices:?}"
        );
    }

    // Quiesced: the final answer matches the full oracle and re-caches.
    let final_bits = top1_score(&session, &["a", "b"], q).to_bits();
    assert_eq!(final_bits, *oracle_after.last().unwrap());
    match session.handle(Request::TopK(
        QueryRequest::new(vec!["a".into(), "b".into()], q.to_vec()).k(1),
    )) {
        Response::Results { from_cache, .. } => assert!(from_cache, "quiesced repeat must hit"),
        other => panic!("{other:?}"),
    }
}

/// Drop/re-register churn raced against queries: every response is either a
/// typed error (relation momentarily gone) or an exact oracle value of one
/// of the two generations — never a mixture, never a stale leak after the
/// final generation settles.
#[test]
fn drop_reregister_churn_never_leaks_old_generations() {
    let engine = Arc::new(EngineBuilder::default().threads(2).shards(SHARDS).build());
    let session = Arc::new(Session::new(Arc::clone(&engine)));
    let q = [0.2, -0.1];
    let a = vec![([0.4, 0.4], 0.9), ([-1.0, 2.0], 0.2)];
    let gen0 = vec![([0.1, -0.3], 0.8), ([2.0, 2.0], 0.3)];
    let gen1 = vec![([-0.2, 0.1], 0.95), ([1.0, -1.0], 0.4)];
    register(&session, "a", &a);
    register(&session, "b", &gen0);
    let valid = [
        oracle(&a, &gen0, q).to_bits(),
        oracle(&a, &gen1, q).to_bits(),
    ];
    assert_ne!(valid[0], valid[1], "generations must be distinguishable");

    let done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let churner = {
            let session = Arc::clone(&session);
            let done = Arc::clone(&done);
            let (gen0, gen1) = (gen0.clone(), gen1.clone());
            scope.spawn(move || {
                for round in 0..12 {
                    let next = if round % 2 == 0 { &gen1 } else { &gen0 };
                    session.handle(Request::DropRelation {
                        relation: "b".into(),
                    });
                    register(&session, "b", next);
                }
                done.store(true, Ordering::SeqCst);
            })
        };
        let querier = {
            let session = Arc::clone(&session);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                while !done.load(Ordering::SeqCst) {
                    match session.handle(Request::TopK(
                        QueryRequest::new(vec!["a".into(), "b".into()], q.to_vec()).k(1),
                    )) {
                        Response::Results { rows, .. } => {
                            assert!(
                                valid.contains(&rows[0].score.to_bits()),
                                "score {} belongs to neither generation",
                                rows[0].score
                            );
                        }
                        // The relation may be mid-churn (dropped, or its
                        // name momentarily unbound): typed errors only.
                        Response::Error(_) => {}
                        other => panic!("unexpected response: {other:?}"),
                    }
                }
            })
        };
        churner.join().expect("churner");
        querier.join().expect("querier");
    });

    // Settled on gen0 (12 rounds flip to gen0 last): fresh query agrees.
    assert_eq!(top1_score(&session, &["a", "b"], q).to_bits(), valid[0]);
}

/// White-box epoch-vector check: a single-tuple append bumps exactly the
/// targeted shard's epoch, leaves sibling shards' structures shared, and
/// still unkeys every cached result over the relation.
#[test]
fn single_shard_append_bumps_one_epoch_entry_and_invalidates() {
    let policy = ShardingPolicy::new(SHARDS);
    let engine = Arc::new(
        EngineBuilder::default()
            .threads(1)
            .sharding_policy(policy)
            .build(),
    );
    // Spread registration points over the plane so several shards are
    // populated.
    let rows: Vec<(Vector, f64)> = (0..32)
        .map(|i| {
            (
                Vector::from([(i % 8) as f64 * 1.7 - 6.0, (i / 8) as f64 * 1.9 - 3.0]),
                0.3 + (i % 5) as f64 / 10.0,
            )
        })
        .collect();
    let (id, _) = engine.catalog().register_rows("r", rows).unwrap();

    // Probe a point and find its shard; append there.
    let probe = Vector::from([4.25, 3.75]);
    let target = policy.shard_of(&probe);

    let spec = prj_engine::QuerySpec::top_k(vec![id], Vector::from([0.0, 0.0]), 2);
    let cold = engine.query(spec.clone()).expect("cold");
    assert!(!cold.from_cache);
    assert!(engine.query(spec.clone()).expect("warm").from_cache);

    let before = engine.catalog().relation(id).unwrap();
    engine.append_rows(id, vec![(probe, 0.99)]).expect("append");
    let after = engine.catalog().relation(id).unwrap();

    let (before_epochs, after_epochs) = (before.epochs(), after.epochs());
    for j in 0..SHARDS {
        let expected = before_epochs[j] + u64::from(j == target);
        assert_eq!(after_epochs[j], expected, "shard {j}");
        if j != target {
            assert!(
                Arc::ptr_eq(before.shard(j).rtree(), after.shard(j).rtree()),
                "untouched shard {j} must share its R-tree"
            );
        }
    }

    // The epoch-vector key makes the memoised result unreachable.
    let fresh = engine.query(spec.clone()).expect("fresh");
    assert!(
        !fresh.from_cache,
        "append must invalidate the cached result"
    );
    assert!(engine.query(spec).expect("rewarm").from_cache);
}
