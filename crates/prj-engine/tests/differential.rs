//! Differential test harness for partitioned (sharded) execution.
//!
//! The sharded engine's one and only correctness contract: **the shard
//! count is unobservable through results**. For every tested configuration
//! — dataset shape (uniform / clustered / score-skewed), scoring weights,
//! `K`, access kind, shard count `S ∈ {1, 2, 4, 7}` — the sharded engine
//! must return *bit-identical* result sets (same member tuple ids, same
//! score bits, same order) to
//!
//! * the unsharded engine (`S = 1`), and
//! * `prj_core::naive_rank_join`, the exhaustive cross-product oracle,
//!
//! and every reported result must satisfy the paper's stopping-condition
//! invariant ([`RankJoinResult::certifies_top_k`]): the `sumDepths` the
//! engine reports was enough to *prove* the answer, not merely to guess it.

use prj_access::{AccessKind, Tuple, TupleId};
use prj_core::{naive_rank_join, EuclideanLogScore, ProblemBuilder, ScoredCombination};
use prj_engine::{EngineBuilder, QuerySpec, RelationId};
use prj_geometry::Vector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Shard counts every configuration is checked under (1 = the baseline).
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// The shape of a generated dataset.
#[derive(Debug, Clone, Copy)]
enum Shape {
    /// Coordinates uniform over a box, scores uniform.
    Uniform,
    /// Points huddle around a few cluster centres (stressing the
    /// hash-by-cell partitioner with hot cells).
    Clustered,
    /// Uniform coordinates with heavily skewed scores (stressing the
    /// per-shard planner's potential-adaptive choice).
    ScoreSkewed,
}

fn generate(seed: u64, shape: Shape, n_relations: usize, size: usize) -> Vec<Vec<Tuple>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centres: Vec<[f64; 2]> = (0..3)
        .map(|_| [rng.random_range(-2.5..2.5), rng.random_range(-2.5..2.5)])
        .collect();
    (0..n_relations)
        .map(|rel| {
            (0..size)
                .map(|i| {
                    let (x, y) = match shape {
                        Shape::Uniform | Shape::ScoreSkewed => {
                            (rng.random_range(-3.0..3.0), rng.random_range(-3.0..3.0))
                        }
                        Shape::Clustered => {
                            let c = centres[(i + rel) % centres.len()];
                            (
                                c[0] + rng.random_range(-0.3..0.3),
                                c[1] + rng.random_range(-0.3..0.3),
                            )
                        }
                    };
                    let u: f64 = rng.random_range(0.0..1.0);
                    let score = match shape {
                        Shape::ScoreSkewed => u * u * u * u + 1e-3,
                        _ => u + 1e-3,
                    };
                    Tuple::new(TupleId::new(rel, i), Vector::from([x, y]), score)
                })
                .collect()
        })
        .collect()
}

/// The exhaustive oracle: full cross product, deterministic (score, ids)
/// order, via `prj_core`.
fn naive_baseline(
    relations: &[Vec<Tuple>],
    query: &Vector,
    k: usize,
    scoring: EuclideanLogScore,
) -> Vec<ScoredCombination> {
    let mut builder = ProblemBuilder::new(query.clone(), scoring).k(k);
    for tuples in relations {
        builder = builder.relation_from_tuples(tuples.clone());
    }
    naive_rank_join(&mut builder.build().expect("naive problem")).combinations
}

/// Identity + exact score bits of a result list — the comparison the whole
/// harness reduces to.
fn fingerprint(combos: &[ScoredCombination]) -> Vec<(Vec<TupleId>, u64)> {
    combos
        .iter()
        .map(|c| (c.ids(), c.score.to_bits()))
        .collect()
}

fn sharded_engine(
    shards: usize,
    relations: &[Vec<Tuple>],
) -> (prj_engine::Engine, Vec<RelationId>) {
    let engine = EngineBuilder::default().threads(2).shards(shards).build();
    let ids = relations
        .iter()
        .enumerate()
        .map(|(i, tuples)| engine.register(format!("R{i}"), tuples.clone()))
        .collect();
    (engine, ids)
}

/// Runs one full differential check: naive oracle vs every shard count,
/// batch and (for a subset of shard counts) streaming.
fn check_configuration(
    relations: &[Vec<Tuple>],
    query: Vector,
    k: usize,
    weights: (f64, f64, f64),
    access: AccessKind,
) {
    let scoring = EuclideanLogScore::new(weights.0, weights.1, weights.2);
    let expected = fingerprint(&naive_baseline(relations, &query, k, scoring));

    for shards in SHARD_COUNTS {
        let (engine, ids) = sharded_engine(shards, relations);
        let spec = QuerySpec::top_k(ids.clone(), query.clone(), k)
            .with_scoring(scoring)
            .with_access_kind(access);
        let result = engine.query(spec).expect("engine query");
        assert_eq!(
            fingerprint(result.combinations()),
            expected,
            "S={shards} access={access:?} k={k} w={weights:?} diverged from the naive oracle"
        );
        // The reported sumDepths must have been enough to certify the
        // answer under the merged bound.
        assert!(
            result.result().certifies_top_k(k, 1e-9),
            "S={shards}: kth={:?} final_bound={} sumDepths={} is not a certified stop",
            result.combinations().last().map(|c| c.score),
            result.result().metrics.final_bound,
            result.result().sum_depths(),
        );
        // Per-shard depth lanes must account for every access performed.
        let stats = engine.stats();
        assert_eq!(
            stats.per_shard.iter().map(|l| l.sum_depths).sum::<u64>(),
            stats.total_sum_depths,
            "S={shards}: shard lanes must add up to the total"
        );

        // Streaming must produce the same bits through the live producer
        // (a fresh engine, so the batch result above cannot be replayed
        // from cache; S=1 is the legacy path, S=4 the merged path).
        if shards == 1 || shards == 4 {
            let (engine, ids) = sharded_engine(shards, relations);
            let spec = QuerySpec::top_k(ids, query.clone(), k)
                .with_scoring(scoring)
                .with_access_kind(access);
            let engine = Arc::new(engine);
            let mut stream = engine.stream(spec).expect("stream");
            assert!(!stream.from_cache, "cold stream");
            let mut streamed = Vec::new();
            while let Some(combo) = stream.next_result() {
                streamed.push(combo);
            }
            assert!(stream.error().is_none(), "stream must not fail");
            assert_eq!(
                fingerprint(&streamed),
                expected,
                "S={shards}: streamed results diverged from the oracle"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random uniform datasets, weights and K: sharded == unsharded ==
    /// naive, bit for bit, and every stop is certified.
    #[test]
    fn uniform_datasets_are_shard_invariant(
        seed in 0u64..1_000_000,
        n_relations in 1usize..4,
        size in 8usize..28,
        k in 1usize..9,
        ws in 0.25..2.5f64,
        wq in 0.25..2.5f64,
        wm in 0.25..2.5f64,
        q in prop::array::uniform2(-1.5..1.5f64),
    ) {
        let relations = generate(seed, Shape::Uniform, n_relations, size);
        check_configuration(&relations, Vector::from(q), k, (ws, wq, wm), AccessKind::Distance);
    }

    /// Clustered data concentrates whole clusters onto single grid cells —
    /// the worst case for hash-by-cell balance — without ever being
    /// observable in results.
    #[test]
    fn clustered_datasets_are_shard_invariant(
        seed in 0u64..1_000_000,
        n_relations in 2usize..4,
        size in 8usize..24,
        k in 1usize..7,
        wq in 0.25..2.0f64,
        q in prop::array::uniform2(-1.0..1.0f64),
    ) {
        let relations = generate(seed, Shape::Clustered, n_relations, size);
        check_configuration(&relations, Vector::from(q), k, (1.0, wq, 1.0), AccessKind::Distance);
    }

    /// Skewed scores push the per-shard planner towards potential-adaptive
    /// pulling on some shards and round-robin on others; the mixed plans
    /// must still merge to the oracle's answer. Also exercises score-based
    /// sorted access.
    #[test]
    fn skewed_datasets_are_shard_invariant_under_both_access_kinds(
        seed in 0u64..1_000_000,
        size in 10usize..26,
        k in 1usize..6,
        q in prop::array::uniform2(-1.0..1.0f64),
    ) {
        let relations = generate(seed, Shape::ScoreSkewed, 2, size);
        check_configuration(&relations, Vector::from(q), k, (1.0, 1.0, 1.0), AccessKind::Distance);
        check_configuration(&relations, Vector::from(q), k, (1.0, 1.0, 1.0), AccessKind::Score);
    }
}

/// Non-Euclidean scoring exercises the δ-fallback path (a per-query sort
/// under the scoring's own distance, shared across execution units): the
/// shard count must stay unobservable there too.
#[test]
fn non_euclidean_scoring_is_shard_invariant() {
    use prj_core::CosineSimilarityScore;
    let relations = generate(23, Shape::Uniform, 3, 14);
    let query = Vector::from([1.0, 0.25]);
    for k in [1, 3, 6] {
        let expected = {
            let mut builder =
                ProblemBuilder::new(query.clone(), CosineSimilarityScore::default()).k(k);
            for tuples in &relations {
                builder = builder.relation_from_tuples(tuples.clone());
            }
            fingerprint(&naive_rank_join(&mut builder.build().unwrap()).combinations)
        };
        for shards in SHARD_COUNTS {
            let (engine, ids) = sharded_engine(shards, &relations);
            let result = engine
                .query(
                    QuerySpec::top_k(ids, query.clone(), k)
                        .with_scoring(CosineSimilarityScore::default()),
                )
                .expect("cosine query");
            assert_eq!(
                fingerprint(result.combinations()),
                expected,
                "S={shards} k={k} (δ-fallback path)"
            );
            assert!(result.result().certifies_top_k(k, 1e-9), "S={shards} k={k}");
        }
    }
}

/// K exceeding the cross product: every engine must return the entire
/// (deterministically ordered) cross product and report an exhausted bound.
#[test]
fn oversized_k_returns_the_full_cross_product_at_every_shard_count() {
    let relations = generate(7, Shape::Uniform, 3, 4); // 64 combinations
    let query = Vector::from([0.0, 0.0]);
    let expected = fingerprint(&naive_baseline(
        &relations,
        &query,
        100,
        EuclideanLogScore::default(),
    ));
    assert_eq!(expected.len(), 64);
    for shards in SHARD_COUNTS {
        let (engine, ids) = sharded_engine(shards, &relations);
        let result = engine
            .query(QuerySpec::top_k(ids, query.clone(), 100))
            .expect("query");
        assert_eq!(fingerprint(result.combinations()), expected, "S={shards}");
        assert_eq!(
            result.result().metrics.final_bound,
            f64::NEG_INFINITY,
            "S={shards}: exhausted run must report the collapsed bound"
        );
        assert!(result.result().certifies_top_k(100, 1e-9));
    }
}

/// Regression test for deterministic tie-breaking (the satellite fix):
/// exact score ties *at the K boundary* — historically dependent on
/// traversal order, because a run could stop while an unseen combination
/// still tied the K-th score — must now resolve identically (by member
/// tuple ids) for every algorithm, access kind and shard count.
#[test]
fn boundary_score_ties_resolve_identically_everywhere() {
    // Two relations of duplicated points: every tuple of a relation has the
    // same location and score, so *all* cross-product combinations tie at
    // exactly the same aggregate score and only the id tie-break orders
    // them. K = 3 cuts the 4-combination tie mid-way.
    let mk = |rel: usize, n: usize, loc: [f64; 2], score: f64| -> Vec<Tuple> {
        (0..n)
            .map(|i| Tuple::new(TupleId::new(rel, i), Vector::from(loc), score))
            .collect()
    };
    let relations = vec![mk(0, 2, [0.5, 0.0], 0.7), mk(1, 2, [-0.5, 0.5], 0.9)];
    let query = Vector::from([0.1, 0.1]);
    let k = 3;
    let expected = fingerprint(&naive_baseline(
        &relations,
        &query,
        k,
        EuclideanLogScore::default(),
    ));
    // The oracle's tie-break: combinations ordered by member ids.
    let expected_ids: Vec<Vec<usize>> = expected
        .iter()
        .map(|(ids, _)| ids.iter().map(|id| id.index).collect())
        .collect();
    assert_eq!(expected_ids, vec![vec![0, 0], vec![0, 1], vec![1, 0]]);

    for shards in SHARD_COUNTS {
        for access in [AccessKind::Distance, AccessKind::Score] {
            for algorithm in prj_core::Algorithm::all() {
                let (engine, ids) = sharded_engine(shards, &relations);
                let result = engine
                    .query(
                        QuerySpec::top_k(ids, query.clone(), k)
                            .with_access_kind(access)
                            .with_algorithm(algorithm),
                    )
                    .expect("query");
                assert_eq!(
                    fingerprint(result.combinations()),
                    expected,
                    "S={shards} access={access:?} algorithm={algorithm:?}"
                );
            }
        }
    }
}

/// Unit-cache hits are handed out as shared `Arc`s and recombined by
/// reference (`prj_core::merge_shared`), never deep-copied: after a
/// single-shard append, a re-query blends memoised sibling units with the
/// freshly recomputed one — and the blend must still be bit-identical to
/// the naive oracle over the *new* data, at every shard count.
#[test]
fn mixed_cached_and_fresh_units_merge_to_the_oracle() {
    for shards in [2, 4, 7] {
        // One relation, so it is necessarily the driving (partitioned) one
        // and sibling shards' units survive a single-shard append.
        let mut relations = generate(41, Shape::Uniform, 1, 28);
        let query = Vector::from([0.2, -0.3]);
        let k = 5;
        let (engine, ids) = sharded_engine(shards, &relations);
        let spec = || QuerySpec::top_k(ids.clone(), query.clone(), k);

        // Cold run: every populated shard executes freshly and warms the
        // unit cache.
        let cold = engine.query(spec()).expect("cold query");
        let populated = cold.fresh_units;
        assert_eq!(
            fingerprint(cold.combinations()),
            fingerprint(&naive_baseline(
                &relations,
                &query,
                k,
                EuclideanLogScore::default()
            )),
            "S={shards}: cold run diverged"
        );

        // Append one tuple: exactly one driving shard's unit dies; the
        // re-query must re-run only that lane and replay the rest shared
        // out of the unit cache.
        let extra = Tuple::new(TupleId::new(0, 1000), Vector::from([0.25, -0.2]), 0.95);
        engine.append(ids[0], vec![extra.clone()]).expect("append");
        relations[0].push(extra);
        let warm = engine.query(spec()).expect("warm query");
        assert!(!warm.from_cache, "append must invalidate the result cache");
        if populated > 1 {
            assert!(
                warm.fresh_units < populated,
                "S={shards}: expected unit-cache hits, but all {populated} units re-ran"
            );
        }
        assert_eq!(
            fingerprint(warm.combinations()),
            fingerprint(&naive_baseline(
                &relations,
                &query,
                k,
                EuclideanLogScore::default()
            )),
            "S={shards}: cached+fresh blend diverged from the oracle"
        );
        assert!(warm.result().certifies_top_k(k, 1e-9), "S={shards}");
    }
}

/// Ties spread *across* shards: duplicated locations land on the same
/// shard, so also pin ties between distinct locations with equal scores
/// (which hash to different shards).
#[test]
fn cross_shard_score_ties_resolve_by_id() {
    // Four driving tuples at symmetric locations, identical distance to the
    // query and identical scores — and a single-tuple second relation at
    // the query point, so all four combinations tie exactly.
    let r1: Vec<Tuple> = [[3.0, 0.0], [0.0, 3.0], [-3.0, 0.0], [0.0, -3.0]]
        .into_iter()
        .enumerate()
        .map(|(i, loc)| Tuple::new(TupleId::new(0, i), Vector::from(loc), 0.5))
        .collect();
    let r2 = vec![Tuple::new(
        TupleId::new(1, 0),
        Vector::from([0.0, 0.0]),
        1.0,
    )];
    let relations = vec![r1, r2];
    let query = Vector::from([0.0, 0.0]);
    let expected = fingerprint(&naive_baseline(
        &relations,
        &query,
        2,
        EuclideanLogScore::default(),
    ));
    for shards in SHARD_COUNTS {
        let (engine, ids) = sharded_engine(shards, &relations);
        let result = engine
            .query(QuerySpec::top_k(ids, query.clone(), 2))
            .expect("query");
        assert_eq!(fingerprint(result.combinations()), expected, "S={shards}");
        let winners: Vec<usize> = result
            .combinations()
            .iter()
            .map(|c| c.tuples[0].id.index)
            .collect();
        assert_eq!(winners, vec![0, 1], "ids 0 and 1 win the 4-way tie");
    }
}
