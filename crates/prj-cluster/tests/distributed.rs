//! Distributed differential harness: **real worker processes** on loopback.
//!
//! The cluster's one and only correctness contract extends PR 3's: the
//! *process topology* is unobservable through results. For every tested
//! configuration — dataset shape (uniform / clustered / score-skewed),
//! shard count `S ∈ {2, 4}`, fleet size `workers ∈ {1, 2, 3}`, `K`, access
//! kind, batch and streaming — the coordinator (fanning units out to
//! spawned `prj-serve --worker` processes over real sockets) must return
//! results *bit-identical* (member ids, score bits, ordering) to
//!
//! * the single-process sharded engine over the same data, and
//! * `prj_core::naive_rank_join`, the exhaustive cross-product oracle,
//!
//! and distributed answers must still satisfy the paper's certified-stop
//! invariant. The fault-injection tests then kill workers mid-stream of
//! queries and assert the failure matrix: every answer is either exactly
//! right (served via a replica) or a *typed* error — never a silently
//! truncated result set.

use prj_access::{AccessKind, Tuple, TupleId};
use prj_api::{QueryRequest, Request, Response, ResultRow};
use prj_cluster::{ClusterTopology, Coordinator};
use prj_core::{naive_rank_join, EuclideanLogScore, ProblemBuilder};
use prj_engine::{EngineBuilder, QuerySpec, Session};
use prj_geometry::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A spawned `prj-serve --worker` process, killed on drop.
type Worker = prj_cluster::SpawnedWorker;

fn spawn_worker(shards: usize) -> Worker {
    prj_cluster::spawn_worker_process(
        std::path::Path::new(env!("CARGO_BIN_EXE_prj-serve")),
        shards,
        2,
    )
    .expect("spawn prj-serve --worker")
}

fn spawn_fleet(n: usize, shards: usize) -> Vec<Worker> {
    (0..n).map(|_| spawn_worker(shards)).collect()
}

fn coordinator_over(fleet: &[Worker], shards: usize, replicas: usize) -> Coordinator {
    let topology = ClusterTopology::new(
        fleet.iter().map(|w| w.addr().to_string()).collect(),
        shards,
        replicas,
    )
    .expect("topology");
    Coordinator::builder(topology)
        .threads(2)
        .build()
        .expect("coordinator bootstrap")
}

#[derive(Clone, Copy)]
enum Shape {
    Uniform,
    Clustered,
    ScoreSkewed,
}

impl Shape {
    fn tag(self) -> &'static str {
        match self {
            Shape::Uniform => "uni",
            Shape::Clustered => "clu",
            Shape::ScoreSkewed => "skw",
        }
    }
}

/// Mirrors the single-process differential harness's generator.
fn generate(seed: u64, shape: Shape, n_relations: usize, size: usize) -> Vec<Vec<Tuple>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centres: Vec<[f64; 2]> = (0..3)
        .map(|_| [rng.random_range(-2.5..2.5), rng.random_range(-2.5..2.5)])
        .collect();
    (0..n_relations)
        .map(|rel| {
            (0..size)
                .map(|i| {
                    let (x, y) = match shape {
                        Shape::Uniform | Shape::ScoreSkewed => {
                            (rng.random_range(-3.0..3.0), rng.random_range(-3.0..3.0))
                        }
                        Shape::Clustered => {
                            let c = centres[(i + rel) % centres.len()];
                            (
                                c[0] + rng.random_range(-0.3..0.3),
                                c[1] + rng.random_range(-0.3..0.3),
                            )
                        }
                    };
                    let u: f64 = rng.random_range(0.0..1.0);
                    let score = match shape {
                        Shape::ScoreSkewed => u * u * u * u + 1e-3,
                        _ => u + 1e-3,
                    };
                    Tuple::new(TupleId::new(rel, i), Vector::from([x, y]), score)
                })
                .collect()
        })
        .collect()
}

fn register_request(name: &str, tuples: &[Tuple]) -> Request {
    Request::RegisterRelation {
        name: name.to_string(),
        tuples: tuples
            .iter()
            .map(|t| prj_api::TupleData::new(t.vector.as_slice().to_vec(), t.score))
            .collect(),
    }
}

/// Identity + exact score bits — the comparison everything reduces to.
fn rows_fingerprint(rows: &[ResultRow]) -> Vec<(Vec<(usize, usize)>, u64)> {
    rows.iter()
        .map(|r| (r.tuples.clone(), r.score.to_bits()))
        .collect()
}

fn naive_fingerprint(
    relations: &[Vec<Tuple>],
    query: &Vector,
    k: usize,
) -> Vec<(Vec<(usize, usize)>, u64)> {
    let mut builder = ProblemBuilder::new(query.clone(), EuclideanLogScore::default()).k(k);
    for tuples in relations {
        builder = builder.relation_from_tuples(tuples.clone());
    }
    naive_rank_join(&mut builder.build().expect("naive problem"))
        .combinations
        .iter()
        .map(|c| {
            (
                c.ids().iter().map(|id| (id.relation, id.index)).collect(),
                c.score.to_bits(),
            )
        })
        .collect()
}

fn results_of(response: Response, context: &str) -> Vec<ResultRow> {
    match response {
        Response::Results { rows, .. } => rows,
        other => panic!("{context}: unexpected response {other:?}"),
    }
}

/// The core matrix: for S ∈ {2, 4} and fleets of 1–3 worker processes,
/// every shape × K × access kind answers bit-identically to the local
/// sharded engine and the naive oracle, batch and streaming.
#[test]
fn cluster_results_are_bit_identical_to_local_and_naive() {
    for (shards, n_workers) in [(2, 1), (2, 2), (2, 3), (4, 1), (4, 2), (4, 3)] {
        let fleet = spawn_fleet(n_workers, shards);
        let replicas = n_workers.min(2);
        let coordinator = coordinator_over(&fleet, shards, replicas);
        let local = Session::new(Arc::new(
            EngineBuilder::default().threads(2).shards(shards).build(),
        ));

        for (si, shape) in [Shape::Uniform, Shape::Clustered, Shape::ScoreSkewed]
            .into_iter()
            .enumerate()
        {
            // Distinct names per dataset: the fleet is reused across
            // shapes, mutations replicate cumulatively.
            let seed = 1000 + 31 * si as u64 + 7 * shards as u64 + n_workers as u64;
            let relations = generate(seed, shape, 2, 16);
            let names: Vec<String> = (0..relations.len())
                .map(|i| format!("{}{}_{}", shape.tag(), shards, i))
                .collect();
            for (name, tuples) in names.iter().zip(&relations) {
                let request = register_request(name, tuples);
                assert!(
                    !matches!(
                        coordinator.dispatch_one(request.clone()),
                        Response::Error(_)
                    ),
                    "cluster registration failed"
                );
                assert!(
                    !matches!(local.handle(request), Response::Error(_)),
                    "local registration failed"
                );
            }
            let rels: Vec<prj_api::RelationRef> = names.iter().map(|n| n.as_str().into()).collect();
            let query_point = [0.4, -0.7];
            for k in [1, 5] {
                for access in [AccessKind::Distance, AccessKind::Score] {
                    let expected = {
                        // Re-tag ids to this dataset's registration indices
                        // is unnecessary: both engines registered in the
                        // same order, and the oracle's ids are relation-
                        // local (0, 1) while the catalogs use global
                        // registration indices — compare via the local
                        // engine instead, and pin the local engine to the
                        // oracle by score bits and within-relation indices.
                        naive_fingerprint(&relations, &Vector::from(query_point), k)
                    };
                    let request = |kind: fn(QueryRequest) -> Request| {
                        kind(
                            QueryRequest::new(rels.clone(), query_point.to_vec())
                                .k(k)
                                .access(access),
                        )
                    };
                    let cluster_rows = results_of(
                        coordinator.dispatch_one(request(Request::TopK)),
                        "cluster topk",
                    );
                    let local_rows = results_of(local.handle(request(Request::TopK)), "local topk");
                    let tag = format!(
                        "S={shards} workers={n_workers} shape={} k={k} access={access:?}",
                        shape.tag()
                    );
                    assert_eq!(
                        rows_fingerprint(&cluster_rows),
                        rows_fingerprint(&local_rows),
                        "{tag}: cluster diverged from the local sharded engine"
                    );
                    // Against the oracle: same score bits, same
                    // within-relation member indices, same order.
                    let oracle_view: Vec<(Vec<usize>, u64)> = expected
                        .iter()
                        .map(|(ids, bits)| (ids.iter().map(|(_, idx)| *idx).collect(), *bits))
                        .collect();
                    let cluster_view: Vec<(Vec<usize>, u64)> = cluster_rows
                        .iter()
                        .map(|r| {
                            (
                                r.tuples.iter().map(|(_, idx)| *idx).collect(),
                                r.score.to_bits(),
                            )
                        })
                        .collect();
                    assert_eq!(
                        cluster_view, oracle_view,
                        "{tag}: cluster diverged from naive"
                    );

                    // Streaming delivers the same bits.
                    let streamed = results_of(
                        coordinator.dispatch_one(request(Request::Stream)),
                        "cluster stream",
                    );
                    assert_eq!(
                        rows_fingerprint(&streamed),
                        rows_fingerprint(&cluster_rows),
                        "{tag}: streamed rows diverged from batch"
                    );
                }
            }

            // Engine-level: the distributed merged result still satisfies
            // the paper's certified-stop invariant.
            let engine = coordinator.engine();
            let ids: Vec<_> = names
                .iter()
                .map(|n| engine.catalog().lookup(n).expect("registered"))
                .collect();
            let result = engine
                .query(QuerySpec::top_k(ids, Vector::from(query_point), 5))
                .expect("engine-level cluster query");
            assert!(
                result.result().certifies_top_k(5, 1e-9),
                "S={shards} workers={n_workers} shape={}: distributed stop uncertified",
                shape.tag()
            );
        }
    }
}

/// Replicated mutations: appends through the coordinator are observed by
/// subsequent distributed queries, bit-identically to the local engine.
#[test]
fn replicated_mutations_keep_cluster_and_local_in_lockstep() {
    let shards = 4;
    let fleet = spawn_fleet(2, shards);
    let coordinator = coordinator_over(&fleet, shards, 2);
    let local = Session::new(Arc::new(
        EngineBuilder::default().threads(2).shards(shards).build(),
    ));
    let relations = generate(77, Shape::Uniform, 2, 14);
    for (i, tuples) in relations.iter().enumerate() {
        let request = register_request(&format!("m{i}"), tuples);
        coordinator.dispatch_one(request.clone());
        local.handle(request);
    }
    let query = |q: [f64; 2]| {
        Request::TopK(QueryRequest::new(vec!["m0".into(), "m1".into()], q.to_vec()).k(4))
    };
    for round in 0..3 {
        let append = Request::AppendTuples {
            relation: "m0".into(),
            tuples: vec![prj_api::TupleData::new(
                [round as f64 - 1.0, 0.5 * round as f64],
                0.9,
            )],
        };
        let cluster_ack = coordinator.dispatch_one(append.clone());
        let local_ack = local.handle(append);
        assert_eq!(
            cluster_ack, local_ack,
            "round {round}: mutation acks diverged"
        );
        let q = [0.1 * round as f64, -0.2];
        assert_eq!(
            rows_fingerprint(&results_of(coordinator.dispatch_one(query(q)), "cluster")),
            rows_fingerprint(&results_of(local.handle(query(q)), "local")),
            "round {round}: post-append results diverged"
        );
    }
    // Drop replicates too: afterwards both sides answer the same typed
    // error.
    let drop_request = Request::DropRelation {
        relation: "m1".into(),
    };
    assert_eq!(
        coordinator.dispatch_one(drop_request.clone()),
        local.handle(drop_request)
    );
    let (cluster_err, local_err) = (
        coordinator.dispatch_one(query([9.0, 9.0])),
        local.handle(query([9.0, 9.0])),
    );
    assert_eq!(cluster_err, local_err, "post-drop errors must agree");
    assert!(matches!(cluster_err, Response::Error(_)));
}

/// Warm unit caches across replicated appends: after a single-shard append,
/// the coordinator re-runs only the invalidated unit on the fleet and
/// replays its memoised siblings by reference (shared `Arc`s recombined via
/// `prj_core::merge_shared`). The blend of cached and freshly recomputed
/// remote units must stay bit-identical to the local sharded engine *and*
/// the naive oracle over the grown relation.
#[test]
fn warm_unit_caches_blend_with_fresh_remote_units_exactly() {
    let shards = 4;
    let size = 24;
    let fleet = spawn_fleet(2, shards);
    let coordinator = coordinator_over(&fleet, shards, 2);
    let local = Session::new(Arc::new(
        EngineBuilder::default().threads(2).shards(shards).build(),
    ));
    // One relation: it is necessarily the driving one, so sibling shards'
    // units survive a single-shard append.
    let mut relations = generate(55, Shape::Uniform, 1, size);
    let request = register_request("wb0", &relations[0]);
    coordinator.dispatch_one(request.clone());
    local.handle(request);
    let q = [0.15, -0.4];
    let query = || Request::TopK(QueryRequest::new(vec!["wb0".into()], q.to_vec()).k(4));

    // Cold round warms the coordinator's unit cache.
    let cold = results_of(coordinator.dispatch_one(query()), "cluster cold");
    assert_eq!(
        rows_fingerprint(&cold),
        rows_fingerprint(&results_of(local.handle(query()), "local cold")),
        "cold round diverged"
    );

    for round in 0..3usize {
        let location = [0.3 * round as f64 - 0.3, 0.2];
        let append = Request::AppendTuples {
            relation: "wb0".into(),
            tuples: vec![prj_api::TupleData::new(location, 0.85)],
        };
        assert_eq!(
            coordinator.dispatch_one(append.clone()),
            local.handle(append),
            "round {round}: append acks diverged"
        );
        // Mirror the catalog's id assignment so the oracle sees the same
        // tuple identities.
        relations[0].push(Tuple::new(
            TupleId::new(0, size + round),
            Vector::from(location),
            0.85,
        ));
        let warm = results_of(coordinator.dispatch_one(query()), "cluster warm");
        assert_eq!(
            rows_fingerprint(&warm),
            rows_fingerprint(&results_of(local.handle(query()), "local warm")),
            "round {round}: cached+fresh blend diverged from local"
        );
        let oracle = naive_fingerprint(&relations, &Vector::from(q), 4);
        let cluster_view: Vec<(Vec<(usize, usize)>, u64)> = warm
            .iter()
            .map(|r| (r.tuples.clone(), r.score.to_bits()))
            .collect();
        assert_eq!(
            cluster_view, oracle,
            "round {round}: cached+fresh blend diverged from the oracle"
        );
    }
}

/// Fault injection: kill a worker while a stream of fresh queries runs.
/// Every answer must be either bit-identical to the local engine or a
/// typed error — and with replicas, the fleet must keep answering exactly
/// after the kill.
#[test]
fn killing_a_worker_mid_query_stream_never_truncates_results() {
    let shards = 4;
    let mut fleet = spawn_fleet(2, shards);
    let coordinator = Arc::new(coordinator_over(&fleet, shards, 2));
    let local = Session::new(Arc::new(
        EngineBuilder::default().threads(2).shards(shards).build(),
    ));
    let relations = generate(42, Shape::Uniform, 2, 40);
    for (i, tuples) in relations.iter().enumerate() {
        let request = register_request(&format!("f{i}"), tuples);
        coordinator.dispatch_one(request.clone());
        local.handle(request);
    }
    let query = |i: usize| {
        // Distinct query points so no answer can come from a cache.
        let q = [0.07 * i as f64 - 1.0, 0.05 * i as f64];
        Request::TopK(QueryRequest::new(vec!["f0".into(), "f1".into()], q.to_vec()).k(5))
    };

    let querier = {
        let coordinator = Arc::clone(&coordinator);
        std::thread::spawn(move || {
            (0..30)
                .map(|i| {
                    let response = coordinator.dispatch_one(query(i));
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    (i, response)
                })
                .collect::<Vec<_>>()
        })
    };
    // Kill the primary-heavy worker mid-stream.
    std::thread::sleep(std::time::Duration::from_millis(40));
    drop(fleet.remove(0));
    let outcomes = querier.join().expect("querier thread");

    let mut exact = 0;
    let mut typed = 0;
    for (i, response) in outcomes {
        match response {
            Response::Results { rows, .. } => {
                let expected = results_of(local.handle(query(i)), "local");
                assert_eq!(
                    rows_fingerprint(&rows),
                    rows_fingerprint(&expected),
                    "query {i}: distributed answer diverged (truncation?)"
                );
                exact += 1;
            }
            Response::Error(e) => {
                assert!(
                    matches!(
                        e.kind,
                        prj_api::ErrorKind::WorkerUnavailable
                            | prj_api::ErrorKind::Degraded
                            | prj_api::ErrorKind::StaleEpoch
                            | prj_api::ErrorKind::Io
                    ),
                    "query {i}: untyped failure {e:?}"
                );
                typed += 1;
            }
            other => panic!("query {i}: unexpected response {other:?}"),
        }
    }
    assert_eq!(exact + typed, 30);
    // With replicas=2 every shard keeps an owner, so the tail of the
    // stream — well after the kill — must be answered exactly.
    let last = results_of(coordinator.dispatch_one(query(999)), "post-kill query");
    let expected = results_of(local.handle(query(999)), "local post-kill");
    assert_eq!(rows_fingerprint(&last), rows_fingerprint(&expected));
    assert!(
        exact > 0,
        "the replica fleet must have answered queries exactly"
    );
}

/// Without replicas, losing the only worker must produce typed
/// worker-unavailable errors — never an empty or partial result.
#[test]
fn losing_the_only_worker_is_a_typed_error() {
    let shards = 2;
    let mut fleet = spawn_fleet(1, shards);
    let coordinator = coordinator_over(&fleet, shards, 1);
    let relations = generate(7, Shape::Uniform, 2, 12);
    for (i, tuples) in relations.iter().enumerate() {
        coordinator.dispatch_one(register_request(&format!("s{i}"), tuples));
    }
    drop(fleet.remove(0));
    let response = coordinator.dispatch_one(Request::TopK(
        QueryRequest::new(vec!["s0".into(), "s1".into()], [0.0, 0.0]).k(3),
    ));
    match response {
        Response::Error(e) => assert!(
            matches!(
                e.kind,
                prj_api::ErrorKind::WorkerUnavailable | prj_api::ErrorKind::Io
            ),
            "unexpected error kind: {e:?}"
        ),
        other => panic!("expected a typed error, got {other:?}"),
    }
}

/// A replica that silently diverged from the coordinator (here: mutated
/// behind its back) is refused through the epoch check — the query fails
/// typed instead of returning answers computed over different data.
#[test]
fn out_of_band_worker_mutations_surface_as_stale_epoch() {
    let shards = 2;
    let fleet = spawn_fleet(1, shards);
    let coordinator = coordinator_over(&fleet, shards, 1);
    let relations = generate(11, Shape::Uniform, 2, 10);
    for (i, tuples) in relations.iter().enumerate() {
        coordinator.dispatch_one(register_request(&format!("e{i}"), tuples));
    }
    // Mutate the worker's replica directly, bypassing the coordinator.
    let mut direct = prj_api::ApiClient::connect(fleet[0].addr()).expect("direct connect");
    direct
        .call(&Request::AppendTuples {
            relation: "e0".into(),
            tuples: vec![prj_api::TupleData::new([0.0, 0.0], 0.99)],
        })
        .expect("out-of-band append");
    let response = coordinator.dispatch_one(Request::TopK(
        QueryRequest::new(vec!["e0".into(), "e1".into()], [0.3, 0.3]).k(2),
    ));
    match response {
        Response::Error(e) => assert_eq!(e.kind, prj_api::ErrorKind::StaleEpoch, "got {e:?}"),
        other => panic!("expected stale-epoch, got {other:?}"),
    }
}

/// Sustained ingest over the delta lane, with compaction schedules skewed
/// *across* workers: one worker folds eagerly (`--delta-threshold 2`), the
/// other lazily (`--delta-threshold 64`, so its deltas mostly drain through
/// age flushes). High-rate appends stream into a single relation through
/// the coordinator, and after every batch a fresh-point query must be
/// bit-identical to the local rebuild-mode engine *and* the naive oracle —
/// per-worker compaction timing must be completely unobservable. The leg
/// ends with a worker kill mid-ingest: with replicas=2 the surviving
/// worker must keep answering exactly, whatever its delta backlog was.
#[test]
fn sustained_ingest_with_skewed_compaction_stays_exact() {
    let shards = 4;
    let size = 12;
    let exe = std::path::Path::new(env!("CARGO_BIN_EXE_prj-serve"));
    let mut fleet: Vec<Worker> = [2usize, 64]
        .iter()
        .map(|&threshold| {
            prj_cluster::spawn_worker_process_with_delta(exe, shards, 2, threshold)
                .expect("spawn delta worker")
        })
        .collect();
    let coordinator = Arc::new(coordinator_over(&fleet, shards, 2));
    let local = Session::new(Arc::new(
        EngineBuilder::default().threads(2).shards(shards).build(),
    ));
    let mut relations = generate(88, Shape::Uniform, 2, size);
    for (i, tuples) in relations.iter().enumerate() {
        let request = register_request(&format!("g{i}"), tuples);
        assert!(!matches!(
            coordinator.dispatch_one(request.clone()),
            Response::Error(_)
        ));
        assert!(!matches!(local.handle(request), Response::Error(_)));
    }

    for batch in 0..20usize {
        // Three appends per batch into the single hot relation g0.
        let points: Vec<([f64; 2], f64)> = (0..3)
            .map(|j| {
                let t = (batch * 3 + j) as f64;
                (
                    [(t * 0.37).sin() * 2.5, (t * 0.53).cos() * 2.5],
                    0.05 + (t * 0.29).sin().abs() * 0.9,
                )
            })
            .collect();
        let append = Request::AppendTuples {
            relation: "g0".into(),
            tuples: points
                .iter()
                .map(|(loc, score)| prj_api::TupleData::new(*loc, *score))
                .collect(),
        };
        // The mutation ack (id, epoch, cardinality) must be identical under
        // delta-mode workers and the rebuild-mode local engine — that is
        // what lets replication ship delta appends as-is.
        let cluster_ack = coordinator.dispatch_one(append.clone());
        let local_ack = local.handle(append);
        assert_eq!(
            cluster_ack, local_ack,
            "batch {batch}: mutation acks diverged under delta ingest"
        );
        for (j, (loc, score)) in points.iter().enumerate() {
            relations[0].push(Tuple::new(
                TupleId::new(0, size + batch * 3 + j),
                Vector::from(*loc),
                *score,
            ));
        }

        // Fresh query point every batch, so nothing can be served from a
        // cache — the cluster must read through every worker's current
        // base+delta state.
        let q = [0.11 * batch as f64 - 1.0, 0.6 - 0.07 * batch as f64];
        let request =
            Request::TopK(QueryRequest::new(vec!["g0".into(), "g1".into()], q.to_vec()).k(4));
        let cluster_rows = results_of(
            coordinator.dispatch_one(request.clone()),
            "cluster ingest query",
        );
        assert_eq!(
            rows_fingerprint(&cluster_rows),
            rows_fingerprint(&results_of(local.handle(request), "local ingest query")),
            "batch {batch}: cluster diverged from local mid-ingest"
        );
        let oracle = naive_fingerprint(&relations, &Vector::from(q), 4);
        let cluster_view: Vec<(Vec<(usize, usize)>, u64)> = cluster_rows
            .iter()
            .map(|r| (r.tuples.clone(), r.score.to_bits()))
            .collect();
        assert_eq!(
            cluster_view, oracle,
            "batch {batch}: cluster diverged from the oracle mid-ingest"
        );
    }

    // Kill the lazy worker (the one most likely to be holding a delta
    // backlog) mid-ingest: replicas=2 means the eager worker owns every
    // shard too, so the fleet must keep answering exactly.
    drop(fleet.remove(1));
    let q = [0.33, -0.45];
    let request = Request::TopK(QueryRequest::new(vec!["g0".into(), "g1".into()], q.to_vec()).k(5));
    let rows = results_of(
        coordinator.dispatch_one(request.clone()),
        "post-kill ingest query",
    );
    assert_eq!(
        rows_fingerprint(&rows),
        rows_fingerprint(&results_of(local.handle(request), "local post-kill")),
        "post-kill query diverged from local"
    );
    let oracle = naive_fingerprint(&relations, &Vector::from(q), 5);
    let cluster_view: Vec<(Vec<(usize, usize)>, u64)> = rows
        .iter()
        .map(|r| (r.tuples.clone(), r.score.to_bits()))
        .collect();
    assert_eq!(cluster_view, oracle, "post-kill query diverged from oracle");
}

/// The spawned worker process speaks both dialects: legacy `prj/1` lines
/// round-trip, and cluster verbs on `prj/1` earn a typed version error.
#[test]
fn worker_process_serves_both_protocol_versions() {
    use std::io::{BufRead, Write};
    let fleet = spawn_fleet(1, 2);
    let stream = std::net::TcpStream::connect(fleet[0].addr()).expect("connect");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut exchange = |line: &str| -> String {
        writer.write_all(line.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("newline");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        response.trim_end().to_string()
    };
    let response = exchange("prj/1 register name=w tuples=0.5,0.5:0.5");
    assert!(
        response.starts_with("prj/1 ok registered"),
        "got: {response}"
    );
    let response = exchange("prj/2 hello max=2");
    assert_eq!(response, "prj/2 ok hello ver=2");
    let response = exchange("prj/1 wstats");
    assert!(
        response.starts_with("prj/1 err kind=version"),
        "got: {response}"
    );
    let response = exchange("prj/2 wstats");
    assert!(response.starts_with("prj/2 ok worker"), "got: {response}");
}
