//! EXPLAIN / EXPLAIN ANALYZE against a real 2-worker fleet: the profile's
//! books must balance (per-unit depths sum exactly to the engine's
//! `sumDepths` accounting), every analyzed unit must carry a sampled
//! bound-convergence trajectory, and — the diagnostics contract — the rows
//! ANALYZE returns must be bit-identical to a plain `TopK` of the same
//! query. A diagnostic that changes the answer it diagnoses is worthless.

use prj_api::{QueryRequest, Request, Response, TupleData};
use prj_cluster::{ClusterTopology, Coordinator};

type Worker = prj_cluster::SpawnedWorker;

fn spawn_fleet(n: usize, shards: usize) -> Vec<Worker> {
    (0..n)
        .map(|_| {
            prj_cluster::spawn_worker_process(
                std::path::Path::new(env!("CARGO_BIN_EXE_prj-serve")),
                shards,
                2,
            )
            .expect("spawn prj-serve --worker")
        })
        .collect()
}

fn coordinator_over(fleet: &[Worker], shards: usize, replicas: usize) -> Coordinator {
    let topology = ClusterTopology::new(
        fleet.iter().map(|w| w.addr().to_string()).collect(),
        shards,
        replicas,
    )
    .expect("topology");
    Coordinator::builder(topology)
        .threads(2)
        .build()
        .expect("coordinator bootstrap")
}

fn dataset(rel: usize) -> Vec<TupleData> {
    (0..48)
        .map(|i| {
            let x = ((i * 37 + rel * 11) % 96) as f64 / 8.0 - 6.0;
            let y = ((i * 53 + rel * 7) % 96) as f64 / 8.0 - 6.0;
            TupleData::new([x, y], ((i % 12) as f64 + 1.0) / 12.0)
        })
        .collect()
}

fn query() -> QueryRequest {
    QueryRequest::new(vec!["rel0".into(), "rel1".into()], [0.4, -0.9]).k(6)
}

#[test]
fn analyze_profile_balances_and_rows_match_topk_bit_for_bit() {
    let shards = 2;
    let fleet = spawn_fleet(2, shards);
    let coordinator = coordinator_over(&fleet, shards, 1);
    for rel in 0..2 {
        match coordinator.dispatch_one(Request::RegisterRelation {
            name: format!("rel{rel}"),
            tuples: dataset(rel),
        }) {
            Response::Registered { .. } => {}
            other => panic!("register failed: {other:?}"),
        }
    }

    let depths_before = coordinator.engine().stats().total_sum_depths;
    let report = match coordinator.dispatch_one(Request::Explain {
        query: query(),
        analyze: true,
    }) {
        Response::Explain(report) => report,
        other => panic!("explain analyze failed: {other:?}"),
    };
    let depths_after = coordinator.engine().stats().total_sum_depths;

    // Plan side: a chosen algorithm, a unit per driving shard, planner
    // inputs for every relation.
    assert!(!report.algorithm.is_empty());
    assert_eq!(report.units.len(), shards, "one unit per driving shard");
    assert_eq!(report.relations.len(), 2);
    assert!(report.relations.iter().all(|r| r.cardinality > 0));

    // Profile side: the books balance exactly — per-unit depths sum to the
    // profile's total, and the engine's fleet-wide sumDepths stat advanced
    // by precisely that amount (ANALYZE is a real, fully-accounted run).
    let analyzed = report.analyzed.expect("analyze produces a profile");
    let unit_sum: u64 = analyzed.units.iter().map(|u| u.depths).sum();
    assert_eq!(unit_sum, analyzed.total_sum_depths, "unit depths balance");
    assert_eq!(
        depths_after - depths_before,
        analyzed.total_sum_depths,
        "the engine's sumDepths stat advanced by the profiled amount"
    );
    assert!(analyzed.units.iter().any(|u| u.remote), "fleet execution");
    for unit in &analyzed.units {
        assert!(
            !unit.trajectory.is_empty(),
            "unit {} has no bound-convergence trajectory",
            unit.shard
        );
        assert!(
            unit.trajectory.windows(2).all(|w| w[0].depth <= w[1].depth),
            "trajectory depths must be non-decreasing"
        );
        assert!(matches!(unit.cache.as_str(), "fresh" | "delta-merged"));
    }

    // Answer side: bit-identical to the plain query.
    let plain = match coordinator.dispatch_one(Request::TopK(query())) {
        Response::Results { rows, .. } => rows,
        other => panic!("plain top-K failed: {other:?}"),
    };
    assert_eq!(analyzed.rows.len(), plain.len());
    for (a, b) in analyzed.rows.iter().zip(plain.iter()) {
        assert_eq!(a.tuples, b.tuples);
        assert_eq!(a.score.to_bits(), b.score.to_bits(), "bit-exact scores");
    }
}

#[test]
fn analyze_bypasses_caches_and_plain_mode_skips_execution() {
    let shards = 2;
    let fleet = spawn_fleet(2, shards);
    let coordinator = coordinator_over(&fleet, shards, 1);
    for rel in 0..2 {
        match coordinator.dispatch_one(Request::RegisterRelation {
            name: format!("rel{rel}"),
            tuples: dataset(rel),
        }) {
            Response::Registered { .. } => {}
            other => panic!("register failed: {other:?}"),
        }
    }

    // Warm both the result cache and the unit cache.
    match coordinator.dispatch_one(Request::TopK(query())) {
        Response::Results { .. } => {}
        other => panic!("warmup failed: {other:?}"),
    }

    // Plain EXPLAIN: a plan, no profile, no execution recorded.
    let executed_before = coordinator.engine().stats().executed;
    let plan_only = match coordinator.dispatch_one(Request::Explain {
        query: query(),
        analyze: false,
    }) {
        Response::Explain(report) => report,
        other => panic!("explain failed: {other:?}"),
    };
    assert!(plan_only.analyzed.is_none(), "plan mode must not execute");
    assert_eq!(plan_only.units.len(), shards);
    assert_eq!(
        coordinator.engine().stats().executed,
        executed_before,
        "plan mode leaves the execution counters untouched"
    );

    // ANALYZE after the warmup must still run every unit for real: a
    // cached profile would report the cache's cost (zero), not the
    // query's.
    let report = match coordinator.dispatch_one(Request::Explain {
        query: query(),
        analyze: true,
    }) {
        Response::Explain(report) => report,
        other => panic!("explain analyze failed: {other:?}"),
    };
    let analyzed = report.analyzed.expect("profile");
    assert!(
        analyzed.total_sum_depths > 0,
        "a real execution was profiled"
    );
    assert!(analyzed.units.iter().all(|u| u.depths > 0));

    // And the warmed result cache is still intact afterwards: ANALYZE
    // reads around the caches, it does not clobber them.
    match coordinator.dispatch_one(Request::TopK(query())) {
        Response::Results { from_cache, .. } => {
            assert!(from_cache, "result cache survived ANALYZE")
        }
        other => panic!("post-analyze top-K failed: {other:?}"),
    }
}
