//! Distributed tracing: a coordinator query over real worker processes
//! produces ONE stitched trace — the coordinator's `query`/`plan`/`unit`
//! spans plus every worker's imported `execute_unit`/`run` spans, all
//! correctly parented — and replica failover is pinned into the trace as
//! a `failover` event.

use prj_api::{QueryRequest, Request, Response, TupleData};
use prj_cluster::{ClusterTopology, Coordinator};
use prj_obs::Span;

type Worker = prj_cluster::SpawnedWorker;

fn spawn_fleet(n: usize, shards: usize) -> Vec<Worker> {
    (0..n)
        .map(|_| {
            prj_cluster::spawn_worker_process(
                std::path::Path::new(env!("CARGO_BIN_EXE_prj-serve")),
                shards,
                2,
            )
            .expect("spawn prj-serve --worker")
        })
        .collect()
}

fn coordinator_over(fleet: &[Worker], shards: usize, replicas: usize) -> Coordinator {
    let topology = ClusterTopology::new(
        fleet.iter().map(|w| w.addr().to_string()).collect(),
        shards,
        replicas,
    )
    .expect("topology");
    Coordinator::builder(topology)
        .threads(2)
        .build()
        .expect("coordinator bootstrap")
}

fn register_grid(coordinator: &Coordinator, name: &str, n: usize, salt: u64) {
    let tuples = (0..n)
        .map(|i| {
            let x = ((i as u64 * 37 + salt * 11) % 100) as f64 / 10.0 - 5.0;
            let y = ((i as u64 * 53 + salt * 7) % 100) as f64 / 10.0 - 5.0;
            TupleData::new([x, y], ((i % 10) as f64 + 1.0) / 10.0)
        })
        .collect();
    let response = coordinator.dispatch_one(Request::RegisterRelation {
        name: name.to_string(),
        tuples,
    });
    assert!(
        !matches!(response, Response::Error(_)),
        "register {name}: {response:?}"
    );
}

fn run_query(coordinator: &Coordinator, q: [f64; 2]) -> Vec<prj_api::ResultRow> {
    match coordinator.dispatch_one(Request::TopK(
        QueryRequest::new(vec!["t0".into(), "t1".into()], q.to_vec()).k(5),
    )) {
        Response::Results { rows, .. } => rows,
        other => panic!("query failed: {other:?}"),
    }
}

/// All finished spans of the trace the (single) root `query` span belongs
/// to, after waiting out the asynchronous tail of the query.
fn query_trace(coordinator: &Coordinator) -> Vec<Span> {
    let recorder = coordinator.engine().recorder();
    let root = recorder
        .finished()
        .into_iter()
        .find(|s| s.name == "query")
        .expect("a finished root query span");
    recorder.trace(root.trace)
}

#[test]
fn a_distributed_query_yields_one_stitched_trace() {
    let shards = 4;
    let fleet = spawn_fleet(2, shards);
    let coordinator = coordinator_over(&fleet, shards, 2);
    register_grid(&coordinator, "t0", 40, 0);
    register_grid(&coordinator, "t1", 40, 1);
    let rows = run_query(&coordinator, [0.3, -0.8]);
    assert!(!rows.is_empty());

    let spans = query_trace(&coordinator);
    let root = spans.iter().find(|s| s.name == "query").expect("root");
    assert_eq!(root.parent, None);
    let trace = root.trace;
    assert!(
        spans.iter().all(|s| s.trace == trace),
        "every span shares the query's trace"
    );

    // Coordinator-side skeleton: plan + one unit per driving shard +
    // merge, all under the root.
    let plan = spans.iter().find(|s| s.name == "plan").expect("plan span");
    assert_eq!(plan.parent, Some(root.id));
    let units: Vec<&Span> = spans.iter().filter(|s| s.name == "unit").collect();
    assert_eq!(units.len(), shards, "one unit span per driving shard");
    assert!(units.iter().all(|u| u.parent == Some(root.id)));
    assert!(units.iter().all(|u| u
        .attrs
        .contains(&("remote".to_string(), "true".to_string()))));
    let merge = spans.iter().find(|s| s.name == "merge").expect("merge");
    assert_eq!(merge.parent, Some(root.id));

    // Worker-side spans were shipped over the wire and stitched under the
    // coordinator `unit` spans that dispatched them: every remote unit
    // carries an imported `execute_unit` child, which in turn carries the
    // operator `run`.
    let remote: Vec<&Span> = spans.iter().filter(|s| s.name == "execute_unit").collect();
    assert_eq!(
        remote.len(),
        shards,
        "one imported worker span per remote unit"
    );
    let unit_ids: Vec<_> = units.iter().map(|u| u.id).collect();
    for worker_span in &remote {
        let parent = worker_span.parent.expect("imported spans are parented");
        assert!(
            unit_ids.contains(&parent),
            "execute_unit must hang under a coordinator unit span"
        );
        let run = spans
            .iter()
            .find(|s| s.name == "run" && s.parent == Some(worker_span.id))
            .expect("operator run span under the imported unit");
        assert!(run.duration_micros <= worker_span.duration_micros + 1);
        // Imported starts are re-based into the coordinator clock: never
        // before the dispatching unit span started.
        let unit = units.iter().find(|u| u.id == parent).unwrap();
        assert!(worker_span.start_micros >= unit.start_micros);
    }
}

#[test]
fn replica_failover_is_recorded_in_the_trace_and_metrics() {
    let shards = 2;
    let mut fleet = spawn_fleet(2, shards);
    let coordinator = coordinator_over(&fleet, shards, 2);
    register_grid(&coordinator, "t0", 30, 0);
    register_grid(&coordinator, "t1", 30, 1);
    // Kill one worker; with replicas=2 the query must still answer, and
    // the abandoned replica must be visible as a failover event in the
    // query's trace and in the failover counter.
    drop(fleet.remove(0));
    let rows = run_query(&coordinator, [-1.1, 2.4]);
    assert!(!rows.is_empty(), "replicated fleet must still answer");

    let spans = query_trace(&coordinator);
    let failover = spans
        .iter()
        .find(|s| s.name == "failover")
        .expect("a failover event span");
    assert_eq!(failover.duration_micros, 0, "events are points");
    let parent = failover.parent.expect("failover hangs under its unit");
    assert!(
        spans.iter().any(|s| s.name == "unit" && s.id == parent),
        "failover event parented under the dispatching unit span"
    );
    assert!(failover.attrs.iter().any(|(k, _)| k == "worker"));

    let failovers = coordinator
        .engine()
        .metrics_samples()
        .into_iter()
        .find(|s| s.name == "prj_failovers_total")
        .expect("failover counter registered");
    assert!(failovers.value >= 1.0, "got {}", failovers.value);
}

/// Worker-side stats lanes flow back to the coordinator: after a
/// distributed query, the cluster-wide stats report carries per-shard
/// depths and latencies measured on the workers, and their sum matches
/// the fleet's total depth accounting.
#[test]
fn worker_lanes_aggregate_into_cluster_stats() {
    let shards = 4;
    let fleet = spawn_fleet(2, shards);
    let coordinator = coordinator_over(&fleet, shards, 2);
    register_grid(&coordinator, "t0", 40, 0);
    register_grid(&coordinator, "t1", 40, 1);
    run_query(&coordinator, [0.3, -0.8]);
    run_query(&coordinator, [-2.0, 1.5]);

    let Response::Stats(report) = coordinator.dispatch_one(Request::Stats) else {
        panic!("stats verb failed");
    };
    assert_eq!(report.worker_shard_depths.len(), shards);
    assert_eq!(report.worker_shard_micros.len(), shards);
    let lane_total: u64 = report.worker_shard_depths.iter().sum();
    assert!(lane_total > 0, "worker lanes must carry the executed units");
    assert_eq!(
        lane_total, report.total_sum_depths,
        "worker-side lane depths must add up to the fleet's sumDepths"
    );
}
