//! `prj-serve` — the line-delimited TCP front-end for the ProxRJ engine,
//! in three roles: standalone server, cluster worker, cluster coordinator.
//!
//! ```text
//! cargo run --release -p prj-cluster --bin prj-serve -- [OPTIONS]
//!
//! OPTIONS:
//!     --addr HOST:PORT   listen address (default 127.0.0.1:7878; port 0 = ephemeral)
//!     --threads N        engine worker threads (default: available parallelism)
//!     --cache N          result-cache capacity in entries (default 1024)
//!     --shards N         spatial shards per relation (default 1 = unsharded)
//!     --table1           preload the paper's Table 1 relations as R1, R2, R3
//!     --self-check       bind an ephemeral port, run one client round-trip, exit
//!     --max-subscriptions N  cap on concurrent standing queries per process
//!                        (default 1024; 0 = unlimited; the cap answers with a
//!                        typed `degraded` error)
//!     --metrics-addr A   also serve a Prometheus-style /metrics endpoint on A
//!                        (coordinators fold every worker's series in, with
//!                        an `instance` label)
//!     --health-addr A    also serve the readiness/liveness report on A over
//!                        HTTP (the same report the typed `health` verb
//!                        returns: role, replication ack lag, delta backlog,
//!                        subscription queue, per-worker reachability)
//!     --slow-query-ms N  dump the trace of any query slower than N ms to
//!                        stderr
//!     --delta-threshold N  buffer appends in per-shard deltas and fold them
//!                        into the base indexes in the background once a
//!                        delta holds N tuples (default 0 = rebuild the
//!                        touched shard on every append)
//!
//!   cluster roles:
//!     --worker                serve as a cluster worker (adds the prj/2
//!                             cluster-internal verbs; catalogs replicate in
//!                             from a coordinator)
//!     --coordinator           serve as a cluster coordinator
//!     --workers A,B,C         comma-separated worker addresses
//!     --topology FILE         topology file (worker/shards/replicas lines)
//!     --replicas N            owners per driving shard (default 1)
//!     --cluster-self-check N  spawn N local worker processes, run the
//!                             distributed round-trip + worker-kill check, exit
//! ```
//!
//! The protocol is `prj-api`'s line format (`prj/1` legacy, `prj/2`
//! negotiated); try it by hand:
//!
//! ```text
//! $ nc 127.0.0.1 7878
//! prj/1 register name=hotels tuples=0.0,-0.5:0.5;0.0,1.0:1.0
//! prj/1 ok registered id=0 name=hotels epoch=0 n=2
//! prj/1 topk rels=hotels q=0.0,0.0 k=1
//! prj/1 ok results cached=false algo=TBRR rows=-0.9431471805599453@0:0
//! ```

use prj_api::{
    apply_events, ApiClient, ErrorKind, HealthReport, QueryRequest, Request, Response, TupleData,
};
use prj_cluster::{ClusterTopology, Coordinator, WorkerSession};
use prj_engine::{Dispatch, EngineBuilder, RequestHandler, Server, Session};
use prj_obs::{MetricsServer, RenderFn};
use prj_sub::{Subscribing, SubscriptionManager};
use std::sync::Arc;
use std::time::Duration;

#[derive(Clone)]
struct Options {
    addr: String,
    threads: Option<usize>,
    cache: usize,
    shards: usize,
    table1: bool,
    self_check: bool,
    worker: bool,
    coordinator: bool,
    workers: Vec<String>,
    topology: Option<String>,
    replicas: usize,
    cluster_self_check: Option<usize>,
    metrics_addr: Option<String>,
    health_addr: Option<String>,
    slow_query_ms: Option<u64>,
    max_subscriptions: usize,
    delta_threshold: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:7878".to_string(),
        threads: None,
        cache: 1024,
        shards: 1,
        table1: false,
        self_check: false,
        worker: false,
        coordinator: false,
        workers: Vec::new(),
        topology: None,
        replicas: 1,
        cluster_self_check: None,
        metrics_addr: None,
        health_addr: None,
        slow_query_ms: None,
        max_subscriptions: 1024,
        delta_threshold: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--addr" => options.addr = value("--addr")?,
            "--threads" => {
                options.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|_| "--threads expects an integer".to_string())?,
                )
            }
            "--cache" => {
                options.cache = value("--cache")?
                    .parse()
                    .map_err(|_| "--cache expects an integer".to_string())?
            }
            "--shards" => {
                options.shards = value("--shards")?
                    .parse()
                    .map_err(|_| "--shards expects an integer".to_string())?;
                if options.shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--replicas" => {
                options.replicas = value("--replicas")?
                    .parse()
                    .map_err(|_| "--replicas expects an integer".to_string())?
            }
            "--workers" => {
                options.workers = value("--workers")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--topology" => options.topology = Some(value("--topology")?),
            "--worker" => options.worker = true,
            "--coordinator" => options.coordinator = true,
            "--cluster-self-check" => {
                options.cluster_self_check = Some(
                    value("--cluster-self-check")?
                        .parse()
                        .map_err(|_| "--cluster-self-check expects a worker count".to_string())?,
                )
            }
            "--max-subscriptions" => {
                options.max_subscriptions = value("--max-subscriptions")?
                    .parse()
                    .map_err(|_| "--max-subscriptions expects an integer".to_string())?
            }
            "--delta-threshold" => {
                options.delta_threshold = value("--delta-threshold")?
                    .parse()
                    .map_err(|_| "--delta-threshold expects an integer".to_string())?
            }
            "--metrics-addr" => options.metrics_addr = Some(value("--metrics-addr")?),
            "--health-addr" => options.health_addr = Some(value("--health-addr")?),
            "--slow-query-ms" => {
                options.slow_query_ms = Some(
                    value("--slow-query-ms")?
                        .parse()
                        .map_err(|_| "--slow-query-ms expects milliseconds".to_string())?,
                )
            }
            "--table1" => options.table1 = true,
            "--self-check" => options.self_check = true,
            "--help" | "-h" => {
                println!(
                    "prj-serve: TCP front-end for the ProxRJ engine\n\
                     usage: prj-serve [--addr HOST:PORT] [--threads N] [--cache N] \
                     [--shards N] [--table1] [--self-check] [--metrics-addr HOST:PORT] \
                     [--health-addr HOST:PORT] [--slow-query-ms N] [--max-subscriptions N] \
                     [--delta-threshold N]\n\
                     cluster: [--worker] [--coordinator --workers A,B,C | --topology FILE] \
                     [--replicas N] [--cluster-self-check N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if options.worker && options.coordinator {
        return Err("--worker and --coordinator are mutually exclusive".to_string());
    }
    Ok(options)
}

fn build_engine(options: &Options) -> Arc<prj_engine::Engine> {
    let mut builder = EngineBuilder::default()
        .cache_capacity(options.cache)
        .slow_query_threshold(options.slow_query_ms.map(Duration::from_millis))
        .delta_threshold(options.delta_threshold)
        .shards(options.shards);
    if let Some(threads) = options.threads {
        builder = builder.threads(threads);
    }
    Arc::new(builder.build())
}

/// Binds the `--metrics-addr` exposition listener, if asked for. The
/// returned server keeps scraping until dropped.
fn bind_metrics(addr: Option<&str>, render: RenderFn) -> Result<Option<MetricsServer>, String> {
    let Some(addr) = addr else { return Ok(None) };
    let server = MetricsServer::bind(addr, render)
        .map_err(|e| format!("cannot bind metrics endpoint {addr}: {e}"))?;
    println!(
        "metrics exposition on http://{}/metrics",
        server.local_addr()
    );
    Ok(Some(server))
}

/// Renders a [`HealthReport`] as the `--health-addr` endpoint's plain-text
/// body: one `field value` line each, workers one line per worker. The
/// first line is `ready true|false` so a probe needs nothing but a prefix
/// check.
fn render_health(health: &HealthReport) -> String {
    let mut out = format!(
        "ready {}\nlive {}\nrole {}\nreplication_lag_micros {}\ndelta_tuples {}\n\
         oldest_delta_age_ms {}\nsub_queue_depth {}\nsubscriptions {}\ntraces_retained {}\n",
        health.ready,
        health.live,
        health.role,
        health.replication_lag_micros,
        health.delta_tuples,
        health.oldest_delta_age_ms,
        health.sub_queue_depth,
        health.subscriptions,
        health.traces_retained,
    );
    for worker in &health.workers {
        out.push_str(&format!(
            "worker {} reachable={} idle_connections={}\n",
            worker.addr, worker.reachable, worker.idle_connections
        ));
    }
    out
}

/// A render callback answering every probe with the handler's current
/// health report — the typed `health` verb and the HTTP endpoint stay one
/// code path.
fn health_render_from<H: RequestHandler + Send + Sync + 'static>(handler: Arc<H>) -> RenderFn {
    Arc::new(move || match handler.dispatch_request(Request::Health) {
        Dispatch::One(Response::Health(health)) => render_health(&health),
        _ => "ready false\nlive false\n".to_string(),
    })
}

/// Binds the `--health-addr` probe listener, if asked for.
fn bind_health(addr: Option<&str>, render: RenderFn) -> Result<Option<MetricsServer>, String> {
    let Some(addr) = addr else { return Ok(None) };
    let server = MetricsServer::bind(addr, render)
        .map_err(|e| format!("cannot bind health endpoint {addr}: {e}"))?;
    println!("health probes on http://{}/health", server.local_addr());
    Ok(Some(server))
}

/// One Table 1 relation: its name plus two `(coords, score)` rows.
type Table1Relation = (&'static str, [([f64; 2], f64); 2]);

/// The paper's Table 1 relations — the single source for every `--table1`
/// preload path (standalone and coordinator).
const TABLE1: [Table1Relation; 3] = [
    ("R1", [([0.0, -0.5], 0.5), ([0.0, 1.0], 1.0)]),
    ("R2", [([1.0, 1.0], 1.0), ([-2.0, 2.0], 0.8)]),
    ("R3", [([-1.0, 1.0], 1.0), ([-2.0, -2.0], 0.4)]),
];

/// Preloads Table 1 through whatever dispatch path the role uses (the
/// coordinator must register through its replication path, not directly).
fn preload_table1(dispatch: impl Fn(Request) -> Response) -> Result<(), String> {
    for (name, rows) in TABLE1 {
        let response = dispatch(Request::RegisterRelation {
            name: name.to_string(),
            tuples: rows
                .iter()
                .map(|(x, s)| TupleData::new(x.to_vec(), *s))
                .collect(),
        });
        if let Response::Error(e) = response {
            return Err(format!("table1 preload of {name} failed: {e}"));
        }
    }
    println!("preloaded Table 1 relations: R1, R2, R3");
    Ok(())
}

fn build_session(options: &Options) -> Result<Arc<Session>, String> {
    let engine = build_engine(options);
    let session = Arc::new(Session::new(engine));
    if options.table1 {
        preload_table1(|request| session.handle(request))?;
    }
    Ok(session)
}

/// Wraps `handler` with the standing-query front-end: a
/// [`SubscriptionManager`] re-evaluating over `engine`, which must be the
/// same engine the handler commits mutations through — that is what makes
/// committed mutations wake the manager's observer. On a coordinator the
/// engine carries the cluster backend, so re-evaluations execute
/// distributed (with replica failover) exactly like client queries.
fn with_subscriptions<H: prj_engine::RequestHandler>(
    handler: Arc<H>,
    engine: &Arc<prj_engine::Engine>,
    max_subscriptions: usize,
) -> (Arc<Subscribing<H>>, Arc<SubscriptionManager>) {
    let manager = Arc::new(SubscriptionManager::new(
        Session::new(Arc::clone(engine)),
        max_subscriptions,
    ));
    (
        Arc::new(Subscribing::new(handler, Arc::clone(&manager))),
        manager,
    )
}

fn topology_from(options: &Options) -> Result<ClusterTopology, String> {
    match &options.topology {
        Some(path) => {
            let topology = ClusterTopology::from_file(std::path::Path::new(path))
                .map_err(|e| e.to_string())?;
            if !options.workers.is_empty() {
                return Err("--topology and --workers are mutually exclusive".to_string());
            }
            Ok(topology)
        }
        None => ClusterTopology::new(options.workers.clone(), options.shards, options.replicas)
            .map_err(|e| e.to_string()),
    }
}

/// Boots the server on an ephemeral port and runs one full client
/// round-trip against it: register → topk → append → topk (invalidated) →
/// stats. Exits non-zero on any mismatch, which makes it a cheap CI smoke
/// test of the whole binary.
fn self_check(options: &Options) -> Result<(), String> {
    let session = build_session(options)?;
    let engine = Arc::clone(session.engine());
    let (handler, _manager) = with_subscriptions(session, &engine, options.max_subscriptions);
    let server = Server::bind("127.0.0.1:0", handler).map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.local_addr();
    let mut client = ApiClient::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
    // The standalone server negotiates prj/2 even though clients may stay
    // on prj/1.
    let version = client
        .negotiate()
        .map_err(|e| format!("negotiate failed: {e}"))?;
    if version != prj_api::PROTOCOL_VERSION {
        return Err(format!("negotiated prj/{version}, expected prj/2"));
    }

    let hotels_id = match client
        .call(&Request::RegisterRelation {
            name: "hotels".to_string(),
            tuples: vec![
                TupleData::new([0.0, -0.5], 0.5),
                TupleData::new([0.0, 1.0], 1.0),
            ],
        })
        .map_err(|e| format!("register failed: {e}"))?
    {
        Response::Registered { id, .. } => id,
        other => return Err(format!("unexpected register response: {other:?}")),
    };
    let (rows, from_cache) = client
        .top_k(QueryRequest::new(vec!["hotels".into()], [0.0, 0.0]).k(1))
        .map_err(|e| format!("topk failed: {e}"))?;
    if rows.len() != 1 || from_cache {
        return Err(format!(
            "unexpected cold topk: {rows:?} cached={from_cache}"
        ));
    }
    client
        .call(&Request::AppendTuples {
            relation: "hotels".into(),
            tuples: vec![TupleData::new([0.0, 0.0], 1.0)],
        })
        .map_err(|e| format!("append failed: {e}"))?;
    let (rows, from_cache) = client
        .top_k(QueryRequest::new(vec!["hotels".into()], [0.0, 0.0]).k(1))
        .map_err(|e| format!("post-append topk failed: {e}"))?;
    if from_cache || rows[0].tuples != vec![(hotels_id, 2)] {
        return Err(format!(
            "append was not observed: {rows:?} cached={from_cache}"
        ));
    }
    let stats = client.stats().map_err(|e| format!("stats failed: {e}"))?;
    let expected_relations = if options.table1 { 4 } else { 1 };
    if stats.queries != 2 || stats.relations != expected_relations {
        return Err(format!("unexpected stats: {stats:?}"));
    }
    if stats.shards != options.shards {
        return Err(format!(
            "engine reports {} shards, expected {}",
            stats.shards, options.shards
        ));
    }
    if stats.shard_depths.iter().sum::<u64>() != stats.total_sum_depths {
        return Err(format!(
            "per-shard depths {:?} do not add up to sumDepths {}",
            stats.shard_depths, stats.total_sum_depths
        ));
    }
    // Standing-query leg: subscribe, mutate, receive the push on the same
    // connection, and replay the delivered events over the acked baseline —
    // the replayed view must be bit-identical to a fresh top-K.
    let sub_query = || QueryRequest::new(vec!["hotels".into()], [0.0, 0.0]).k(2);
    let (sub_id, baseline, _algo) = client
        .subscribe(sub_query())
        .map_err(|e| format!("subscribe failed: {e}"))?;
    client
        .call(&Request::AppendTuples {
            relation: "hotels".into(),
            tuples: vec![TupleData::new([0.05, 0.0], 1.0)],
        })
        .map_err(|e| format!("subscribed append failed: {e}"))?;
    let notification = client
        .wait_notification(Duration::from_secs(10))
        .map_err(|e| format!("notification read failed: {e}"))?
        .ok_or("no notification arrived within 10s of the append")?;
    if notification.id != sub_id || notification.fin.is_some() {
        return Err(format!("unexpected notification: {notification:?}"));
    }
    let view = apply_events(&baseline, &notification.events, notification.total)
        .map_err(|e| format!("event replay failed: {e}"))?;
    let (fresh, _) = client
        .top_k(sub_query())
        .map_err(|e| format!("fresh topk failed: {e}"))?;
    if view != fresh {
        return Err(format!("replayed view {view:?} != fresh top-K {fresh:?}"));
    }
    client
        .unsubscribe(sub_id)
        .map_err(|e| format!("unsubscribe failed: {e}"))?;
    // Delta-lane leg (`--delta-threshold N --self-check`): the appends above
    // landed in shard deltas; force the fold and prove the query crossed a
    // real compaction without changing its bits.
    if options.delta_threshold > 0 {
        let (pre, _) = client
            .top_k(sub_query())
            .map_err(|e| format!("pre-compaction topk failed: {e}"))?;
        let compactor = engine
            .compactor()
            .ok_or("delta threshold set but the engine spawned no compactor")?;
        compactor.step();
        if engine.catalog().delta_tuples_total() != 0 {
            return Err("compactor step left tuples in shard deltas".to_string());
        }
        let folded = engine.obs().compactions_total().get();
        if folded == 0 {
            return Err("self-check never crossed a compaction".to_string());
        }
        let (post, _) = client
            .top_k(sub_query())
            .map_err(|e| format!("post-compaction topk failed: {e}"))?;
        if post != pre {
            return Err(format!(
                "compaction changed query results: {pre:?} -> {post:?}"
            ));
        }
        println!("self-check: delta lane folded {folded} shard deltas, results unchanged");
    }
    server.shutdown();
    println!(
        "self-check ok: served {} queries on {addr} (standing-query leg replayed exactly)",
        stats.queries
    );
    Ok(())
}

/// One blocking HTTP GET against a probe/exposition endpoint; returns the
/// body of a 200.
fn http_get(addr: std::net::SocketAddr, path: &str) -> Result<String, String> {
    use std::io::{Read, Write};
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("{path} connect: {e}"))?;
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: prj\r\n\r\n").as_bytes())
        .map_err(|e| format!("{path} request: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("{path} read: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{path} response has no body"))?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!("{path} fetch was not a 200: {head:?}"));
    }
    Ok(body.to_string())
}

/// Scrapes `addr` once and validates the exposition shape: an HTTP 200, a
/// non-empty body, and every non-comment line parsing as
/// `name[{labels}] value` with a float value. Returns the body for
/// series-level checks.
fn scrape_metrics(addr: std::net::SocketAddr) -> Result<String, String> {
    let body = http_get(addr, "/metrics")?;
    if body.trim().is_empty() {
        return Err("metrics exposition is empty".to_string());
    }
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("malformed exposition line {line:?}"))?;
        if series.is_empty() {
            return Err(format!("malformed exposition line {line:?}"));
        }
        value
            .parse::<f64>()
            .map_err(|_| format!("non-numeric value in exposition line {line:?}"))?;
    }
    Ok(body)
}

/// Sum of every series value whose `name{labels}` part starts with
/// `prefix` (summing collapses the per-instance splits).
fn metric_total(body: &str, prefix: &str) -> f64 {
    body.lines()
        .filter(|l| l.starts_with(prefix))
        .filter_map(|l| l.rsplit_once(' '))
        .filter_map(|(_, v)| v.parse::<f64>().ok())
        .sum()
}

fn spawn_worker(shards: usize) -> Result<prj_cluster::SpawnedWorker, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    prj_cluster::spawn_worker_process(&exe, shards, 2)
}

/// Spawns `n` worker processes on loopback, drives a coordinator through a
/// register → query → append → query round-trip verified against a local
/// single-process engine, then kills a worker and checks the failure
/// semantics: exact completion via a replica, or a typed error — never a
/// truncated result.
fn cluster_self_check(options: &Options, n: usize) -> Result<(), String> {
    if n == 0 {
        return Err("--cluster-self-check needs at least one worker".to_string());
    }
    let shards = options.shards.max(2);
    let replicas = n.min(2);
    println!("cluster-self-check: spawning {n} workers (shards={shards}, replicas={replicas})");
    let workers: Vec<prj_cluster::SpawnedWorker> = (0..n)
        .map(|_| spawn_worker(shards))
        .collect::<Result<_, _>>()?;
    let addrs: Vec<String> = workers.iter().map(|w| w.addr().to_string()).collect();
    println!("cluster-self-check: workers on {addrs:?}");

    let topology = ClusterTopology::new(addrs, shards, replicas).map_err(|e| e.to_string())?;
    let coordinator = Arc::new(
        Coordinator::builder(topology)
            .threads(2)
            .build()
            .map_err(|e| format!("coordinator bootstrap failed: {e}"))?,
    );

    // A single-process reference engine over the same data.
    let reference = Session::new(Arc::new(
        EngineBuilder::default().threads(2).shards(shards).build(),
    ));

    let dataset: Vec<(String, Vec<TupleData>)> = (0..2)
        .map(|rel| {
            let tuples = (0..40)
                .map(|i| {
                    let x = ((i * 37 + rel * 11) % 100) as f64 / 10.0 - 5.0;
                    let y = ((i * 53 + rel * 7) % 100) as f64 / 10.0 - 5.0;
                    TupleData::new([x, y], ((i % 10) as f64 + 1.0) / 10.0)
                })
                .collect();
            (format!("rel{rel}"), tuples)
        })
        .collect();
    for (name, tuples) in &dataset {
        for handler in [
            coordinator.dispatch_one(Request::RegisterRelation {
                name: name.clone(),
                tuples: tuples.clone(),
            }),
            reference.handle(Request::RegisterRelation {
                name: name.clone(),
                tuples: tuples.clone(),
            }),
        ] {
            if let Response::Error(e) = handler {
                return Err(format!("register {name} failed: {e}"));
            }
        }
    }

    let query =
        || Request::TopK(QueryRequest::new(vec!["rel0".into(), "rel1".into()], [0.3, -0.8]).k(5));
    let expect_same = |tag: &str, a: Response, b: Response| -> Result<(), String> {
        match (a, b) {
            (Response::Results { rows: lhs, .. }, Response::Results { rows: rhs, .. }) => {
                if lhs != rhs {
                    return Err(format!("{tag}: cluster {lhs:?} != local {rhs:?}"));
                }
                Ok(())
            }
            (a, b) => Err(format!("{tag}: unexpected responses {a:?} / {b:?}")),
        }
    };
    expect_same(
        "cold query",
        coordinator.dispatch_one(query()),
        reference.handle(query()),
    )?;

    let append = Request::AppendTuples {
        relation: "rel0".into(),
        tuples: vec![TupleData::new([0.3, -0.8], 0.95)],
    };
    if let Response::Error(e) = coordinator.dispatch_one(append.clone()) {
        return Err(format!("replicated append failed: {e}"));
    }
    if let Response::Error(e) = reference.handle(append) {
        return Err(format!("local append failed: {e}"));
    }
    expect_same(
        "post-append query",
        coordinator.dispatch_one(query()),
        reference.handle(query()),
    )?;

    // Standing-query leg: serve the coordinator over TCP through the
    // subscription front-end, subscribe a client, replicate a mutation
    // through the same coordinator, and check the pushed change events
    // replay the old top-K into exactly the fresh answer.
    let (front, manager) = with_subscriptions(
        Arc::clone(&coordinator),
        coordinator.engine(),
        options.max_subscriptions,
    );
    let sub_server =
        Server::bind("127.0.0.1:0", front).map_err(|e| format!("subscription bind: {e}"))?;
    let mut sub_client = ApiClient::connect(sub_server.local_addr())
        .map_err(|e| format!("subscription connect: {e}"))?;
    sub_client
        .negotiate()
        .map_err(|e| format!("subscription negotiate: {e}"))?;
    let (sub_id, baseline, _algo) = sub_client
        .subscribe(QueryRequest::new(vec!["rel0".into(), "rel1".into()], [0.3, -0.8]).k(5))
        .map_err(|e| format!("subscribe failed: {e}"))?;
    let sub_append = Request::AppendTuples {
        relation: "rel1".into(),
        tuples: vec![TupleData::new([0.3, -0.8], 0.9)],
    };
    if let Response::Error(e) = coordinator.dispatch_one(sub_append.clone()) {
        return Err(format!("subscribed append failed: {e}"));
    }
    if let Response::Error(e) = reference.handle(sub_append) {
        return Err(format!("local subscribed append failed: {e}"));
    }
    let notification = sub_client
        .wait_notification(Duration::from_secs(10))
        .map_err(|e| format!("notification read failed: {e}"))?
        .ok_or("no notification within 10s of the replicated append")?;
    if notification.id != sub_id || notification.fin.is_some() {
        return Err(format!("unexpected notification {notification:?}"));
    }
    let view = apply_events(&baseline, &notification.events, notification.total)
        .map_err(|e| format!("event replay failed: {e}"))?;
    let Response::Results { rows: fresh, .. } = reference.handle(query()) else {
        return Err("reference engine failed after subscribed append".to_string());
    };
    if view != fresh {
        return Err(format!(
            "replayed subscription view diverged: {view:?} != {fresh:?}"
        ));
    }
    sub_client
        .unsubscribe(sub_id)
        .map_err(|e| format!("unsubscribe failed: {e}"))?;
    manager.quiesce();
    println!("cluster-self-check: standing query notified over TCP and replayed exactly");

    // Observability leg: serve the coordinator's merged metrics on an
    // ephemeral endpoint and scrape it the way a Prometheus (or the CI
    // job) would, then assert the exposition is well-formed and the query
    // work above actually shows up in the series.
    let metrics_coordinator = Arc::clone(&coordinator);
    let render: RenderFn = Arc::new(move || {
        prj_obs::render_prometheus(&prj_engine::obs::from_api_samples(
            &metrics_coordinator.metrics_report().samples,
        ))
    });
    let metrics =
        MetricsServer::bind("127.0.0.1:0", render).map_err(|e| format!("metrics bind: {e}"))?;
    let body = scrape_metrics(metrics.local_addr())?;
    for (series, minimum) in [
        (
            "prj_query_latency_seconds_count{instance=\"coordinator\"}",
            1.0,
        ),
        ("prj_queries_total", 2.0),
        ("prj_cache_misses_total", 1.0),
        ("prj_remote_units_total", 1.0),
        ("prj_relation_depth_total", 1.0),
        ("prj_subscription_notifications_total", 1.0),
        ("prj_subscription_reexecuted_units_total", 1.0),
    ] {
        if metric_total(&body, series) < minimum {
            return Err(format!(
                "metrics exposition: {series} never reached {minimum}:\n{body}"
            ));
        }
    }
    if !body.contains("instance=\"worker0\"") {
        return Err("metrics exposition lacks worker instance series".to_string());
    }
    // The active-subscription gauge must be exposed even when it reads 0
    // (the leg above unsubscribed) — absence would mean the scrape misses
    // the standing-query series entirely.
    if !body.contains("prj_subscriptions_active") {
        return Err("metrics exposition lacks prj_subscriptions_active".to_string());
    }
    println!(
        "cluster-self-check: metrics endpoint exposes {} series lines",
        body.lines().filter(|l| !l.starts_with('#')).count()
    );
    metrics.shutdown();

    // EXPLAIN/ANALYZE leg: profile the distributed query at a point the
    // result cache has never seen, and check the profile's books balance —
    // per-unit depths sum to the reported sumDepths, every unit carries a
    // bound-convergence trajectory, and the analyzed rows are bit-identical
    // to the plain top-K of the same query.
    let analyze_query = QueryRequest::new(vec!["rel0".into(), "rel1".into()], [1.7, 0.6]).k(5);
    let report = match coordinator.dispatch_one(Request::Explain {
        query: analyze_query.clone(),
        analyze: true,
    }) {
        Response::Explain(report) => report,
        other => return Err(format!("explain analyze failed: {other:?}")),
    };
    let analyzed = report
        .analyzed
        .ok_or("explain analyze returned no execution profile")?;
    let unit_sum: u64 = analyzed.units.iter().map(|u| u.depths).sum();
    if unit_sum != analyzed.total_sum_depths {
        return Err(format!(
            "analyze per-unit depths sum to {unit_sum}, profile says {}",
            analyzed.total_sum_depths
        ));
    }
    if analyzed.units.iter().any(|u| u.trajectory.is_empty()) {
        return Err("an analyzed unit has no bound-convergence trajectory".to_string());
    }
    if !analyzed.units.iter().any(|u| u.remote) {
        return Err("cluster analyze profiled no remote units".to_string());
    }
    let plain = match coordinator.dispatch_one(Request::TopK(analyze_query)) {
        Response::Results { rows, .. } => rows,
        other => return Err(format!("plain top-K after analyze failed: {other:?}")),
    };
    if analyzed.rows.len() != plain.len()
        || analyzed
            .rows
            .iter()
            .zip(plain.iter())
            .any(|(a, b)| a.tuples != b.tuples || a.score.to_bits() != b.score.to_bits())
    {
        return Err(format!(
            "analyzed rows diverged from the plain top-K: {:?} != {plain:?}",
            analyzed.rows
        ));
    }
    println!(
        "cluster-self-check: explain analyze profiled {} units ({} depths), rows bit-identical",
        analyzed.units.len(),
        analyzed.total_sum_depths
    );

    // Health leg: the typed verb from the coordinator's vantage, and the
    // same report over the HTTP probe endpoint.
    let health = match coordinator.dispatch_one(Request::Health) {
        Response::Health(health) => health,
        other => return Err(format!("health verb failed: {other:?}")),
    };
    if health.role != "coordinator" || !health.ready || !health.live {
        return Err(format!("unhealthy coordinator report: {health:?}"));
    }
    if health.workers.len() != n || health.workers.iter().any(|w| !w.reachable) {
        return Err(format!("health misreports the worker fleet: {health:?}"));
    }
    if health.replication_lag_micros == 0 {
        return Err("replicated mutations left no replication lag reading".to_string());
    }
    let probe = MetricsServer::bind("127.0.0.1:0", health_render_from(Arc::clone(&coordinator)))
        .map_err(|e| format!("health bind: {e}"))?;
    let health_body = http_get(probe.local_addr(), "/health")?;
    if !health_body.starts_with("ready true") || !health_body.contains("role coordinator") {
        return Err(format!("unexpected health probe body:\n{health_body}"));
    }
    probe.shutdown();
    println!("cluster-self-check: health verb and HTTP probe agree (fleet ready)");

    // Kill the first worker and re-query — at a *fresh* query point, so
    // the answer cannot come out of the result cache and must execute.
    // With replicas the cluster must still answer exactly; without, the
    // only acceptable outcome is a typed error.
    let mut workers = workers;
    drop(workers.remove(0));
    println!("cluster-self-check: killed worker 0");
    let fresh_query =
        || Request::TopK(QueryRequest::new(vec!["rel0".into(), "rel1".into()], [-1.1, 2.4]).k(5));
    match coordinator.dispatch_one(fresh_query()) {
        Response::Results { rows, .. } => {
            let Response::Results { rows: expected, .. } = reference.handle(fresh_query()) else {
                return Err("reference engine failed".to_string());
            };
            if rows != expected {
                return Err("post-kill results diverged from the local engine".to_string());
            }
            if n == 1 {
                return Err("single-worker cluster answered after its worker died".to_string());
            }
            println!("cluster-self-check: post-kill query served exactly via replicas");
        }
        Response::Error(e)
            if matches!(
                e.kind,
                ErrorKind::WorkerUnavailable | ErrorKind::Degraded | ErrorKind::Io
            ) =>
        {
            println!(
                "cluster-self-check: post-kill query failed typed ({})",
                e.kind.code()
            );
        }
        other => return Err(format!("post-kill query: unexpected response {other:?}")),
    }
    println!("cluster-self-check ok");
    Ok(())
}

fn serve(options: &Options) -> Result<(), String> {
    let role = if options.worker {
        "worker"
    } else if options.coordinator {
        "coordinator"
    } else {
        "server"
    };
    let (server, threads, render, health_render) = if options.worker {
        let engine = build_engine(options);
        let threads = engine.threads();
        let render_engine = Arc::clone(&engine);
        let render: RenderFn = Arc::new(move || render_engine.metrics_render());
        let worker = Arc::new(WorkerSession::new(engine));
        let health_render = health_render_from(Arc::clone(&worker));
        (
            Server::bind(&options.addr, worker)
                .map_err(|e| format!("cannot bind {}: {e}", options.addr))?,
            threads,
            render,
            health_render,
        )
    } else if options.coordinator {
        let topology = topology_from(options)?;
        let mut builder = Coordinator::builder(topology)
            .cache_capacity(options.cache)
            .slow_query_threshold(options.slow_query_ms.map(Duration::from_millis))
            .delta_threshold(options.delta_threshold);
        if let Some(threads) = options.threads {
            builder = builder.threads(threads);
        }
        let coordinator = Arc::new(
            builder
                .build()
                .map_err(|e| format!("coordinator bootstrap failed: {e}"))?,
        );
        let threads = coordinator.engine().threads();
        if options.table1 {
            // Preload through the coordinator so the fleet replicates it.
            preload_table1(|request| coordinator.dispatch_one(request))?;
        }
        let render_coordinator = Arc::clone(&coordinator);
        let render: RenderFn = Arc::new(move || {
            prj_obs::render_prometheus(&prj_engine::obs::from_api_samples(
                &render_coordinator.metrics_report().samples,
            ))
        });
        // Standing queries re-evaluate through the coordinator's own engine
        // (cluster backend attached), so they execute distributed.
        let engine = Arc::clone(coordinator.engine());
        let (handler, _manager) =
            with_subscriptions(coordinator, &engine, options.max_subscriptions);
        let health_render = health_render_from(Arc::clone(&handler));
        (
            Server::bind(&options.addr, handler)
                .map_err(|e| format!("cannot bind {}: {e}", options.addr))?,
            threads,
            render,
            health_render,
        )
    } else {
        let session = build_session(options)?;
        let threads = session.engine().threads();
        let engine = Arc::clone(session.engine());
        let render_engine = Arc::clone(&engine);
        let render: RenderFn = Arc::new(move || render_engine.metrics_render());
        let (handler, _manager) = with_subscriptions(session, &engine, options.max_subscriptions);
        let health_render = health_render_from(Arc::clone(&handler));
        (
            Server::bind(&options.addr, handler)
                .map_err(|e| format!("cannot bind {}: {e}", options.addr))?,
            threads,
            render,
            health_render,
        )
    };
    let _metrics = bind_metrics(options.metrics_addr.as_deref(), render)?;
    let _health = bind_health(options.health_addr.as_deref(), health_render)?;
    let addr = server.local_addr();
    println!(
        "prj-serve {role} listening on {addr} (prj/{} line protocol, {} worker threads)",
        prj_api::PROTOCOL_VERSION,
        threads,
    );
    println!(
        "try: printf 'prj/1 stats\\n' | nc {} {}",
        addr.ip(),
        addr.port()
    );
    loop {
        std::thread::park();
    }
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(e) => {
            eprintln!("prj-serve: {e}");
            std::process::exit(2);
        }
    };
    if options.self_check {
        if let Err(e) = self_check(&options) {
            eprintln!("prj-serve self-check FAILED: {e}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(n) = options.cluster_self_check {
        if let Err(e) = cluster_self_check(&options, n) {
            eprintln!("prj-serve cluster-self-check FAILED: {e}");
            std::process::exit(1);
        }
        return;
    }
    if let Err(e) = serve(&options) {
        eprintln!("prj-serve: {e}");
        std::process::exit(1);
    }
}
