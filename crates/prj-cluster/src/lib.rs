//! # prj-cluster — distributed shard execution for the ProxRJ engine
//!
//! PR 3 sharded the catalog and partitioned execution *inside one
//! process*; this crate distributes those shards **across worker
//! processes** behind the same client-facing `Request` surface. The paper's
//! ProxRJ operator certifies its top-K from bound-aware merges of
//! independently executed units, which is precisely the property that makes
//! scatter-gather across processes *exact* rather than approximate: each
//! worker returns `(certified top-K, final bound t_j)` for its driving
//! shards, and the coordinator's merged bound `max_j t_j` carries the
//! paper's stopping condition over verbatim. The distributed differential
//! harness asserts the consequence — cluster answers are **bit-identical**
//! (ids, score bits, ordering, certified stop) to the single-process
//! sharded engine and the naive oracle.
//!
//! ## The pieces
//!
//! * [`topology`] — [`ClusterTopology`] (worker list + shard count +
//!   replication factor, parsable from a file) compiled into a
//!   [`ShardRouter`] with a *generation* the engine folds into every cache
//!   key.
//! * [`pool`] — [`WorkerPool`]: per-worker stacks of persistent,
//!   `prj/2`-negotiated TCP connections with connect retry/backoff and
//!   read/write timeouts.
//! * [`coordinator`] — [`Coordinator`]: the authoritative catalog.
//!   Mutations apply locally and replicate to every worker **before**
//!   acking; queries fan per-driving-shard units over the pool (with
//!   replica failover and a re-snapshot retry on stale epochs) and
//!   recombine through `prj-engine`'s bound-aware merges.
//! * [`worker`] — [`WorkerSession`]: a full engine replica serving the
//!   ordinary protocol plus the cluster-internal `prj/2` verbs
//!   (`ExecuteUnit`, `ShardAssignment`, `WorkerStats`), with the epoch
//!   check that refuses to compute over data the coordinator did not
//!   snapshot.
//!
//! The `prj-serve` binary (this crate) serves all three roles:
//!
//! ```text
//! prj-serve --worker --shards 4 --addr 127.0.0.1:7001
//! prj-serve --worker --shards 4 --addr 127.0.0.1:7002
//! prj-serve --coordinator --shards 4 --replicas 2 \
//!           --workers 127.0.0.1:7001,127.0.0.1:7002
//! ```
//!
//! Failure semantics are typed, never silent: a dead worker's units fail
//! over to replicas or surface `worker-unavailable`; a replica at the
//! wrong epochs answers `stale-epoch` and is retried after a fresh
//! snapshot; replication failures ack as `degraded`. A truncated result
//! set is structurally impossible — units either return their certified
//! top-K or an error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod pool;
pub mod process;
pub mod topology;
pub mod worker;

pub use coordinator::{Coordinator, CoordinatorBuilder};
pub use pool::WorkerPool;
pub use process::{spawn_worker_process, spawn_worker_process_with_delta, SpawnedWorker};
pub use topology::{ClusterTopology, ShardRouter, TopologyError};
pub use worker::WorkerSession;
