//! The worker side of the cluster: a full engine replica that executes
//! single driving-shard units on demand.
//!
//! A [`WorkerSession`] wraps a plain [`Session`] (so workers serve every
//! ordinary `prj/1`/`prj/2` request — that is how the coordinator
//! replicates catalog mutations to them) and adds the cluster-internal
//! verbs:
//!
//! * [`Request::ExecuteUnit`] — replay one unit, planned and pinned by the
//!   coordinator, against the replicated catalog. The request carries the
//!   coordinator snapshot's epoch vectors; a replica that disagrees
//!   answers [`prj_api::ErrorKind::StaleEpoch`] instead of silently
//!   computing over different data — the check that makes distributed
//!   answers bit-identical to local ones even while mutations race.
//! * [`Request::ShardAssignment`] — installs the shard set this worker
//!   owns (diagnostics; routing is coordinator-side).
//! * [`Request::WorkerStats`] — work counters for the fleet dashboard.

use prj_api::response::TrajectorySample;
use prj_api::{
    ApiError, ErrorKind, Request, Response, SpanRecord, UnitMember, UnitOutcome, UnitRequest,
    UnitRow,
};
use prj_core::RankJoinResult;
use prj_engine::{Dispatch, Engine, QuerySpec, RelationId, RequestHandler, Session};
use prj_geometry::Vector;
use prj_obs::{now_micros, TraceId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Per-driving-shard work totals, reported as the `WorkerReport` lanes the
/// coordinator folds into its cluster-wide [`prj_api::StatsReport`].
#[derive(Clone, Copy, Default)]
struct Lane {
    units: u64,
    depths: u64,
    micros: u64,
}

/// A cluster worker's request handler; see the module docs.
pub struct WorkerSession {
    session: Session,
    engine: Arc<Engine>,
    assignment: Mutex<(u64, Vec<usize>)>,
    units: AtomicU64,
    depths: AtomicU64,
    /// Indexed by driving shard; grown on first unit for a shard. Units
    /// are the slow part — this lock is uncontended relative to them.
    lanes: Mutex<Vec<Lane>>,
}

impl WorkerSession {
    /// Wraps `engine` as a cluster worker. The engine's shard count must
    /// equal the coordinator's (the coordinator verifies this at connect
    /// time through [`Request::Stats`]).
    pub fn new(engine: Arc<Engine>) -> WorkerSession {
        WorkerSession {
            session: Session::new(Arc::clone(&engine)),
            engine,
            assignment: Mutex::new((0, Vec::new())),
            units: AtomicU64::new(0),
            depths: AtomicU64::new(0),
            lanes: Mutex::new(Vec::new()),
        }
    }

    /// The engine backing this worker.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Units executed since boot.
    pub fn units_served(&self) -> u64 {
        self.units.load(Ordering::Relaxed)
    }

    fn resolve(&self, relation: &prj_api::RelationRef) -> Result<RelationId, ApiError> {
        match relation {
            prj_api::RelationRef::Id(id) => Ok(RelationId::from_index(*id)),
            prj_api::RelationRef::Name(name) => {
                self.engine.catalog().lookup(name).ok_or_else(|| {
                    ApiError::new(
                        ErrorKind::UnknownRelation,
                        format!("no relation named {name:?} in this worker's replica"),
                    )
                })
            }
        }
    }

    fn execute_unit(&self, unit: UnitRequest) -> Result<Response, ApiError> {
        let started = now_micros();
        // Mirror the unit into this worker's own trace ring under the
        // coordinator's trace id, so a worker-side `--metrics-addr` /
        // slow-query dump shows the same trace the coordinator stitches.
        let mut local_span = unit
            .trace
            .and_then(|t| TraceId::from_u64(t.trace))
            .filter(|_| self.engine.recorder().enabled())
            .map(|trace| {
                let mut span = self.engine.recorder().span(trace, "execute_unit");
                span.attr("shard", unit.shard);
                span.attr("drive", unit.drive);
                span
            });
        let relations = unit
            .relations
            .iter()
            .map(|r| self.resolve(r))
            .collect::<Result<Vec<_>, _>>()?;
        let scoring = self
            .engine
            .scoring_registry()
            .resolve(&unit.scoring.name, &unit.scoring.params)
            .map_err(ApiError::from)?;
        let spec = QuerySpec {
            relations,
            query: Vector::new(unit.query),
            k: unit.k,
            scoring,
            selector: Some(unit.scoring),
            access_kind: unit.access,
            algorithm: Some(unit.algorithm),
            convergence: unit.convergence,
            trace: None,
        };
        let run_started = now_micros();
        let (result, elapsed) = self
            .engine
            .execute_unit(
                &spec,
                unit.drive,
                unit.shard,
                unit.algorithm,
                unit.dominance_period,
                Some(&unit.epochs),
            )
            .map_err(ApiError::from)?;
        let finished = now_micros();
        let depths = result.sum_depths() as u64;
        self.units.fetch_add(1, Ordering::Relaxed);
        self.depths.fetch_add(depths, Ordering::Relaxed);
        {
            let mut lanes = self.lanes.lock().expect("lane lock");
            if lanes.len() <= unit.shard {
                lanes.resize(unit.shard + 1, Lane::default());
            }
            let lane = &mut lanes[unit.shard];
            lane.units += 1;
            lane.depths += depths;
            lane.micros += elapsed.as_micros() as u64;
        }
        if let Some(span) = local_span.as_mut() {
            span.attr("sum_depths", depths);
        }
        // Ship the unit's spans only when the coordinator asked to trace
        // it. Ids are batch-local (1 = the unit, 2 = the operator run);
        // the coordinator's import re-identifies and re-bases them under
        // its own `unit` span.
        let spans = if unit.trace.is_some() {
            vec![
                SpanRecord {
                    name: "execute_unit".to_string(),
                    id: 1,
                    parent: 0,
                    start_micros: started,
                    duration_micros: finished.saturating_sub(started),
                },
                SpanRecord {
                    name: "run".to_string(),
                    id: 2,
                    parent: 1,
                    start_micros: run_started,
                    duration_micros: elapsed.as_micros() as u64,
                },
            ]
        } else {
            Vec::new()
        };
        Ok(Response::Unit(to_outcome(&result, elapsed, spans)))
    }

    fn handle_cluster(&self, request: Request) -> Response {
        let outcome = match request {
            Request::ExecuteUnit(unit) => self.execute_unit(unit),
            Request::ShardAssignment { generation, shards } => {
                let mut assignment = self.assignment.lock().expect("assignment lock");
                *assignment = (generation, shards.clone());
                Ok(Response::AssignmentAck { generation, shards })
            }
            Request::WorkerStats => {
                let (generation, shards) = self.assignment.lock().expect("assignment lock").clone();
                let lanes = self.lanes.lock().expect("lane lock").clone();
                Ok(Response::WorkerReport {
                    generation,
                    shards,
                    units: self.units.load(Ordering::Relaxed),
                    depths: self.depths.load(Ordering::Relaxed),
                    relations: self.engine.catalog().live_len(),
                    lane_units: lanes.iter().map(|l| l.units).collect(),
                    lane_depths: lanes.iter().map(|l| l.depths).collect(),
                    lane_micros: lanes.iter().map(|l| l.micros).collect(),
                })
            }
            Request::Health => {
                let mut health = self.session.base_health();
                health.role = "worker".to_string();
                Ok(Response::Health(health))
            }
            other => return self.session.handle(other),
        };
        outcome.unwrap_or_else(Response::Error)
    }
}

impl RequestHandler for WorkerSession {
    fn dispatch_request(&self, request: Request) -> Dispatch {
        match request {
            Request::ExecuteUnit(_)
            | Request::ShardAssignment { .. }
            | Request::WorkerStats
            | Request::Health => Dispatch::One(self.handle_cluster(request)),
            other => self.session.dispatch(other),
        }
    }
}

/// Serialises one unit result for the wire, bit-exactly: combination
/// scores, member tuple identities *and contents* (so the coordinator
/// rehydrates without re-reading its catalog), the final bound, the
/// accounting the bound-aware merge aggregates, and the worker's finished
/// `spans` for coordinator-side trace stitching.
pub fn to_outcome(
    result: &RankJoinResult,
    elapsed: Duration,
    spans: Vec<SpanRecord>,
) -> UnitOutcome {
    UnitOutcome {
        rows: result
            .combinations
            .iter()
            .map(|combo| UnitRow {
                score: combo.score,
                members: combo
                    .tuples
                    .iter()
                    .map(|t| UnitMember {
                        relation: t.id.relation,
                        index: t.id.index,
                        score: t.score,
                        coords: t.vector.as_slice().to_vec(),
                    })
                    .collect(),
            })
            .collect(),
        final_bound: result.metrics.final_bound,
        depths: result.stats.depths().iter().map(|&d| d as u64).collect(),
        bound_updates: result.metrics.bound_updates as u64,
        combinations_formed: result.metrics.combinations_formed as u64,
        micros: elapsed.as_micros() as u64,
        capped: result.metrics.hit_access_cap,
        spans,
        trajectory: result
            .trajectory()
            .iter()
            .map(|p| TrajectorySample {
                depth: p.depth,
                kth_score: p.kth_score,
                bound: p.bound,
            })
            .collect(),
    }
}
