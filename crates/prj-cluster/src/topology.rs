//! Cluster topology: which workers exist and which driving shards each one
//! executes.
//!
//! A [`ClusterTopology`] is declarative — a worker address list plus the
//! shard count and replication factor — and compiles into a [`ShardRouter`]:
//! for every driving shard, an ordered preference list of workers (primary
//! first, then replicas). Placement is round-robin (`shard j` → workers
//! `j, j+1, … mod W`), which spreads primaries evenly and gives every shard
//! `replicas` distinct owners whenever the fleet is large enough.
//!
//! Every compiled router carries a **generation** number. The engine folds
//! it into all cache keys, so results computed under an older layout become
//! structurally unreachable after a topology change — layouts never change
//! *what* is computed, but a generation that survived a failover is exactly
//! when extra caution is cheapest.
//!
//! ## Topology files
//!
//! [`ClusterTopology::from_file`] reads the format served by
//! `prj-serve --topology`:
//!
//! ```text
//! # one directive per line; '#' starts a comment
//! shards 4
//! replicas 2
//! worker 127.0.0.1:7001
//! worker 127.0.0.1:7002
//! ```

use std::fmt;

/// A topology that cannot be used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyError(pub String);

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid topology: {}", self.0)
    }
}

impl std::error::Error for TopologyError {}

/// The declarative description of a cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterTopology {
    workers: Vec<String>,
    shards: usize,
    replicas: usize,
    generation: u64,
}

impl ClusterTopology {
    /// A topology over `workers` (addresses), `shards` spatial shards per
    /// relation and `replicas` owners per driving shard (clamped to the
    /// fleet size; at least 1).
    ///
    /// # Errors
    /// Empty worker lists, zero shard counts and blank addresses are
    /// rejected.
    pub fn new(
        workers: Vec<String>,
        shards: usize,
        replicas: usize,
    ) -> Result<ClusterTopology, TopologyError> {
        if workers.is_empty() {
            return Err(TopologyError("a cluster needs at least one worker".into()));
        }
        if shards == 0 {
            return Err(TopologyError("shard count must be at least 1".into()));
        }
        if let Some(blank) = workers.iter().find(|w| w.trim().is_empty()) {
            return Err(TopologyError(format!("worker address {blank:?} is blank")));
        }
        let replicas = replicas.clamp(1, workers.len());
        Ok(ClusterTopology {
            workers,
            shards,
            replicas,
            generation: 1,
        })
    }

    /// Parses the `prj-serve --topology` file format (see module docs).
    ///
    /// # Errors
    /// Unknown directives, unparsable numbers and the [`Self::new`]
    /// validations.
    pub fn from_str_spec(spec: &str) -> Result<ClusterTopology, TopologyError> {
        let mut workers = Vec::new();
        let mut shards = 1usize;
        let mut replicas = 1usize;
        for (lineno, raw) in spec.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (directive, value) = line
                .split_once(char::is_whitespace)
                .map(|(d, v)| (d, v.trim()))
                .ok_or_else(|| {
                    TopologyError(format!("line {}: {line:?} has no value", lineno + 1))
                })?;
            match directive {
                "worker" => workers.push(value.to_string()),
                "shards" => {
                    shards = value.parse().map_err(|_| {
                        TopologyError(format!("line {}: bad shard count {value:?}", lineno + 1))
                    })?
                }
                "replicas" => {
                    replicas = value.parse().map_err(|_| {
                        TopologyError(format!("line {}: bad replica count {value:?}", lineno + 1))
                    })?
                }
                other => {
                    return Err(TopologyError(format!(
                        "line {}: unknown directive {other:?}",
                        lineno + 1
                    )))
                }
            }
        }
        ClusterTopology::new(workers, shards, replicas)
    }

    /// Reads a topology file (see module docs for the format).
    pub fn from_file(path: &std::path::Path) -> Result<ClusterTopology, TopologyError> {
        let spec = std::fs::read_to_string(path)
            .map_err(|e| TopologyError(format!("cannot read {}: {e}", path.display())))?;
        ClusterTopology::from_str_spec(&spec)
    }

    /// Stamps an explicit generation (e.g. when replacing a failed layout);
    /// defaults to 1.
    pub fn with_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }

    /// The worker addresses, in placement order.
    pub fn workers(&self) -> &[String] {
        &self.workers
    }

    /// Spatial shards per relation.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Owners per driving shard.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The topology generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Compiles the declarative topology into per-shard owner lists.
    pub fn router(&self) -> ShardRouter {
        let owners = (0..self.shards)
            .map(|shard| {
                (0..self.replicas)
                    .map(|r| (shard + r) % self.workers.len())
                    .collect()
            })
            .collect();
        ShardRouter {
            owners,
            generation: self.generation,
        }
    }
}

/// The compiled routing table: driving shard → ordered worker preference
/// list (primary first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    owners: Vec<Vec<usize>>,
    generation: u64,
}

impl ShardRouter {
    /// The workers owning `shard`, primary first. Shards beyond the
    /// compiled range wrap around (defensive: the catalog's shard count is
    /// validated against the topology at connect time).
    pub fn owners(&self, shard: usize) -> &[usize] {
        &self.owners[shard % self.owners.len()]
    }

    /// Number of routed shards.
    pub fn shards(&self) -> usize {
        self.owners.len()
    }

    /// The generation this routing table was compiled at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The shards a given worker owns (as primary or replica), in order —
    /// what the coordinator pushes to each worker as its
    /// [`prj_api::Request::ShardAssignment`].
    pub fn shards_of(&self, worker: usize) -> Vec<usize> {
        self.owners
            .iter()
            .enumerate()
            .filter(|(_, owners)| owners.contains(&worker))
            .map(|(shard, _)| shard)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect()
    }

    #[test]
    fn round_robin_placement_with_replicas() {
        let topology = ClusterTopology::new(addrs(3), 4, 2).unwrap();
        let router = topology.router();
        assert_eq!(router.shards(), 4);
        assert_eq!(router.generation(), 1);
        assert_eq!(router.owners(0), &[0, 1]);
        assert_eq!(router.owners(1), &[1, 2]);
        assert_eq!(router.owners(2), &[2, 0]);
        assert_eq!(router.owners(3), &[0, 1]);
        assert_eq!(router.shards_of(0), vec![0, 2, 3]);
        assert_eq!(router.shards_of(2), vec![1, 2]);
    }

    #[test]
    fn replicas_clamp_to_the_fleet() {
        let topology = ClusterTopology::new(addrs(2), 3, 9).unwrap();
        assert_eq!(topology.replicas(), 2);
        let router = topology.router();
        assert_eq!(router.owners(0), &[0, 1]);
        // Zero replicas still means one owner.
        let single = ClusterTopology::new(addrs(2), 3, 0).unwrap();
        assert_eq!(single.replicas(), 1);
    }

    #[test]
    fn bad_topologies_are_rejected() {
        assert!(ClusterTopology::new(Vec::new(), 4, 1).is_err());
        assert!(ClusterTopology::new(addrs(1), 0, 1).is_err());
        assert!(ClusterTopology::new(vec!["  ".into()], 4, 1).is_err());
    }

    #[test]
    fn file_format_round_trips() {
        let spec = "\
            # demo cluster\n\
            shards 4\n\
            replicas 2   # cover worker loss\n\
            worker 127.0.0.1:7001\n\
            worker 127.0.0.1:7002\n\
            \n\
            worker 127.0.0.1:7003\n";
        let topology = ClusterTopology::from_str_spec(spec).unwrap();
        assert_eq!(topology.shards(), 4);
        assert_eq!(topology.replicas(), 2);
        assert_eq!(topology.workers().len(), 3);
        assert!(ClusterTopology::from_str_spec("workers 1").is_err());
        assert!(ClusterTopology::from_str_spec("shards x\nworker a:1").is_err());
        assert!(ClusterTopology::from_str_spec("worker").is_err());
    }
}
