//! Spawning `prj-serve --worker` child processes — shared by the binary's
//! `--cluster-self-check` and the distributed test harness, so the
//! announce-line protocol and the stdout-drain strategy live in one place.

use std::io::BufRead;
use std::path::Path;
use std::process::{Child, Command, Stdio};

/// A spawned worker child process. Killed (and reaped) on drop.
pub struct SpawnedWorker {
    child: Child,
    addr: String,
}

impl SpawnedWorker {
    /// The loopback address the worker announced.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl Drop for SpawnedWorker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `exe --worker --addr 127.0.0.1:0 --shards N --threads T` and
/// waits for its "listening on ADDR" announcement. The rest of the child's
/// stdout is drained in a background thread so the child can never block
/// on a full pipe; the child is killed and reaped if it exits (or goes
/// silent) before announcing.
pub fn spawn_worker_process(
    exe: &Path,
    shards: usize,
    threads: usize,
) -> Result<SpawnedWorker, String> {
    spawn_worker_process_with_delta(exe, shards, threads, 0)
}

/// [`spawn_worker_process`] with an explicit `--delta-threshold` (0 =
/// immediate COW rebuilds). The distributed tests skew this per worker to
/// prove compaction schedules are unobservable across a fleet.
pub fn spawn_worker_process_with_delta(
    exe: &Path,
    shards: usize,
    threads: usize,
    delta_threshold: usize,
) -> Result<SpawnedWorker, String> {
    let mut child = Command::new(exe)
        .args([
            "--worker",
            "--addr",
            "127.0.0.1:0",
            "--shards",
            &shards.to_string(),
            "--threads",
            &threads.to_string(),
            "--delta-threshold",
            &delta_threshold.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn worker {}: {e}", exe.display()))?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| "no worker stdout".to_string())?;
    let mut lines = std::io::BufReader::new(stdout).lines();
    let mut announced = None;
    for line in lines.by_ref().map_while(Result::ok) {
        if let Some(rest) = line.split("listening on ").nth(1) {
            announced = rest.split_whitespace().next().map(str::to_string);
            break;
        }
    }
    let Some(addr) = announced.filter(|a| !a.is_empty()) else {
        let _ = child.kill();
        let _ = child.wait();
        return Err("worker exited before announcing its address".to_string());
    };
    std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
    Ok(SpawnedWorker { child, addr })
}
