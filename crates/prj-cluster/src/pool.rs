//! Pooled persistent connections to the cluster's workers.
//!
//! The coordinator fans every sharded query out to its workers, so dialing
//! per unit would put a TCP + negotiation handshake on the hot path. The
//! [`WorkerPool`] keeps per-worker stacks of idle, already-negotiated
//! `prj/2` [`ApiClient`]s: [`WorkerPool::with_conn`] pops one (dialing —
//! with the configured timeouts, retries and backoff — only when the stack
//! is empty), runs the caller's exchange, and returns the connection to the
//! pool. Concurrent units to the same worker simply dial additional
//! connections; the stack grows to the observed parallelism and no further.
//!
//! Failure policy: transport-level failures (I/O errors, unparsable
//! responses) poison a connection mid-protocol, so it is dropped rather
//! than returned; *typed* server-side errors arrive on a healthy stream and
//! keep the connection pooled.

use prj_api::{ApiClient, ApiError, ClientConfig, ErrorKind};
use std::sync::Mutex;

struct WorkerSlot {
    addr: String,
    idle: Mutex<Vec<ApiClient>>,
}

/// Per-worker pools of persistent, `prj/2`-negotiated connections.
pub struct WorkerPool {
    slots: Vec<WorkerSlot>,
    config: ClientConfig,
}

impl WorkerPool {
    /// A pool over `addrs`, dialing with `config`.
    pub fn new(addrs: Vec<String>, config: ClientConfig) -> WorkerPool {
        WorkerPool {
            slots: addrs
                .into_iter()
                .map(|addr| WorkerSlot {
                    addr,
                    idle: Mutex::new(Vec::new()),
                })
                .collect(),
            config,
        }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the pool has no workers at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The address of worker `w`.
    pub fn addr(&self, w: usize) -> &str {
        &self.slots[w].addr
    }

    /// Idle pooled connections to worker `w` (a health-report signal: the
    /// stack's depth tracks the observed fan-out parallelism).
    pub fn idle_len(&self, w: usize) -> usize {
        self.slots[w].idle.lock().expect("pool lock").len()
    }

    fn dial(&self, w: usize) -> Result<ApiClient, ApiError> {
        let mut client =
            ApiClient::connect_with(&self.slots[w].addr, &self.config).map_err(ApiError::io)?;
        let version = client.negotiate()?;
        if version < 2 {
            return Err(ApiError::new(
                ErrorKind::Version,
                format!(
                    "worker {} negotiated prj/{version}; cluster execution needs prj/2",
                    self.slots[w].addr
                ),
            ));
        }
        Ok(client)
    }

    /// Runs one exchange on a pooled connection to worker `w`.
    pub fn with_conn<T>(
        &self,
        w: usize,
        exchange: impl FnOnce(&mut ApiClient) -> Result<T, ApiError>,
    ) -> Result<T, ApiError> {
        let slot = &self.slots[w];
        let pooled = slot.idle.lock().expect("pool lock").pop();
        let mut client = match pooled {
            Some(client) => client,
            None => self.dial(w)?,
        };
        match exchange(&mut client) {
            Ok(value) => {
                slot.idle.lock().expect("pool lock").push(client);
                Ok(value)
            }
            Err(e) => {
                // Typed server-side answers leave the stream healthy; only
                // transport-level failures poison the framing.
                if !matches!(e.kind, ErrorKind::Io | ErrorKind::Malformed) {
                    slot.idle.lock().expect("pool lock").push(client);
                }
                Err(e)
            }
        }
    }

    /// Drops every idle connection (e.g. after a topology change).
    pub fn disconnect_all(&self) {
        for slot in &self.slots {
            slot.idle.lock().expect("pool lock").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prj_api::Request;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    /// A fake prj/2 worker answering hello and echoing stats errors; counts
    /// accepted connections so the test can observe pooling.
    fn fake_worker(
        conns: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            // Serve exactly two connections, then quit.
            for stream in listener.incoming().take(2) {
                let Ok(stream) = stream else { break };
                conns.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let mut writer = stream.try_clone().unwrap();
                let reader = BufReader::new(stream);
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    let response = if line.contains(" hello ") {
                        "prj/2 ok hello ver=2\n".to_string()
                    } else {
                        "prj/2 err kind=unsupported msg=test worker\n".to_string()
                    };
                    if writer.write_all(response.as_bytes()).is_err() {
                        break;
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn connections_are_reused_and_typed_errors_keep_them_pooled() {
        let conns = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let (addr, handle) = fake_worker(std::sync::Arc::clone(&conns));
        let pool = WorkerPool::new(vec![addr.to_string()], ClientConfig::default());
        assert_eq!(pool.len(), 1);
        for _ in 0..3 {
            let err = pool
                .with_conn(0, |c| c.call(&Request::Stats))
                .expect_err("fake worker answers stats with a typed error");
            assert_eq!(err.kind, ErrorKind::Unsupported);
        }
        // Three exchanges, one dial: the connection was pooled across them.
        assert_eq!(conns.load(std::sync::atomic::Ordering::SeqCst), 1);
        drop(pool);
        drop(handle); // listener thread exits with the test process
    }

    #[test]
    fn dialing_a_dead_worker_is_a_typed_io_error() {
        // Bind-then-drop yields an address nothing listens on.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let config = ClientConfig {
            connect_retries: 1,
            retry_backoff: std::time::Duration::from_millis(5),
            ..ClientConfig::default()
        };
        let pool = WorkerPool::new(vec![addr.to_string()], config);
        let err = pool
            .with_conn(0, |c| c.call(&Request::Stats))
            .expect_err("nothing listens there");
        assert_eq!(err.kind, ErrorKind::Io);
    }
}
