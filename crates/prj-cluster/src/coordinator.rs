//! The coordinator: the process clients talk to, with shard execution
//! fanned out to worker processes.
//!
//! A [`Coordinator`] owns the authoritative catalog (a normal sharded
//! [`Engine`]) and installs a [`ClusterBackend`] into it, so the engine's
//! executor ships per-driving-shard units over the [`WorkerPool`]'s
//! persistent `prj/2` connections instead of running them locally. Partial
//! results recombine through the engine's existing bound-aware merge
//! machinery, which is what makes distributed answers **bit-identical** to
//! single-process ones — the paper's stopping condition survives the merge
//! verbatim, so the differential harness can assert equality down to the
//! score bits.
//!
//! ## Failure matrix
//!
//! | failure | behaviour |
//! |---|---|
//! | worker unreachable / dies mid-unit | the unit retries on the shard's replicas in preference order; when none is left, the query fails with a typed `worker-unavailable` error — never a silently truncated result |
//! | replica at the wrong epochs | the worker answers `stale-epoch`; other replicas are tried, and the coordinator re-snapshots and retries the whole query once before surfacing the error |
//! | worker fails during mutation replication | the mutation is acked only after *every* worker applied it; a failure yields a typed `degraded` response and the lagging worker keeps answering `stale-epoch` (exactness is preserved; capacity is degraded until the worker is replaced) |
//! | topology change | bumps the generation, which is folded into every cache key: entries computed under the old layout become unreachable |

use crate::pool::WorkerPool;
use crate::topology::{ClusterTopology, ShardRouter};
use prj_api::{
    ApiError, ClientConfig, ErrorKind, MetricsReport, Request, Response, TraceContext, UnitOutcome,
    UnitRequest,
};
use prj_core::{RankJoinResult, RunMetrics, ScoredCombination};
use prj_engine::{
    obs, Dispatch, Engine, EngineBuilder, EngineError, RemoteUnitBackend, RemoteUnitCall,
    RequestHandler, Session,
};
use prj_geometry::Vector;
use prj_obs::{now_micros, Counter, Recorder};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Builder for a [`Coordinator`].
pub struct CoordinatorBuilder {
    topology: ClusterTopology,
    threads: Option<usize>,
    cache_capacity: usize,
    unit_cache_capacity: usize,
    client: ClientConfig,
    slow_query_threshold: Option<Duration>,
    delta_threshold: usize,
}

impl CoordinatorBuilder {
    /// Engine worker threads (default: available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Whole-query result-cache capacity (default 1024).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Per-shard unit-cache capacity (default 4096).
    pub fn unit_cache_capacity(mut self, capacity: usize) -> Self {
        self.unit_cache_capacity = capacity;
        self
    }

    /// Worker-connection config (timeouts, retries, backoff). The default
    /// bounds every read and write at 30 s so one hung worker cannot wedge
    /// a query forever.
    pub fn client_config(mut self, config: ClientConfig) -> Self {
        self.client = config;
        self
    }

    /// Queries slower than `threshold` dump their stitched trace to stderr
    /// (default: disabled).
    pub fn slow_query_threshold(mut self, threshold: Option<Duration>) -> Self {
        self.slow_query_threshold = threshold;
        self
    }

    /// Delta-shard ingest threshold for the coordinator's *local* catalog
    /// (default 0 = immediate COW rebuilds). Replication is unaffected:
    /// workers fold their own deltas on their own schedule, and the epoch
    /// vectors stay equivalent either way because delta appends bump epochs
    /// exactly like rebuild appends.
    pub fn delta_threshold(mut self, threshold: usize) -> Self {
        self.delta_threshold = threshold;
        self
    }

    /// Builds the coordinator and verifies the fleet: every worker must be
    /// reachable, speak `prj/2`, partition into the same shard count, and
    /// start with an empty catalog (replication replays through this
    /// coordinator only). Each worker is then told its shard assignment.
    ///
    /// # Errors
    /// A typed [`ApiError`] naming the offending worker.
    pub fn build(self) -> Result<Coordinator, ApiError> {
        let mut engine = EngineBuilder::default()
            .cache_capacity(self.cache_capacity)
            .unit_cache_capacity(self.unit_cache_capacity)
            .slow_query_threshold(self.slow_query_threshold)
            .delta_threshold(self.delta_threshold)
            .shards(self.topology.shards());
        if let Some(threads) = self.threads {
            engine = engine.threads(threads);
        }
        let engine = Arc::new(engine.build());
        let session = Session::new(Arc::clone(&engine));
        let pool = Arc::new(WorkerPool::new(
            self.topology.workers().to_vec(),
            self.client,
        ));
        let router = Arc::new(self.topology.router());
        let coordinator = Coordinator {
            engine: Arc::clone(&engine),
            session,
            pool: Arc::clone(&pool),
            router: Arc::clone(&router),
            mutations: Mutex::new(()),
            replication_lag_micros: AtomicU64::new(0),
        };
        coordinator.verify_workers()?;
        let registry = engine.obs().registry();
        engine.set_remote_backend(Arc::new(ClusterBackend {
            pool,
            router,
            recorder: Arc::clone(engine.recorder()),
            remote_units: registry.counter("prj_remote_units_total", &[]),
            failovers: registry.counter("prj_failovers_total", &[]),
        }));
        Ok(coordinator)
    }
}

/// The coordinator process's request handler; see the module docs.
pub struct Coordinator {
    engine: Arc<Engine>,
    session: Session,
    pool: Arc<WorkerPool>,
    router: Arc<ShardRouter>,
    /// Serialises mutations so local-apply + fleet-replication is atomic
    /// with respect to other mutations (queries are never blocked here).
    mutations: Mutex<()>,
    /// Wall time the last mutation spent waiting for fleet acks — the
    /// health model's replication-lag signal (µs; 0 before any mutation).
    replication_lag_micros: AtomicU64,
}

impl Coordinator {
    /// A builder over `topology`.
    pub fn builder(topology: ClusterTopology) -> CoordinatorBuilder {
        CoordinatorBuilder {
            topology,
            threads: None,
            cache_capacity: 1024,
            unit_cache_capacity: 4096,
            client: ClientConfig::with_timeouts(Duration::from_secs(30)),
            slow_query_threshold: None,
            delta_threshold: 0,
        }
    }

    /// The engine owning the authoritative catalog.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The compiled shard routing table.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Routes one request to a single response, draining streams — the
    /// coordinator-side analogue of [`Session::handle`] for in-process
    /// embedders and self-checks.
    pub fn dispatch_one(&self, request: Request) -> Response {
        match self.dispatch_request(request) {
            Dispatch::One(response) => response,
            Dispatch::Stream(mut stream) => {
                let mut rows = Vec::new();
                while let Some(row) = stream.next_row() {
                    rows.push(row);
                }
                if let Some(error) = stream.error() {
                    return Response::Error(error);
                }
                let algorithm = stream.algorithm().to_string();
                Response::Results {
                    rows,
                    from_cache: stream.from_cache(),
                    algorithm,
                }
            }
            // A bare coordinator has no subscription front-end (prj-serve
            // wraps it in `Subscribing`); like `Session::handle`, return
            // the ack and let the dropped feed self-unsubscribe.
            Dispatch::Subscribed { ack, .. } => ack,
        }
    }

    fn verify_workers(&self) -> Result<(), ApiError> {
        for w in 0..self.pool.len() {
            let report = self
                .pool
                .with_conn(w, |c| c.stats())
                .map_err(|e| at_worker(self.pool.addr(w), e))?;
            if report.shards != self.router.shards() {
                return Err(ApiError::new(
                    ErrorKind::Degraded,
                    format!(
                        "worker {} partitions into {} shards, topology says {}; \
                         start it with --shards {}",
                        self.pool.addr(w),
                        report.shards,
                        self.router.shards(),
                        self.router.shards(),
                    ),
                ));
            }
            if report.relations != 0 {
                return Err(ApiError::new(
                    ErrorKind::Degraded,
                    format!(
                        "worker {} already holds {} relations; workers must start \
                         empty (their catalogs replicate through this coordinator)",
                        self.pool.addr(w),
                        report.relations,
                    ),
                ));
            }
            let assignment = Request::ShardAssignment {
                generation: self.router.generation(),
                shards: self.router.shards_of(w),
            };
            self.pool
                .with_conn(w, |c| c.call(&assignment))
                .map_err(|e| at_worker(self.pool.addr(w), e))?;
        }
        Ok(())
    }

    /// Applies a catalog mutation locally, then replicates it to **every**
    /// worker before acking — full replication is what lets any worker
    /// execute any unit (driving shards need their slice, non-driving
    /// relations are read whole). Replication failures come back as typed
    /// `degraded` errors; the lagging worker's epoch checks keep exactness
    /// intact until the fleet is repaired.
    fn mutate(&self, request: Request) -> Response {
        let _serialised = self.mutations.lock().expect("mutation lock");
        let local = self.session.handle(request.clone());
        if matches!(local, Response::Error(_)) {
            return local;
        }
        // Replicate to every worker *in parallel*: the mutation mutex is
        // held for the slowest worker's round-trip, not the sum of all of
        // them — one hung worker costs its timeout once, fleet-wide.
        let replication_started = Instant::now();
        let outcomes: Vec<(usize, Result<Response, ApiError>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.pool.len())
                .map(|w| {
                    let request = &request;
                    scope.spawn(move || (w, self.pool.with_conn(w, |c| c.call(request))))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("replication thread"))
                .collect()
        });
        // The slowest ack bounds the lag (the scope joins every worker).
        self.replication_lag_micros.store(
            replication_started.elapsed().as_micros() as u64,
            Ordering::Relaxed,
        );
        for (w, remote) in outcomes {
            let verified = match remote {
                Err(e) => Err(e),
                Ok(remote) => {
                    if mutation_matches(&local, &remote) {
                        Ok(())
                    } else {
                        Err(ApiError::new(
                            ErrorKind::Degraded,
                            format!(
                                "replica diverged: coordinator answered {local:?}, \
                                 worker answered {remote:?}"
                            ),
                        ))
                    }
                }
            };
            if let Err(e) = verified {
                return Response::Error(ApiError::new(
                    ErrorKind::Degraded,
                    format!(
                        "mutation applied locally but replication to worker {} failed \
                         ({}); the worker is stale until replaced — queries remain \
                         exact via its replicas",
                        self.pool.addr(w),
                        e,
                    ),
                ));
            }
        }
        local
    }

    /// The engine's own stats, with the fleet's worker-side lanes folded
    /// in: `worker_shard_depths[s]` / `worker_shard_micros[s]` sum every
    /// worker's per-shard unit accounting — measured where the units
    /// actually ran, unlike `shard_depths`, which the coordinator measures
    /// around the round trip. A dead worker degrades the lanes (its share
    /// is missing), never the verb.
    fn cluster_stats(&self) -> Response {
        let response = self.session.handle(Request::Stats);
        let Response::Stats(mut report) = response else {
            return response;
        };
        let shards = self.router.shards();
        let mut depths = vec![0u64; shards];
        let mut micros = vec![0u64; shards];
        let mut reachable = false;
        for w in 0..self.pool.len() {
            let Ok(Response::WorkerReport {
                lane_depths,
                lane_micros,
                ..
            }) = self.pool.with_conn(w, |c| c.call(&Request::WorkerStats))
            else {
                continue;
            };
            reachable = true;
            for (shard, d) in lane_depths.iter().enumerate().take(shards) {
                depths[shard] += d;
            }
            for (shard, m) in lane_micros.iter().enumerate().take(shards) {
                micros[shard] += m;
            }
        }
        if reachable {
            report.worker_shard_depths = depths;
            report.worker_shard_micros = micros;
        }
        Response::Stats(report)
    }

    /// The coordinator's metrics snapshot with every reachable worker's
    /// folded in, series distinguished by an `instance` label
    /// (`coordinator`, `worker0`, `worker1`, …).
    pub fn metrics_report(&self) -> MetricsReport {
        let mut samples = obs::to_api_samples(&self.engine.metrics_samples());
        for sample in &mut samples {
            sample
                .labels
                .insert(0, ("instance".to_string(), "coordinator".to_string()));
        }
        for w in 0..self.pool.len() {
            let Ok(report) = self.pool.with_conn(w, |c| c.metrics()) else {
                continue;
            };
            let instance = format!("worker{w}");
            for mut sample in report.samples {
                sample
                    .labels
                    .insert(0, ("instance".to_string(), instance.clone()));
                samples.push(sample);
            }
        }
        MetricsReport { samples }
    }

    /// Queries retry once on a stale-replica verdict: the coordinator
    /// re-snapshots (picking up whatever mutation the first attempt raced
    /// with) and re-dispatches. A second stale verdict surfaces to the
    /// client, which may retry at its own pace.
    fn query_with_retry(&self, request: Request) -> Dispatch {
        match self.session.dispatch(request.clone()) {
            Dispatch::One(Response::Error(e)) if e.kind == ErrorKind::StaleEpoch => {
                self.session.dispatch(request)
            }
            other => other,
        }
    }

    /// The cluster health report: the local engine's base signals enriched
    /// with the coordinator role, the last mutation's replication ack lag,
    /// and a live probe of every worker (readiness = all reachable).
    pub fn cluster_health(&self) -> prj_api::HealthReport {
        let mut health = self.session.base_health();
        health.role = "coordinator".to_string();
        health.replication_lag_micros = self.replication_lag_micros.load(Ordering::Relaxed);
        let mut all_reachable = true;
        health.workers = (0..self.pool.len())
            .map(|w| {
                let reachable = self.pool.with_conn(w, |c| c.stats()).is_ok();
                all_reachable &= reachable;
                prj_api::WorkerHealth {
                    addr: self.pool.addr(w).to_string(),
                    reachable,
                    idle_connections: self.pool.idle_len(w),
                }
            })
            .collect();
        health.ready = all_reachable;
        health
    }
}

impl RequestHandler for Coordinator {
    fn dispatch_request(&self, request: Request) -> Dispatch {
        match request {
            Request::RegisterRelation { .. }
            | Request::AppendTuples { .. }
            | Request::DropRelation { .. } => Dispatch::One(self.mutate(request)),
            Request::TopK(_) | Request::Stream(_) => self.query_with_retry(request),
            Request::Stats => Dispatch::One(self.cluster_stats()),
            Request::Metrics => Dispatch::One(Response::Metrics(self.metrics_report())),
            Request::Health => Dispatch::One(Response::Health(self.cluster_health())),
            // Explain and the trace verbs run through the plain session:
            // its engine *is* the cluster engine (remote units, stitched
            // spans), so EXPLAIN ANALYZE profiles remote execution and a
            // fetched trace is already whole-cluster.
            other => self.session.dispatch(other),
        }
    }
}

fn at_worker(addr: &str, e: ApiError) -> ApiError {
    ApiError::new(ErrorKind::WorkerUnavailable, format!("worker {addr}: {e}"))
}

/// `true` when a worker's answer to a replicated mutation matches the
/// coordinator's — same id, same epoch, same cardinality — i.e. the
/// replicas stayed in lockstep.
fn mutation_matches(local: &Response, remote: &Response) -> bool {
    local == remote
}

/// The [`RemoteUnitBackend`] implementation: ships units over the pool,
/// failing over across the shard's replicas.
struct ClusterBackend {
    pool: Arc<WorkerPool>,
    router: Arc<ShardRouter>,
    recorder: Arc<Recorder>,
    remote_units: Arc<Counter>,
    failovers: Arc<Counter>,
}

impl ClusterBackend {
    fn wire_request(call: &RemoteUnitCall) -> UnitRequest {
        UnitRequest {
            relations: call
                .relations
                .iter()
                .map(|id| prj_api::RelationRef::Id(id.index()))
                .collect(),
            epochs: call.epochs.clone(),
            drive: call.drive,
            shard: call.shard,
            query: call.query.as_slice().to_vec(),
            k: call.k,
            scoring: call.selector.clone(),
            access: call.access_kind,
            algorithm: call.algorithm,
            dominance_period: call.dominance_period,
            convergence: call.convergence,
            trace: call.trace.map(|(trace, parent)| TraceContext {
                trace: trace.as_u64(),
                parent: parent.as_u64(),
            }),
        }
    }

    /// Stitches the worker's shipped spans into the query's trace, beneath
    /// the coordinator-side `unit` span that dispatched the call. Worker
    /// clocks don't align with ours, so the batch is re-based to end at
    /// the import instant — relative durations survive exactly.
    fn import_spans(&self, call: &RemoteUnitCall, outcome: &UnitOutcome) {
        let Some((trace, unit_span)) = call.trace else {
            return;
        };
        let spans = obs::to_remote_spans(&outcome.spans);
        if spans.is_empty() {
            return;
        }
        let earliest = spans.iter().map(|s| s.start_micros).min().unwrap_or(0);
        let latest = spans
            .iter()
            .map(|s| s.start_micros + s.duration_micros)
            .max()
            .unwrap_or(0);
        let attach = now_micros().saturating_sub(latest.saturating_sub(earliest));
        self.recorder.import(trace, unit_span, attach, &spans);
    }
}

impl RemoteUnitBackend for ClusterBackend {
    fn generation(&self) -> u64 {
        self.router.generation()
    }

    fn routes(&self, _shard: usize) -> bool {
        // Full replication: every shard's unit can (and does) run remotely.
        !self.pool.is_empty()
    }

    fn execute(&self, call: &RemoteUnitCall) -> Result<RankJoinResult, EngineError> {
        let request = Self::wire_request(call);
        let owners = self.router.owners(call.shard);
        let mut failures: Vec<String> = Vec::new();
        let mut any_stale = false;
        for &w in owners {
            // Units are idempotent reads, so a transport failure earns one
            // same-worker retry: the first attempt may merely have burned a
            // connection that went stale in the pool (e.g. the worker
            // restarted); the retry dials fresh. Typed answers are real
            // verdicts and move straight to the next replica.
            let mut last_kind = None;
            for attempt in 0..2 {
                match self.pool.with_conn(w, |c| c.execute_unit(request.clone())) {
                    Ok(outcome) => {
                        self.remote_units.inc();
                        self.import_spans(call, &outcome);
                        return rehydrate(call.relations.len(), outcome).map_err(|e| {
                            EngineError::Degraded(format!(
                                "worker {} returned an unusable unit result: {e}",
                                self.pool.addr(w)
                            ))
                        });
                    }
                    Err(e) => {
                        let transport = matches!(e.kind, ErrorKind::Io | ErrorKind::Malformed);
                        any_stale |= e.kind == ErrorKind::StaleEpoch;
                        last_kind = Some(e.kind);
                        failures.push(format!(
                            "{} (attempt {}) => {e}",
                            self.pool.addr(w),
                            attempt + 1
                        ));
                        if !transport {
                            break;
                        }
                    }
                }
            }
            // This replica is out: the unit fails over to the next owner
            // (or surfaces the error). Count it, and pin the event into
            // the query's trace under the dispatching `unit` span.
            self.failovers.inc();
            if let Some((trace, unit_span)) = call.trace {
                self.recorder.event(
                    trace,
                    Some(unit_span),
                    "failover",
                    vec![
                        ("worker".to_string(), self.pool.addr(w).to_string()),
                        ("shard".to_string(), call.shard.to_string()),
                        (
                            "error".to_string(),
                            last_kind.map(|k| k.code().to_string()).unwrap_or_default(),
                        ),
                    ],
                );
            }
        }
        let detail = failures.join("; ");
        if any_stale {
            // At least one replica holds the data but at different epochs
            // (e.g. it is mid-replication): a fresh snapshot may succeed,
            // so classify for the coordinator's re-snapshot retry even if
            // *other* replicas failed on transport — a dead sibling must
            // not demote a retriable verdict into a terminal one.
            Err(EngineError::StaleReplica(detail))
        } else {
            Err(EngineError::WorkerUnavailable {
                shard: call.shard,
                detail,
            })
        }
    }
}

/// Rebuilds a worker's [`UnitOutcome`] into the exact [`RankJoinResult`] a
/// local run of the same unit would have produced: tuples rehydrated from
/// their wire contents (floats round-trip bit-exactly), per-relation access
/// depths, and the unit's final bound — everything the bound-aware merge
/// and the certification check consume.
fn rehydrate(arity: usize, outcome: UnitOutcome) -> Result<RankJoinResult, ApiError> {
    if outcome.depths.len() != arity {
        return Err(ApiError::new(
            ErrorKind::Malformed,
            format!(
                "unit result tracks {} relations, expected {arity}",
                outcome.depths.len()
            ),
        ));
    }
    let combinations = outcome
        .rows
        .into_iter()
        .map(|row| {
            if row.members.len() != arity {
                return Err(ApiError::new(
                    ErrorKind::Malformed,
                    format!(
                        "unit row has {} members, expected {arity}",
                        row.members.len()
                    ),
                ));
            }
            Ok(ScoredCombination::new(
                row.members
                    .into_iter()
                    .map(|m| {
                        prj_access::Tuple::new(
                            prj_access::TupleId::new(m.relation, m.index),
                            Vector::new(m.coords),
                            m.score,
                        )
                    })
                    .collect(),
                row.score,
            ))
        })
        .collect::<Result<Vec<_>, ApiError>>()?;
    Ok(RankJoinResult {
        combinations,
        stats: prj_access::AccessStats::from_depths(
            outcome.depths.iter().map(|&d| d as usize).collect(),
        ),
        metrics: RunMetrics {
            total_time: Duration::from_micros(outcome.micros),
            bound_updates: outcome.bound_updates as usize,
            combinations_formed: outcome.combinations_formed as usize,
            final_bound: outcome.final_bound,
            hit_access_cap: outcome.capped,
            // The worker's sampled bound-convergence trajectory survives
            // the wire, so EXPLAIN ANALYZE profiles remote units too.
            trajectory: outcome
                .trajectory
                .iter()
                .map(|p| prj_core::TrajectoryPoint {
                    depth: p.depth,
                    kth_score: p.kth_score,
                    bound: p.bound,
                })
                .collect(),
            ..RunMetrics::default()
        },
    })
}
