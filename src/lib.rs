//! # proximity-rank-join
//!
//! A faithful, self-contained Rust reproduction of **“Proximity Rank Join”**
//! (D. Martinenghi & M. Tagliasacchi, PVLDB 3(1), VLDB 2010).
//!
//! The crate is a facade over the workspace crates; see the individual crates
//! for the full API:
//!
//! * [`geometry`] — vectors, metrics, centroids, projections, bounding boxes.
//! * [`solver`] — convex QP (active set) and LP feasibility (simplex) solvers.
//! * [`index`] — R-tree substrate with incremental nearest-neighbour access.
//! * [`access`] — sorted-access abstraction (distance-based / score-based).
//! * [`core`] — the ProxRJ operator, bounding schemes, dominance and pulling
//!   strategies (CBRR = HRJN, CBPA = HRJN*, TBRR, TBPA).
//! * [`engine`] — the concurrent query-serving subsystem: a mutable
//!   relation catalog with `Arc`-shared indexes and epoch counters, a
//!   runtime-extensible scoring registry, a statistics-driven planner, a
//!   thread-pool executor with streaming results, an epoch-keyed LRU result
//!   cache, and the `Session` / `prj-serve` serving entry points.
//! * [`api`] — the versioned, transport-agnostic request/response protocol
//!   (`Request`/`Response`/`ApiError`), its negotiated `prj/1`/`prj/2` line
//!   wire codec, and a TCP client with timeouts and connect retries.
//! * [`cluster`] — distributed shard execution: coordinator + worker
//!   processes over the `prj/2` cluster-internal messages, exact by
//!   bound-aware merging (and home of the `prj-serve` binary).
//! * [`data`] — synthetic and city data set generators used by the evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use proximity_rank_join::prelude::*;
//!
//! // Three tiny relations in 2-D (the paper's Table 1).
//! let r1 = vec![(0.5, [0.0, -0.5]), (1.0, [0.0, 1.0])];
//! let r2 = vec![(1.0, [1.0, 1.0]), (0.8, [-2.0, 2.0])];
//! let r3 = vec![(1.0, [-1.0, 1.0]), (0.4, [-2.0, -2.0])];
//! let build = |rows: Vec<(f64, [f64; 2])>, rel: usize| {
//!     rows.into_iter()
//!         .enumerate()
//!         .map(|(i, (score, x))| Tuple::new(TupleId::new(rel, i), Vector::from(x), score))
//!         .collect::<Vec<_>>()
//! };
//! let relations = vec![build(r1, 0), build(r2, 1), build(r3, 2)];
//! let query = Vector::from([0.0, 0.0]);
//! let scoring = EuclideanLogScore::new(1.0, 1.0, 1.0);
//!
//! let mut problem = ProblemBuilder::new(query, scoring)
//!     .k(1)
//!     .access_kind(AccessKind::Distance)
//!     .relations_from_tuples(relations)
//!     .build()
//!     .unwrap();
//!
//! let result = Algorithm::Tbpa.run(&mut problem).unwrap();
//! assert_eq!(result.combinations.len(), 1);
//! // The paper's Example 3.1: the top combination has aggregate score -7.
//! assert!((result.combinations[0].score - (-7.0)).abs() < 1e-9);
//! ```

pub use prj_access as access;
pub use prj_api as api;
pub use prj_cluster as cluster;
pub use prj_core as core;
pub use prj_data as data;
pub use prj_engine as engine;
pub use prj_geometry as geometry;
pub use prj_index as index;
pub use prj_solver as solver;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use prj_access::{AccessKind, AccessStats, SortedAccess};
    pub use prj_api::{ApiError, QueryRequest, RelationRef, Request, Response, TupleData};
    pub use prj_core::{
        Algorithm, BoundingSchemeKind, EuclideanLogScore, ProblemBuilder, ProxRjConfig,
        PullStrategyKind, RankJoinResult, ScoredCombination, ScoringSpec, Tuple, TupleId,
    };
    pub use prj_data::{CityDataSet, SyntheticConfig};
    pub use prj_engine::{Engine, EngineBuilder, QuerySpec, RelationId, Session};
    pub use prj_geometry::{Euclidean, Metric, Vector};
}
